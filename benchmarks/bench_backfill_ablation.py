"""Substrate ablation: backfill on/off in the WLM scheduler.

DESIGN.md calls out the scheduler as a calibrated design choice; this
ablation shows the utilization/wait-time effect that makes exclusive
allocation + mixed job sizes behave realistically in the §6 scenarios.
"""

from repro.cluster import HostNode
from repro.sim import Environment
from repro.sim.rng import DeterministicRNG
from repro.wlm import JobSpec, JobState, SlurmController

from conftest import once, write_artifact

N_NODES = 8
N_JOBS = 40


def run_cluster(backfill: bool, seed: int = 0):
    env = Environment()
    hosts = [HostNode(name=f"n{i}") for i in range(N_NODES)]
    ctl = SlurmController(env, hosts, backfill=backfill)
    rng = DeterministicRNG(seed)
    jobs = []
    for i in range(N_JOBS):
        wide = rng.uniform() < 0.25
        nodes = N_NODES if wide else rng.integers(1, 3)
        duration = rng.uniform(50, 400)
        jobs.append(
            ctl.submit(JobSpec(
                name=f"j{i}", user_uid=1000 + i % 5, nodes=nodes,
                duration=duration, time_limit=duration * 1.1,
            ))
        )
    env.run(until=100_000)
    waits = [j.wait_time for j in jobs if j.wait_time is not None]
    return {
        "completed": sum(1 for j in jobs if j.state is JobState.COMPLETED),
        "makespan": max(j.end_time for j in jobs if j.end_time is not None),
        "mean_wait": sum(waits) / len(waits),
        "utilization": ctl.utilization() * 100_000 / max(
            j.end_time for j in jobs if j.end_time is not None
        ),
    }


def measure():
    return {"fifo": run_cluster(backfill=False), "backfill": run_cluster(backfill=True)}


def test_backfill_ablation(benchmark, out_dir):
    r = once(benchmark, measure)
    fifo, bf = r["fifo"], r["backfill"]
    lines = [
        f"{N_JOBS} mixed jobs (25% full-cluster) on {N_NODES} exclusive nodes",
        "",
        f"  FIFO only : makespan {fifo['makespan']:9.0f}s  mean wait {fifo['mean_wait']:8.0f}s  "
        f"util {fifo['utilization']:.2%}",
        f"  backfill  : makespan {bf['makespan']:9.0f}s  mean wait {bf['mean_wait']:8.0f}s  "
        f"util {bf['utilization']:.2%}",
    ]
    write_artifact(out_dir, "backfill_ablation.txt", "\n".join(lines) + "\n")

    assert fifo["completed"] == bf["completed"] == N_JOBS
    # backfill strictly helps this mix: shorter queue waits and makespan
    assert bf["mean_wait"] < fifo["mean_wait"]
    assert bf["makespan"] <= fifo["makespan"]
    assert bf["utilization"] > fifo["utilization"]
