"""A1 ablation — the layer cache behind §4.1.4.

"In Dockerfiles ... manually grouping commands into layers poses an
important concept to allow incremental container builds, updates, and
deployments" — versus the flat SIF build, which re-runs everything.
"""

from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog

from conftest import once, write_artifact

DOCKERFILE_V1 = """
FROM ubuntu:22.04
RUN install-pkg base-toolchain 60 400000
RUN pip-install science-stack 150
RUN write /opt/app/solver 8000000
ENTRYPOINT /opt/app/solver
"""

# the developer edits only the last step
DOCKERFILE_V2 = DOCKERFILE_V1.replace("write /opt/app/solver 8000000",
                                      "write /opt/app/solver 8100000")

DEF_V1 = """
Bootstrap: docker
From: ubuntu:22.04
%post
    install-pkg base-toolchain 60 400000
    pip-install science-stack 150
    write /opt/app/solver 8000000
%runscript
    /opt/app/solver
"""
DEF_V2 = DEF_V1.replace("write /opt/app/solver 8000000", "write /opt/app/solver 8100000")


def measure():
    builder = Builder(BaseImageCatalog())
    builder.build_dockerfile(DOCKERFILE_V1)
    first = dict(builder.last_build_stats)
    builder.build_dockerfile(DOCKERFILE_V2)
    incremental = dict(builder.last_build_stats)
    # SIF-style flat rebuild: no layers, everything re-executes; estimate
    # cost via an uncached builder run of the same steps.
    cold = Builder(BaseImageCatalog())
    cold.build_dockerfile(DOCKERFILE_V2)
    flat = dict(cold.last_build_stats)
    sif = cold.build_definition(DEF_V2)
    return first, incremental, flat, sif


def test_layer_cache_ablation(benchmark, out_dir):
    first, incremental, flat, sif = once(benchmark, measure)
    lines = [
        "Incremental rebuild after editing the LAST build step",
        "",
        f"  initial layered build:  {first['executed_steps']:.0f} steps executed, "
        f"{first['build_cost_s']:.1f}s",
        f"  incremental rebuild:    {incremental['executed_steps']:.0f} executed / "
        f"{incremental['cached_steps']:.0f} cached, {incremental['build_cost_s']:.1f}s",
        f"  flat (SIF-style) build: {flat['executed_steps']:.0f} steps executed, "
        f"{flat['build_cost_s']:.1f}s (no layering -> no cache)",
    ]
    write_artifact(out_dir, "build_cache.txt", "\n".join(lines) + "\n")

    assert first["executed_steps"] == 3
    assert incremental["executed_steps"] == 1      # only the edited step
    assert incremental["cached_steps"] == 2
    assert flat["executed_steps"] == 3             # everything again
    assert incremental["build_cost_s"] < flat["build_cost_s"] / 2
    assert sif.tree.exists("/opt/app/solver")      # the flat build still works
