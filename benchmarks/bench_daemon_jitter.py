"""§3.2 claim: per-node daemons "may introduce extra jitter".

A bulk-synchronous MPI job across 16–1024 ranks under three monitoring
regimes: none, per-container conmon, and a per-machine dockerd.  The
max()-amplification makes the daemon's rare scheduling spikes inflate
every synchronization step at scale — the quantitative reason HPC
engines are daemonless (Table 1).
"""

from repro.workload.mpi import BSPJob, ConmonNoise, DaemonNoise

from conftest import once, write_artifact

RANK_COUNTS = (16, 64, 256, 1024)


def measure():
    rows = []
    for n_ranks in RANK_COUNTS:
        job = BSPJob(n_ranks=n_ranks, n_steps=200, step_seconds=0.010)
        rows.append(
            {
                "ranks": n_ranks,
                "daemon_slowdown": job.slowdown(DaemonNoise(), seed=1),
                "conmon_slowdown": job.slowdown(ConmonNoise(), seed=1),
            }
        )
    return rows


def test_daemon_jitter_amplifies_with_scale(benchmark, out_dir):
    rows = once(benchmark, measure)
    lines = ["BSP job (200 steps x 10 ms) under monitoring-process jitter", ""]
    for r in rows:
        lines.append(
            f"  {r['ranks']:>5} ranks: dockerd {100 * (r['daemon_slowdown'] - 1):6.2f}% slower   "
            f"conmon {100 * (r['conmon_slowdown'] - 1):6.3f}% slower"
        )
    write_artifact(out_dir, "daemon_jitter.txt", "\n".join(lines) + "\n")

    first, last = rows[0], rows[-1]
    # daemon jitter grows with rank count (max() amplification)...
    assert last["daemon_slowdown"] > first["daemon_slowdown"]
    # ...and is material at scale
    assert last["daemon_slowdown"] > 1.10
    # the per-container monitor stays in the noise everywhere
    assert all(r["conmon_slowdown"] < 1.02 for r in rows)
    # at every scale, conmon beats the daemon
    assert all(r["conmon_slowdown"] < r["daemon_slowdown"] for r in rows)
