"""Cross-engine startup comparison (synthesis of Tables 1–2 mechanics).

Cold and warm container start for every engine on the same node and
image: the cost structure (daemon RPC vs conmon spawn, conversion vs
extraction, kernel vs FUSE mounts, cache hits) is the operational
consequence of the mechanisms in Tables 1 and 2.
"""

from repro.cluster import HostNode
from repro.engines import ALL_ENGINES, DockerEngine, EnrootEngine
from repro.kernel import KernelConfig
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import OCIDistributionRegistry

from conftest import once, write_artifact


def measure():
    registry = OCIDistributionRegistry(name="site")
    image = Builder(BaseImageCatalog()).build_dockerfile(
        "FROM ubuntu:22.04\nRUN write /opt/app 50000000\nENTRYPOINT /opt/app"
    )
    registry.push_image("hpc/app", "v1", image)
    rows = []
    for engine_cls in ALL_ENGINES:
        node = HostNode(name="bench-node", kernel_config=KernelConfig.modern_hpc())
        engine = engine_cls(node)
        if isinstance(engine, DockerEngine):
            engine.start_daemon()
        user = node.kernel.spawn(uid=1000)
        pulled = engine.pull("hpc/app", "v1", registry)
        if isinstance(engine, EnrootEngine):
            engine.import_image("hpc/app:v1", pulled.image)
        cold = engine.run(pulled, user)
        conversions_after_cold = engine.stats["conversions"]
        # warm start: the user launches the same image again (fresh pull
        # request, hitting whatever caches the engine keeps)
        repulled = engine.pull("hpc/app", "v1", registry)
        warm = engine.run(repulled, user)
        rows.append(
            {
                "engine": engine.info.name,
                "cold_s": cold.startup_seconds,
                "warm_s": warm.startup_seconds,
                "rootfs": cold.container.rootfs.driver.name,
                "converted": conversions_after_cold > 0,
            }
        )
    return rows


def test_engine_startup_comparison(benchmark, out_dir):
    rows = once(benchmark, measure)
    lines = ["Cold/warm container start, identical image and node", ""]
    for r in sorted(rows, key=lambda r: r["warm_s"]):
        lines.append(
            f"  {r['engine']:>14}: cold {r['cold_s']:7.3f}s  warm {r['warm_s']:7.3f}s  "
            f"rootfs={r['rootfs']:<14} transparent-convert={r['converted']}"
        )
    write_artifact(out_dir, "engine_startup.txt", "\n".join(lines) + "\n")

    by = {r["engine"]: r for r in rows}
    # caching engines get warm starts much cheaper than cold ones
    for name in ("sarus", "shifter", "podman-hpc", "apptainer", "singularity-ce"):
        assert by[name]["warm_s"] < by[name]["cold_s"] / 2, name
    # engines without a native cache re-extract on every start: their warm
    # start stays far above the cached engines'
    assert by["charliecloud"]["warm_s"] > 4 * by["shifter"]["warm_s"]
    # converting engines did convert on the cold start
    assert by["sarus"]["converted"] and not by["docker"]["converted"]
