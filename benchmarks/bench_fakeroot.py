"""§4.1.2 claim (C3): fakeroot mechanisms.

"A limitation of the first approach [LD_PRELOAD] is that it fails with
static binaries, and for the second [ptrace] that it introduces a
significant performance penalty"; subuid-range fakeroot runs at native
speed but needs /etc/subuid configuration.
"""

import pytest

from repro.cluster import HostNode
from repro.engines.fakeroot import (
    FakerootError,
    LDPreloadFakeroot,
    PtraceFakeroot,
    SubuidFakeroot,
)

from conftest import once, write_artifact

BUILD_SCRIPT = """
mkdir -p /opt/pkg
install-pkg libfoo 40 50000
pip-install sim-tools 80
chmod 755 /opt/pkg
"""


def measure():
    node = HostNode(name="buildhost")
    user = node.kernel.spawn(uid=1000)
    baseline = 10.0  # syscall-heavy build, native seconds
    rows = []
    ld = LDPreloadFakeroot(node.kernel)
    _, ld_cost = ld.build(user, BUILD_SCRIPT, baseline_cost=baseline)
    rows.append({"mechanism": "LD_PRELOAD", "build_s": ld_cost, "static_ok": False})
    pt = PtraceFakeroot(node.kernel)
    _, pt_cost = pt.build(user, BUILD_SCRIPT, baseline_cost=baseline, uses_static_binaries=True)
    rows.append({"mechanism": "ptrace", "build_s": pt_cost, "static_ok": True})
    sub = SubuidFakeroot(node.kernel, {1000: (100000, 65536)})
    _, sub_cost = sub.build(user, BUILD_SCRIPT, baseline_cost=baseline)
    rows.append({"mechanism": "subuid", "build_s": sub_cost, "static_ok": True})
    # the static-binary failure mode
    static_fails = False
    try:
        ld.build(user, BUILD_SCRIPT, baseline_cost=baseline, uses_static_binaries=True)
    except FakerootError:
        static_fails = True
    return rows, static_fails, baseline


def test_fakeroot_mechanisms(benchmark, out_dir):
    rows, static_fails, baseline = once(benchmark, measure)
    lines = [f"Fakeroot build of a synthetic package (native: {baseline:.0f}s)", ""]
    for r in rows:
        lines.append(
            f"  {r['mechanism']:>10}: {r['build_s']:6.1f}s  "
            f"({r['build_s'] / baseline:.2f}x)  static-binaries: "
            f"{'ok' if r['static_ok'] else 'FAIL'}"
        )
    write_artifact(out_dir, "fakeroot.txt", "\n".join(lines) + "\n")

    by = {r["mechanism"]: r for r in rows}
    assert static_fails                                      # LD_PRELOAD + static = broken
    assert by["ptrace"]["build_s"] > 3 * by["LD_PRELOAD"]["build_s"]  # significant penalty
    assert by["subuid"]["build_s"] == pytest.approx(baseline)         # native speed
