"""Figure 1 — the proof of concept: Kubernetes kubelets running
dynamically inside a WLM (Slurm) job allocation, joined to a standing
K3s control plane over the high-speed network.

The figure is an architecture diagram plus the claim of feasibility; the
reproduction demonstrates the full sequence and prints the timeline:
control plane up → allocation granted → rootless kubelets join → pods
scheduled onto allocation nodes → everything accounted in Slurm.
"""

from repro.k8s.objects import PodPhase
from repro.scenarios import KubeletInAllocationScenario
from repro.scenarios.base import WORKFLOW_IMAGE
from repro.sim import Environment
from repro.workload.generators import PodBatchGenerator

from conftest import once, write_artifact


def run_poc(n_nodes=4, n_pods=6):
    env = Environment()
    scenario = KubeletInAllocationScenario(env, n_nodes=n_nodes)
    ready = scenario.provision()
    env.run(until=ready)
    timeline = [
        ("k3s control plane ready", scenario._control_plane_ready_at),
        ("allocation granted (job start)", scenario.job.start_time),
        ("all kubelets joined", scenario.provisioned_at),
    ]
    pods = PodBatchGenerator(WORKFLOW_IMAGE, seed=1).batch(n_pods)
    scenario.submit(pods)
    env.run(until=3000)
    timeline.append(("first pod running", min(p.start_time for p in pods)))
    timeline.append(("last pod finished", max(p.end_time for p in pods)))
    scenario.teardown()
    env.run(until=3100)
    return scenario, pods, timeline


def test_figure1_poc(benchmark, out_dir):
    scenario, pods, timeline = once(benchmark, run_poc)
    lines = ["Figure 1 PoC — kubelets in a Slurm allocation", ""]
    for label, t in timeline:
        lines.append(f"  t={t:8.2f}s  {label}")
    metrics = scenario.metrics()
    lines += [
        "",
        f"  pods completed:           {metrics.pods_completed}/{metrics.pods_submitted}",
        f"  mean pod startup:         {metrics.mean_pod_startup:.2f}s",
        f"  WLM accounting coverage:  {metrics.wlm_accounting_coverage:.2f}",
        f"  steady-state provision:   {scenario.steady_state_provision_time:.2f}s/allocation",
        f"  kubelets rootless:        {all(k.rootless for k in scenario.kubelets)}",
    ]
    write_artifact(out_dir, "figure1_kubelet_in_wlm.txt", "\n".join(lines) + "\n")

    # Feasibility claims of the PoC:
    assert all(p.phase is PodPhase.SUCCEEDED for p in pods)
    assert all(k.rootless for k in scenario.kubelets)           # no root on compute
    assert metrics.wlm_accounting_coverage == 1.0               # Slurm accounts it all
    assert metrics.workflow_transparency and metrics.standard_pod_environment
    # the per-allocation cost is small relative to a full in-job bootstrap
    assert scenario.steady_state_provision_time < 8.0
    # pods were confined to the allocation (selector-labelled nodes)
    names = {k.node_name for k in scenario.kubelets}
    assert {p.node_name for p in pods} <= names
