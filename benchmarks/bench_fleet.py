"""Fleet-scale workload benchmark: the PR 7 perf trajectory.

Times :mod:`repro.workload.fleet` at the shapes the §4 cost claims live
at and records the numbers to a ``BENCH_*.json`` trajectory file (same
schema and baseline gate as ``bench_simcore_wallclock.py``):

- ``fleet_10knodes_100k_fast`` / ``..._naive`` — the optimized engine
  vs the retained pre-optimization implementation (one event per
  arrival/completion, linear capacity scans, per-start dict records) on
  one shard of 10k nodes.  Their reports must be byte-identical and the
  entry records ``speedup_vs_naive`` (the PR acceptance bar is >= 5x).
- ``fleet_flagship_1m`` — 2000 tenants / 10k nodes / 1M starts across 8
  cells, the headline scale, with the sim counters
  (``event_queue_peak``, ``live_objects_peak``) proving the epoch
  batching kept simulator bookkeeping bounded.
- ``fleet_flagship_1m_sampled`` — the same flagship with virtual-time
  time-series sampling on (``repro.obs.timeseries``): the report must be
  unchanged and the wall-clock overhead within ``SAMPLED_OVERHEAD_BAR``.
- ``fleet_parallel_serial`` / ``fleet_parallel_jobs`` — the same fleet
  serial vs ``--jobs N``: merged report and counters must match exactly.
- ``fleet_chaos_seeded`` — a seeded fault plan (node crashes + registry
  windows, PR 10) armed over a mid-size fleet: the run must stay
  deterministic (double run compared), drain leak-free, and the chaos
  accounting (crashes / requeues / injections) is recorded as
  machine-independent gate numbers.
- a ``zipf_sweep`` extra regenerating the §4 cache-economics shape:
  warm-start rate rises and pulled bytes fall monotonically with image-
  popularity skew.

Environment knobs (all optional):

- ``FLEET_BENCH_OUT``       output filename (default ``BENCH_LOCAL_FLEET.json``)
- ``FLEET_BENCH_BASELINE``  committed ``BENCH_*.json`` file(s) to gate
  against (comma-separated), via the wallclock bench's normalized-wall
  and event-counter checks
- ``FLEET_BENCH_TOLERANCE`` allowed relative regression (default 0.25)
- ``FLEET_BENCH_FULL``      if set, also run the simcore wall-clock
  suite and merge its entries into the output — this is how the
  committed ``BENCH_PR7.json`` is produced, so one file can serve as a
  baseline for both benches
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from repro.shard import ObsConfig, run_cells
from repro.workload.fleet import (
    FleetConfig,
    FleetResult,
    fleet_cells,
    fleet_report_document,
    generate_fleet_plan,
    merge_shard_results,
)

import bench_simcore_wallclock as _wallclock
from bench_simcore_wallclock import REPO_ROOT, calibrate, check_baselines

#: fast-vs-naive ratio shape: one shard so the naive linear scan faces
#: the full 10k-node pool, exactly what CapacityIndex replaced.
RATIO_CONFIG = FleetConfig(tenants=64, nodes=10_000, starts=100_000, shards=1)

#: the headline scale from the issue: 10k+ nodes, 1M+ container starts.
FLAGSHIP_CONFIG = FleetConfig(
    tenants=2000, nodes=10_000, starts=1_000_000, shards=8, day=3600.0
)

#: small enough to run twice (serial + pooled) in a few seconds.
PARALLEL_CONFIG = FleetConfig(tenants=256, nodes=2_000, starts=100_000, shards=8)

#: §4 cache-economics sweep: image-popularity skew vs cache hit rate.
ZIPF_SKEWS = (0.6, 1.1, 1.6)
ZIPF_CONFIG = FleetConfig(tenants=64, nodes=1_000, starts=50_000, shards=4)

#: seeded chaos shape: big enough that the generated node crashes land
#: on busy nodes (nonzero requeues), small enough to run twice.
CHAOS_CONFIG = FleetConfig(tenants=64, nodes=1_000, starts=100_000, shards=4)
CHAOS_SEED = 3

#: sampling-enabled flagship acceptance bar: wall clock vs unsampled.
SAMPLED_OVERHEAD_BAR = 1.25

#: sampling interval for the sampled flagship entry (virtual seconds).
SAMPLE_INTERVAL_S = 5.0


def timed_fleet(config: FleetConfig, jobs: int = 1,
                sample_interval: float | None = None, plan=None):
    """Run a fleet through the shard runner; returns (wall, counters, result).

    The runner enables the profile counters inside every cell and merges
    them, so one pass yields both the timing and the machine-independent
    event counts."""
    cells = fleet_cells(config, plan=plan)
    obs = ObsConfig(timeseries=sample_interval)
    t0 = time.perf_counter()
    shard = run_cells(cells, jobs=jobs, obs=obs)
    wall = time.perf_counter() - t0
    return wall, shard.profile, merge_shard_results(shard.values(), config)


def _entry(wall: float, calibration_s: float, counters: dict,
           result: FleetResult, jobs: int) -> dict:
    cfg = result.config
    return {
        "wall_clock_s": round(wall, 4),
        "normalized_wall": round(wall / calibration_s, 2),
        "jobs": jobs,
        "tenants": cfg.tenants,
        "nodes": cfg.nodes,
        "starts": cfg.starts,
        "shards": result.shards,
        "starts_per_sec": round(result.starts / wall) if wall else 0,
        "warm_rate": round(result.warm_rate, 4),
        "bytes_saved_ratio": round(result.bytes_saved_ratio, 4),
        "registry_pulls": result.registry_pulls,
        "pending_peak": result.pending_peak,
        "mean_wait_s": round(result.mean_wait, 4),
        "sim_counters": counters,
    }


def run_fleet_suite() -> dict:
    calibration_s = calibrate()
    benchmarks: dict[str, dict] = {}

    # -- optimized vs pre-optimization, byte-identical outputs --------------
    wall_fast, prof_fast, res_fast = timed_fleet(RATIO_CONFIG)
    wall_naive, prof_naive, res_naive = timed_fleet(
        dataclasses.replace(RATIO_CONFIG, naive=True)
    )
    report_fast = fleet_report_document(res_fast)
    report_naive = fleet_report_document(res_naive)
    report_naive["config"]["naive"] = False  # the only permitted difference
    if report_fast != report_naive:
        raise AssertionError(
            "optimized fleet diverged from the naive reference implementation"
        )
    speedup = wall_naive / wall_fast
    benchmarks["fleet_10knodes_100k_fast"] = {
        **_entry(wall_fast, calibration_s, prof_fast, res_fast, jobs=1),
        "speedup_vs_naive": round(speedup, 2),
    }
    benchmarks["fleet_10knodes_100k_naive"] = _entry(
        wall_naive, calibration_s, prof_naive, res_naive, jobs=1
    )

    # -- flagship: 10k nodes, 1M starts -------------------------------------
    wall, prof, res = timed_fleet(FLAGSHIP_CONFIG)
    if res.leaks:
        raise AssertionError(f"flagship fleet leaked: {res.leaks}")
    benchmarks["fleet_flagship_1m"] = _entry(
        wall, calibration_s, prof, res, jobs=1
    )

    # -- flagship again with virtual-time sampling on ------------------------
    from repro.obs.timeseries import recorder as _recorder

    wall_sampled, prof_sampled, res_sampled = timed_fleet(
        FLAGSHIP_CONFIG, sample_interval=SAMPLE_INTERVAL_S
    )
    if fleet_report_document(res_sampled) != fleet_report_document(res):
        raise AssertionError("time-series sampling changed the fleet report")
    if prof_sampled != prof:
        raise AssertionError("time-series sampling changed the sim counters")
    series_count = len(_recorder._points)
    sample_ticks = _recorder.samples
    _recorder.reset()  # drop the merged rings before re-timing
    # Single-shot wall ratios jitter by several percent on a busy host;
    # best-of-two on each side keeps the overhead gate honest without
    # letting a lucky baseline hide a real regression.
    wall_sampled_2, _, _ = timed_fleet(
        FLAGSHIP_CONFIG, sample_interval=SAMPLE_INTERVAL_S
    )
    _recorder.reset()
    wall_base_2, _, _ = timed_fleet(FLAGSHIP_CONFIG)
    overhead = min(wall_sampled, wall_sampled_2) / min(wall, wall_base_2)
    benchmarks["fleet_flagship_1m_sampled"] = {
        **_entry(wall_sampled, calibration_s, prof_sampled, res_sampled, jobs=1),
        "sample_interval_s": SAMPLE_INTERVAL_S,
        "series": series_count,
        "sample_ticks": sample_ticks,
        "sampling_overhead": round(overhead, 3),
    }

    # -- serial vs pooled: byte-identical merge ------------------------------
    jobs = _wallclock.shard_parallel_jobs()
    wall_ser, prof_ser, res_ser = timed_fleet(PARALLEL_CONFIG)
    wall_par, prof_par, res_par = timed_fleet(PARALLEL_CONFIG, jobs=jobs)
    if fleet_report_document(res_ser) != fleet_report_document(res_par):
        raise AssertionError("parallel fleet report differs from serial")
    if prof_ser != prof_par:
        raise AssertionError("parallel fleet counters differ from serial")
    benchmarks["fleet_parallel_serial"] = _entry(
        wall_ser, calibration_s, prof_ser, res_ser, jobs=1
    )
    benchmarks["fleet_parallel_jobs"] = _entry(
        wall_par, calibration_s, prof_par, res_par, jobs=jobs
    )

    # -- seeded chaos: armed fault plan, deterministic accounting ------------
    plan = generate_fleet_plan(CHAOS_CONFIG, seed=CHAOS_SEED)
    wall_chaos, prof_chaos, res_chaos = timed_fleet(CHAOS_CONFIG, plan=plan)
    if res_chaos.leaks:
        raise AssertionError(f"chaos fleet leaked: {res_chaos.leaks}")
    _, _, res_chaos_again = timed_fleet(CHAOS_CONFIG, plan=plan)
    if fleet_report_document(res_chaos) != fleet_report_document(res_chaos_again):
        raise AssertionError("seeded chaos fleet run is not deterministic")
    benchmarks["fleet_chaos_seeded"] = {
        **_entry(wall_chaos, calibration_s, prof_chaos, res_chaos, jobs=1),
        "chaos_seed": CHAOS_SEED,
        "crashes": res_chaos.crashes,
        "requeues": res_chaos.requeues,
        "failed": res_chaos.failed,
        "injected": dict(sorted(res_chaos.injected.items())),
    }

    # -- §4 cache economics vs popularity skew -------------------------------
    zipf_rows = []
    for skew in ZIPF_SKEWS:
        _, _, res_z = timed_fleet(dataclasses.replace(ZIPF_CONFIG, zipf_s=skew))
        zipf_rows.append({
            "zipf_s": skew,
            "warm_rate": round(res_z.warm_rate, 4),
            "cold_pulls": res_z.cold_pulls,
            "pulled_bytes": res_z.pulled_bytes,
            "bytes_saved_ratio": round(res_z.bytes_saved_ratio, 4),
        })

    return {
        "schema": "simcore-wallclock/1",
        "calibration_s": round(calibration_s, 5),
        "benchmarks": benchmarks,
        "zipf_sweep": zipf_rows,
    }


def check_fleet_invariants(result: dict) -> None:
    """Machine-independent assertions on a suite result."""
    bench = result["benchmarks"]
    fast = bench["fleet_10knodes_100k_fast"]
    naive = bench["fleet_10knodes_100k_naive"]
    flagship = bench["fleet_flagship_1m"]

    # the PR acceptance bar: >= 5x over the pre-optimization engine
    assert fast["speedup_vs_naive"] >= 5.0, (
        f"fleet speedup {fast['speedup_vs_naive']}x below the 5x bar"
    )
    # epoch batching, not luck: the naive engine needs an event per
    # arrival + completion, the fast engine one per non-empty epoch.
    assert naive["sim_counters"]["events_processed"] >= (
        10 * fast["sim_counters"]["events_processed"]
    )
    # flagship bookkeeping stays bounded (naive would be > 2M events)
    assert flagship["sim_counters"]["events_processed"] < 100_000
    assert flagship["sim_counters"]["event_queue_peak"] > 0
    assert flagship["sim_counters"]["live_objects_peak"] > 0

    # sampling rides the epoch loop: points recorded, wall within budget
    sampled = bench.get("fleet_flagship_1m_sampled")
    if sampled is not None:
        assert sampled["sample_ticks"] > 0 and sampled["series"] > 0
        assert sampled["sampling_overhead"] <= SAMPLED_OVERHEAD_BAR, (
            f"sampling overhead {sampled['sampling_overhead']}x exceeds the "
            f"{SAMPLED_OVERHEAD_BAR}x bar"
        )

    # chaos entries are gate numbers, not luck: the seeded plan must
    # actually crash busy nodes and the requeued starts must all land
    chaos = bench.get("fleet_chaos_seeded")
    if chaos is not None:
        assert chaos["crashes"] > 0, "seeded chaos plan crashed no node"
        assert chaos["requeues"] > 0, "node crashes requeued no starts"
        assert chaos["injected"].get("node_crash") == chaos["crashes"]

    # §4 economics: more skew -> hotter cache -> fewer transferred bytes
    rows = result["zipf_sweep"]
    warm = [r["warm_rate"] for r in rows]
    pulled = [r["pulled_bytes"] for r in rows]
    assert warm == sorted(warm), f"warm rate not monotone in skew: {warm}"
    assert pulled == sorted(pulled, reverse=True), (
        f"pulled bytes not monotone-decreasing in skew: {pulled}"
    )


def test_fleet_bench(benchmark):
    result = benchmark.pedantic(run_fleet_suite, rounds=1, iterations=1)

    out_name = os.environ.get("FLEET_BENCH_OUT", "BENCH_LOCAL_FLEET.json")
    (REPO_ROOT / out_name).write_text(json.dumps(result, indent=2) + "\n")

    check_fleet_invariants(result)

    serial = result["benchmarks"]["fleet_parallel_serial"]
    parallel = result["benchmarks"]["fleet_parallel_jobs"]
    if (os.cpu_count() or 1) >= 2:
        assert parallel["wall_clock_s"] <= 0.8 * serial["wall_clock_s"], (
            f"pooled fleet took {parallel['wall_clock_s']:.2f}s with "
            f"{parallel['jobs']} jobs vs {serial['wall_clock_s']:.2f}s serial"
        )

    baseline_env = os.environ.get("FLEET_BENCH_BASELINE")
    if baseline_env:
        tolerance = float(os.environ.get("FLEET_BENCH_TOLERANCE", "0.25"))
        failures = check_baselines(result, baseline_env, tolerance)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    outcome = run_fleet_suite()
    if os.environ.get("FLEET_BENCH_FULL"):
        simcore = _wallclock.run_suite()
        outcome["benchmarks"] = {
            **simcore["benchmarks"], **outcome["benchmarks"]
        }
    print(json.dumps(outcome, indent=2))
    check_fleet_invariants(outcome)
    fast = outcome["benchmarks"]["fleet_10knodes_100k_fast"]
    flagship = outcome["benchmarks"]["fleet_flagship_1m"]
    print(
        f"fleet fast path: {fast['starts_per_sec']} starts/s, "
        f"{fast['speedup_vs_naive']}x over naive"
    )
    print(
        f"flagship: {flagship['starts']} starts on {flagship['nodes']} nodes in "
        f"{flagship['wall_clock_s']:.2f}s "
        f"({flagship['sim_counters']['events_processed']} sim events, "
        f"queue peak {flagship['sim_counters']['event_queue_peak']})"
    )
    name = os.environ.get("FLEET_BENCH_OUT", "BENCH_LOCAL_FLEET.json")
    (REPO_ROOT / name).write_text(json.dumps(outcome, indent=2) + "\n")
    baseline_env = os.environ.get("FLEET_BENCH_BASELINE")
    if baseline_env:
        tol = float(os.environ.get("FLEET_BENCH_TOLERANCE", "0.25"))
        problems = check_baselines(outcome, baseline_env, tol)
        if problems:
            raise SystemExit("PERF REGRESSION: " + "; ".join(problems))
    print("fleet bench within tolerance")
