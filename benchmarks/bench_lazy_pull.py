"""Outlook ablation (§7): eStargz lazy pulling vs full pull vs SIF.

The conclusion predicts seekable formats (eStargz/EroFS) "will be
evaluated and possibly adopted for HPC usage as an alternative to SIF".
This bench quantifies the trade: time-to-first-instruction and total
bytes moved for a job that touches only part of a large image.
"""

from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.oci.estargz import LazyMountedView, LazyPullTransport, to_estargz
from repro.oci.squash import oci_to_squash
from repro.registry.distribution import Transport

from conftest import once, write_artifact

#: the job reads the solver binary + one shard, never the other shards
TOUCHED = ("/opt/app/solver", "/opt/app/data/shard_00.bin")


def build_image():
    steps = ["FROM ubuntu:22.04", "RUN write /opt/app/solver 20000000"]
    for i in range(8):
        steps.append(f"RUN write /opt/app/data/shard_{i:02}.bin 150000000")
    steps.append("ENTRYPOINT /opt/app/solver")
    return Builder(BaseImageCatalog()).build_dockerfile("\n".join(steps))


def measure():
    image = build_image()
    transport = Transport(latency=15e-3, bandwidth=1.0e9)

    # strategy 1: full OCI pull, then run (docker/podman style)
    full_pull_time = transport.request_cost(image.compressed_size)
    full_bytes = image.compressed_size

    # strategy 2: convert to SIF/squash (cached), pull the flat file
    squash, convert_cost = oci_to_squash(image)
    sif_pull_time = transport.request_cost(squash.compressed_size)
    sif_bytes = squash.compressed_size

    # strategy 3: eStargz lazy mount, fault in only what the job touches
    estargz = to_estargz(image, prefetch_landmarks=("/opt/app/solver",))
    lazy_transport = LazyPullTransport(latency=15e-3, bandwidth=1.0e9)
    view = LazyMountedView(estargz, lazy_transport)
    lazy_ready = view.mount_cost()
    read_cost = sum(view.read(p)[0] for p in TOUCHED)
    lazy_bytes = lazy_transport.stats["bytes_fetched"]

    return {
        "image_compressed_mb": image.compressed_size / 1e6,
        "full": {"ready_s": full_pull_time, "bytes_mb": full_bytes / 1e6},
        "sif": {"ready_s": sif_pull_time, "convert_s": convert_cost,
                "bytes_mb": sif_bytes / 1e6},
        "lazy": {"ready_s": lazy_ready, "touched_read_s": read_cost,
                 "bytes_mb": lazy_bytes / 1e6,
                 "resident": view.resident_fraction()},
    }


def test_lazy_pull_vs_full_vs_sif(benchmark, out_dir):
    r = once(benchmark, measure)
    lines = [
        f"Sparse job over a {r['image_compressed_mb']:.0f} MB (compressed) image",
        "",
        f"  full OCI pull : ready in {r['full']['ready_s']:7.2f}s, "
        f"{r['full']['bytes_mb']:8.1f} MB moved",
        f"  SIF (cached)  : ready in {r['sif']['ready_s']:7.2f}s "
        f"(+{r['sif']['convert_s']:.1f}s one-time convert), "
        f"{r['sif']['bytes_mb']:8.1f} MB moved",
        f"  eStargz lazy  : ready in {r['lazy']['ready_s']:7.2f}s, "
        f"{r['lazy']['bytes_mb']:8.1f} MB moved "
        f"({r['lazy']['resident']:.1%} of image resident)",
    ]
    write_artifact(out_dir, "lazy_pull.txt", "\n".join(lines) + "\n")

    # lazy mount is ready orders of magnitude before a full pull
    assert r["lazy"]["ready_s"] < r["full"]["ready_s"] / 10
    # and moves a small fraction of the bytes for a sparse access pattern
    assert r["lazy"]["bytes_mb"] < r["full"]["bytes_mb"] / 4
    assert r["lazy"]["resident"] < 0.35
    # SIF still wins on repeated whole-image runs (single streaming file),
    # but pays a conversion up front
    assert r["sif"]["convert_s"] > 0
