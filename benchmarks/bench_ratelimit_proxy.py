"""§5.1.3 claim (C4): DockerHub-style rate limiting vs a pull-through
proxy.

"Any site with a small number of public IP addresses for a large number
of clients is quickly affected by this ... a proxy server to cache the
requests" fixes it — and also slashes upstream traffic.
"""

from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import (
    OCIDistributionRegistry,
    PullThroughProxy,
    RateLimiter,
    RateLimitExceeded,
)

from conftest import once, write_artifact

N_NODES = 128
PULL_LIMIT = 100  # DockerHub anonymous: 100 pulls / 6h / IP


def build_hub():
    hub = OCIDistributionRegistry(
        name="dockerhub",
        rate_limiter=RateLimiter(max_requests=PULL_LIMIT, window_seconds=6 * 3600),
    )
    image = Builder(BaseImageCatalog()).build_dockerfile(
        "FROM python:3.11\nRUN pip-install workflow-tools 100"
    )
    hub.push_image("library/pipeline", "latest", image)
    return hub, image


def pull_storm(with_proxy: bool):
    hub, image = build_hub()
    nat_ip = "198.51.100.1"  # the site's single egress IP
    proxy = PullThroughProxy(hub, egress_ip=nat_ip) if with_proxy else None
    succeeded = failed = 0
    upstream_bytes = 0
    for node in range(N_NODES):
        now = node * 2.0  # a job-array start: nodes pull within minutes
        try:
            if proxy is not None:
                proxy.pull_image("library/pipeline", "latest", now=now)
            else:
                hub.pull_image("library/pipeline", "latest", ip=nat_ip, now=now)
            succeeded += 1
        except RateLimitExceeded:
            failed += 1
    if proxy is not None:
        upstream_bytes = proxy.stats["upstream_bytes"]
        upstream_requests = proxy.stats["upstream_requests"]
    else:
        upstream_bytes = succeeded * image.compressed_size
        upstream_requests = succeeded
    return {
        "succeeded": succeeded,
        "rate_limited": failed,
        "upstream_requests": upstream_requests,
        "upstream_bytes": upstream_bytes,
    }


def measure():
    return {"direct": pull_storm(with_proxy=False), "proxied": pull_storm(with_proxy=True)}


def test_rate_limit_vs_proxy(benchmark, out_dir):
    results = once(benchmark, measure)
    direct, proxied = results["direct"], results["proxied"]
    lines = [
        f"{N_NODES} compute nodes pull one image behind a single NAT IP",
        f"(upstream limit: {PULL_LIMIT} pulls / 6 h / IP)",
        "",
        f"  direct:  {direct['succeeded']} ok, {direct['rate_limited']} rate-limited, "
        f"{direct['upstream_requests']} upstream requests",
        f"  proxied: {proxied['succeeded']} ok, {proxied['rate_limited']} rate-limited, "
        f"{proxied['upstream_requests']} upstream request(s), "
        f"{proxied['upstream_bytes'] / 1e6:.1f} MB upstream",
    ]
    write_artifact(out_dir, "ratelimit_proxy.txt", "\n".join(lines) + "\n")

    assert direct["rate_limited"] == N_NODES - PULL_LIMIT  # the cluster blows the budget
    assert proxied["rate_limited"] == 0                    # the proxy absorbs it
    assert proxied["upstream_requests"] == 1               # one fetch, cached for all
    assert proxied["upstream_bytes"] < direct["upstream_bytes"] / 50
