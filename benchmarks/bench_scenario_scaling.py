"""§6.5 scaling ablation: how the kubelets-in-allocation approach
behaves as allocations grow.

The standing control plane amortizes over allocations; per-allocation
provision time is dominated by the kubelet join (constant-ish) while
the pod workload parallelizes across the allocation's nodes.
"""

from repro.scenarios import KubeletInAllocationScenario
from repro.scenarios.base import WORKFLOW_IMAGE
from repro.sim import Environment
from repro.workload.generators import PodBatchGenerator

from conftest import once, write_artifact


def run_once(n_nodes: int, pods_per_node: int = 4):
    env = Environment()
    scenario = KubeletInAllocationScenario(env, n_nodes=n_nodes)
    ready = scenario.provision()
    env.run(until=ready)
    pods = PodBatchGenerator(WORKFLOW_IMAGE, seed=5, cpu_choices=(8,),
                             duration_range=(60, 60)).batch(n_nodes * pods_per_node)
    submit_at = env.now
    scenario.submit(pods)
    env.run(until=submit_at + 2000)
    scenario.teardown()
    env.run(until=env.now + 50)
    metrics = scenario.metrics()
    makespan = max(p.end_time for p in pods) - submit_at
    return {
        "nodes": n_nodes,
        "pods": len(pods),
        "steady_provision_s": scenario.steady_state_provision_time,
        "mean_pod_startup_s": metrics.mean_pod_startup,
        "workload_makespan_s": makespan,
        "completed": metrics.pods_completed,
    }


def sweep():
    return [run_once(n) for n in (2, 4, 8)]


def test_65_scaling(benchmark, out_dir):
    rows = once(benchmark, sweep)
    lines = ["§6.5 scaling: pods = 4x nodes, 60s each, 8 cores", ""]
    for r in rows:
        lines.append(
            f"  {r['nodes']:>2} nodes / {r['pods']:>2} pods: provision "
            f"{r['steady_provision_s']:5.2f}s  pod-startup {r['mean_pod_startup_s']:5.2f}s  "
            f"makespan {r['workload_makespan_s']:7.1f}s"
        )
    write_artifact(out_dir, "scenario65_scaling.txt", "\n".join(lines) + "\n")

    assert all(r["completed"] == r["pods"] for r in rows)
    # per-allocation provision stays flat-ish as the allocation grows
    assert rows[-1]["steady_provision_s"] < 2.5 * rows[0]["steady_provision_s"]
    # proportional workload on proportional nodes: makespan roughly flat
    assert rows[-1]["workload_makespan_s"] < 1.5 * rows[0]["workload_makespan_s"]
