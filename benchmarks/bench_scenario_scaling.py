"""§6.5 scaling ablation: how the kubelets-in-allocation approach
behaves as allocations grow.

The standing control plane amortizes over allocations; per-allocation
provision time is dominated by the kubelet join (constant-ish) while
the pod workload parallelizes across the allocation's nodes.

Writes ``out/scenario65_scaling.json`` in the same JSON artifact
convention as the ``BENCH_*.json`` trajectory files: a ``schema`` tag
plus machine-independent rounded rows, so the sweep's numbers diff
cleanly across PRs instead of living in a rendered text table.
"""

import json

from repro.scenarios import KubeletInAllocationScenario
from repro.scenarios.base import WORKFLOW_IMAGE
from repro.sim import Environment
from repro.workload.generators import PodBatchGenerator

from conftest import once, write_artifact


def run_once(n_nodes: int, pods_per_node: int = 4):
    env = Environment()
    scenario = KubeletInAllocationScenario(env, n_nodes=n_nodes)
    ready = scenario.provision()
    env.run(until=ready)
    pods = PodBatchGenerator(WORKFLOW_IMAGE, seed=5, cpu_choices=(8,),
                             duration_range=(60, 60)).batch(n_nodes * pods_per_node)
    submit_at = env.now
    scenario.submit(pods)
    env.run(until=submit_at + 2000)
    scenario.teardown()
    env.run(until=env.now + 50)
    metrics = scenario.metrics()
    makespan = max(p.end_time for p in pods) - submit_at
    return {
        "nodes": n_nodes,
        "pods": len(pods),
        "steady_provision_s": round(scenario.steady_state_provision_time, 6),
        "mean_pod_startup_s": round(metrics.mean_pod_startup, 6),
        "workload_makespan_s": round(makespan, 6),
        "completed": metrics.pods_completed,
    }


def sweep():
    return [run_once(n) for n in (2, 4, 8)]


def test_65_scaling(benchmark, out_dir):
    rows = once(benchmark, sweep)
    document = {
        "schema": "scenario65-scaling/1",
        "workload": "pods = 4x nodes, 60s each, 8 cores",
        "rows": rows,
    }
    write_artifact(
        out_dir, "scenario65_scaling.json", json.dumps(document, indent=2) + "\n"
    )

    assert all(r["completed"] == r["pods"] for r in rows)
    # per-allocation provision stays flat-ish as the allocation grows
    assert rows[-1]["steady_provision_s"] < 2.5 * rows[0]["steady_provision_s"]
    # proportional workload on proportional nodes: makespan roughly flat
    assert rows[-1]["workload_makespan_s"] < 1.5 * rows[0]["workload_makespan_s"]
