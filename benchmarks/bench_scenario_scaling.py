"""§6.5 scaling ablation: how the kubelets-in-allocation approach
behaves as allocations grow.

The standing control plane amortizes over allocations; per-allocation
provision time is dominated by the kubelet join (constant-ish) while
the pod workload parallelizes across the allocation's nodes.

Writes ``out/scenario65_scaling.json`` in the same JSON artifact
convention as the ``BENCH_*.json`` trajectory files: a ``schema`` tag
plus machine-independent rounded rows (split per phase — provision vs
workload — since PR 8), so the sweep's numbers diff cleanly across PRs
instead of living in a rendered text table.

Run as a script (``python benchmarks/bench_scenario_scaling.py``) this
file additionally times the *fleet-scale* sweep — the same scenario at
64/256/1024 nodes, once on the indexed control plane and once with
``naive=True`` (the retained pre-optimization linear-scan paths) — and
checks that the two modes are byte-identical on the canonical report
surface (rows + per-pod digests) while the indexed mode is at least
``RATIO_FLOOR``x faster at 1024 nodes.  Environment knobs mirror
``bench_simcore_wallclock``:

- ``SCENARIO_BENCH_OUT``       output filename (default ``BENCH_LOCAL.json``)
- ``SCENARIO_BENCH_BASELINE``  committed ``BENCH_*.json`` file(s), comma-
  separated; fails if any fast-mode point's normalized wall regresses
- ``SCENARIO_BENCH_TOLERANCE`` allowed relative regression (default 0.25)
- ``SCENARIO_BENCH_FULL``      when set, also runs the full
  ``bench_simcore_wallclock`` suite and merges its ``benchmarks`` dict
  into the output, so one file (``BENCH_PR8.json``) can serve both this
  gate and the ``SIMCORE_BENCH_BASELINE`` list
"""

import hashlib
import json
import os
import pathlib
import time

from repro.scenarios import KubeletInAllocationScenario
from repro.scenarios.base import WORKFLOW_IMAGE
from repro.sim import Environment
from repro.workload.generators import PodBatchGenerator

from conftest import once, write_artifact

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: fleet-scale sweep sizes; the last is the §6 "thousands of nodes" bar.
SCALE_NODES = (64, 256, 1024)
SCALE_PODS_PER_NODE = 2
#: indexed control plane must beat the retained naive paths by this much
#: at the largest sweep point.
RATIO_FLOOR = 3.0


def pod_digest(pods) -> str:
    """Order-independent fingerprint of the per-pod outcome surface.

    Covers exactly what a user-visible report is built from — name,
    binding, terminal phase, start/end virtual times (full ``repr``
    precision) — and none of the internal bookkeeping (profile counters,
    apiserver stats) that legitimately differs between the indexed and
    naive control-plane modes.
    """
    lines = sorted(
        f"{p.metadata.name} {p.node_name} {p.phase.value} "
        f"{p.start_time!r} {p.end_time!r}"
        for p in pods
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]


def run_once(n_nodes: int, pods_per_node: int = 4, naive: bool = False):
    env = Environment()
    scenario = KubeletInAllocationScenario(env, n_nodes=n_nodes, naive=naive)
    ready = scenario.provision()
    env.run(until=ready)
    provision_end = env.now
    pods = PodBatchGenerator(WORKFLOW_IMAGE, seed=5, cpu_choices=(8,),
                             duration_range=(60, 60)).batch(n_nodes * pods_per_node)
    submit_at = env.now
    scenario.submit(pods)
    env.run(until=submit_at + 2000)
    scenario.teardown()
    env.run(until=env.now + 50)
    metrics = scenario.metrics()
    workload_end = max(p.end_time for p in pods)
    makespan = workload_end - submit_at
    return {
        "nodes": n_nodes,
        "pods": len(pods),
        "steady_provision_s": round(scenario.steady_state_provision_time, 6),
        "mean_pod_startup_s": round(metrics.mean_pod_startup, 6),
        "workload_makespan_s": round(makespan, 6),
        "completed": metrics.pods_completed,
        "phases": {
            "provision": {
                "virtual_start_s": 0.0,
                "virtual_end_s": round(provision_end, 6),
            },
            "workload": {
                "virtual_start_s": round(submit_at, 6),
                "virtual_end_s": round(workload_end, 6),
            },
        },
        "pod_digest": pod_digest(pods),
    }


def sweep():
    return [run_once(n) for n in (2, 4, 8)]


def test_65_scaling(benchmark, out_dir):
    rows = once(benchmark, sweep)
    document = {
        "schema": "scenario65-scaling/2",
        "workload": "pods = 4x nodes, 60s each, 8 cores",
        "rows": rows,
    }
    write_artifact(
        out_dir, "scenario65_scaling.json", json.dumps(document, indent=2) + "\n"
    )

    assert all(r["completed"] == r["pods"] for r in rows)
    # per-allocation provision stays flat-ish as the allocation grows
    assert rows[-1]["steady_provision_s"] < 2.5 * rows[0]["steady_provision_s"]
    # proportional workload on proportional nodes: makespan roughly flat
    assert rows[-1]["workload_makespan_s"] < 1.5 * rows[0]["workload_makespan_s"]
    # both phases land in order on the virtual clock
    for row in rows:
        phases = row["phases"]
        assert phases["provision"]["virtual_end_s"] <= phases["workload"]["virtual_start_s"]
        assert phases["workload"]["virtual_start_s"] < phases["workload"]["virtual_end_s"]


# --- fleet-scale sweep (script entry point only; too heavy for pytest) ---


def run_scale_suite(calibration_s: float) -> dict:
    """The 64/256/1024-node sweep, indexed vs retained-naive.

    Both modes must produce byte-identical canonical rows (including the
    per-pod digest); only wall-clock may differ — and must, by at least
    :data:`RATIO_FLOOR` at the largest point.
    """
    scale: dict[str, dict] = {"fast": {}, "naive": {}}
    for mode, naive in (("fast", False), ("naive", True)):
        for n_nodes in SCALE_NODES:
            t0 = time.perf_counter()
            row = run_once(n_nodes, pods_per_node=SCALE_PODS_PER_NODE, naive=naive)
            wall = time.perf_counter() - t0
            scale[mode][f"n{n_nodes}"] = {
                "wall_clock_s": round(wall, 4),
                "normalized_wall": round(wall / calibration_s, 2),
                "row": row,
            }
            print(f"scenario-scale {mode} n={n_nodes}: {wall:.2f}s wall, "
                  f"{row['completed']}/{row['pods']} pods")
    ratios = {}
    for n_nodes in SCALE_NODES:
        key = f"n{n_nodes}"
        fast_wall = scale["fast"][key]["wall_clock_s"]
        ratios[key] = round(scale["naive"][key]["wall_clock_s"] / max(fast_wall, 1e-9), 2)
    return {"scale": scale, "ratios": ratios}


def check_scale_identity(result: dict) -> list[str]:
    """Fast and naive modes must agree on the entire canonical row."""
    failures = []
    for key, fast in result["scale"]["fast"].items():
        naive = result["scale"]["naive"][key]
        if fast["row"] != naive["row"]:
            failures.append(f"{key}: indexed row diverges from naive oracle")
    return failures


def check_scale_regression(
    result: dict, baseline: dict, tolerance: float, label: str = ""
) -> list[str]:
    """Gate fast-mode normalized wall against a committed baseline.

    Naive-mode wall is the foil, not a gate — it is *expected* to look
    worse as the indexed paths improve.
    """
    failures = []
    tag = f" [{label}]" if label else ""
    base_scale = baseline.get("scale", {}).get("fast", {})
    for key, fresh in result["scale"]["fast"].items():
        base = base_scale.get(key)
        if base is None:
            continue
        allowed = base["normalized_wall"] * (1.0 + tolerance)
        if fresh["normalized_wall"] > allowed:
            failures.append(
                f"scenario-scale {key}{tag}: normalized wall "
                f"{fresh['normalized_wall']:.2f} exceeds baseline "
                f"{base['normalized_wall']:.2f} by more than {tolerance:.0%}"
            )
    return failures


def check_scale_baselines(result: dict, baseline_env: str, tolerance: float) -> list[str]:
    failures: list[str] = []
    for name in filter(None, (n.strip() for n in baseline_env.split(","))):
        baseline = json.loads((REPO_ROOT / name).read_text())
        failures.extend(
            check_scale_regression(result, baseline, tolerance, label=name)
        )
    return failures


if __name__ == "__main__":  # pragma: no cover - manual/CI entry point
    import bench_simcore_wallclock

    calibration_s = bench_simcore_wallclock.calibrate()
    outcome: dict = {
        "schema": "scenario-scale/1",
        "calibration_s": round(calibration_s, 5),
        "pods_per_node": SCALE_PODS_PER_NODE,
    }
    outcome.update(run_scale_suite(calibration_s))

    identity = check_scale_identity(outcome)
    if identity:
        raise SystemExit("MODE DRIFT: " + "; ".join(identity))
    top = f"n{SCALE_NODES[-1]}"
    if outcome["ratios"][top] < RATIO_FLOOR:
        raise SystemExit(
            f"SPEEDUP REGRESSION: indexed control plane only "
            f"{outcome['ratios'][top]:.2f}x over naive at {top} "
            f"(floor {RATIO_FLOOR}x)"
        )
    print(f"indexed vs naive: {outcome['ratios']} (floor {RATIO_FLOOR}x at {top}); "
          f"rows byte-identical across modes")

    if os.environ.get("SCENARIO_BENCH_FULL"):
        full = bench_simcore_wallclock.run_suite()
        outcome["benchmarks"] = full["benchmarks"]

    out_name = os.environ.get("SCENARIO_BENCH_OUT", "BENCH_LOCAL.json")
    (REPO_ROOT / out_name).write_text(json.dumps(outcome, indent=2) + "\n")

    baseline_env = os.environ.get("SCENARIO_BENCH_BASELINE")
    if baseline_env:
        tol = float(os.environ.get("SCENARIO_BENCH_TOLERANCE", "0.25"))
        problems = check_scale_baselines(outcome, baseline_env, tol)
        if problems:
            raise SystemExit("PERF REGRESSION: " + "; ".join(problems))
    print("scenario-scale wall-clock within tolerance")
