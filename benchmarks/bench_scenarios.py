"""§6.6 — the scenario comparison, quantified.

Runs all six integration setups (§6.1–§6.5, with §6.4 split into its two
modalities) on an identical pod workload and reproduces the summary:
"The only solutions satisfying the requirements are therefore the ones
mentioned in section 6.5 and the second part of 6.4."
"""

from repro.core.tables import render_table
from repro.scenarios import evaluate_all
from repro.scenarios.evaluate import summary_rows

from conftest import once, write_artifact


def run_matrix():
    return evaluate_all(n_nodes=4, n_pods=8, seed=0)


def test_section66_comparison(benchmark, out_dir):
    metrics = once(benchmark, run_matrix)
    rows = summary_rows(metrics)
    text = render_table(rows, "§6.6 scenario comparison (8 pods on 4 nodes)")
    notes = [f"\n{m.scenario}:" + "".join(f"\n  - {n}" for n in m.notes) for m in metrics if m.notes]
    write_artifact(out_dir, "section66_scenarios.txt", text + "\n".join(notes) + "\n")

    by_name = {m.scenario: m for m in metrics}

    # every scenario completed the workload (feasibility)
    assert all(m.pods_completed == m.pods_submitted for m in metrics)

    # §6.6 headline: only KNoC and §6.5 satisfy all requirements
    satisfying = {n for n, m in by_name.items() if m.satisfies_section6_requirements()}
    assert satisfying == {"knoc-virtual-kubelet", "kubelet-in-allocation"}

    # accounting: WLM-hosted scenarios only
    assert by_name["on-demand-reallocation"].wlm_accounting_coverage == 0.0
    assert by_name["wlm-in-kubernetes"].wlm_accounting_coverage == 0.0
    assert by_name["kubernetes-in-wlm"].wlm_accounting_coverage == 1.0
    assert by_name["kubelet-in-allocation"].wlm_accounting_coverage == 1.0

    # dynamic re-partitioning is slow and disturbing (§6.6)
    realloc = by_name["on-demand-reallocation"]
    assert realloc.mean_pod_startup > 10 * max(
        m.mean_pod_startup for n, m in by_name.items() if n != "on-demand-reallocation"
    )

    # §6.5 beats KNoC on environment standardness; both are transparent
    assert by_name["kubelet-in-allocation"].standard_pod_environment
    assert not by_name["knoc-virtual-kubelet"].standard_pod_environment
    assert by_name["knoc-virtual-kubelet"].workflow_transparency

    # the bridge requires workflow changes; §6.3 requires cluster bootstrap
    assert not by_name["bridge-operator"].workflow_transparency
    assert not by_name["kubernetes-in-wlm"].workflow_transparency
