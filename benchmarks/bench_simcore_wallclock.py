"""Wall-clock macro-benchmark of the discrete-event core.

Times the three heaviest existing sweeps end to end — the 64-node
small-file startup sweep (§3.2), the §6.5 scaling ablation, and the §6.6
scenario matrix — and records, for each, wall-clock seconds plus the
sim-core event counters from :mod:`repro.sim.profile`.  Results are
written as a ``BENCH_*.json`` file at the repo root, the repo's perf
trajectory: each PR that touches the hot path leaves its numbers behind
so the next one can't silently regress them.

Environment knobs (all optional):

- ``SIMCORE_BENCH_OUT``      output filename (default ``BENCH_LOCAL.json``;
  committed trajectory files like ``BENCH_PR2.json`` are written only
  when named explicitly, so a stray local run can't clobber history)
- ``SIMCORE_BENCH_BASELINE`` committed ``BENCH_*.json`` file(s) to
  compare against (comma-separated for several — e.g. an old floor plus
  the newest trajectory point); the test fails if any sweep's
  *normalized* wall-clock regresses beyond the tolerance against *any*
  of them
- ``SIMCORE_BENCH_TOLERANCE`` allowed relative regression (default 0.25)

Wall-clock comparisons across machines are normalized by a calibration
microloop (a fixed 60k-event ping workload timed on the same host), so a
slower CI runner doesn't read as a regression.  Event *counters* are
machine-independent and are additionally checked strictly: sweeps must
not process more than ``1 + tolerance`` times the baseline's events.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.sim import Environment
from repro.sim import profile

import bench_scenario_scaling
import bench_scenarios
import bench_smallfile_startup

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: (name, zero-arg callable) — the three heaviest sim-bound sweeps.
SWEEPS = [
    ("smallfile_startup_sweep", bench_smallfile_startup.sweep),
    ("scenario65_scaling_sweep", bench_scenario_scaling.sweep),
    ("section66_scenario_matrix", bench_scenarios.run_matrix),
]


def _calibration_workload() -> None:
    """A fixed sim-core microloop: ~60k events of pure bookkeeping."""
    env = Environment()

    def ping(env):
        for _ in range(200):
            yield env.timeout(1)

    for _ in range(100):
        env.process(ping(env))
    env.run()


def calibrate(repeats: int = 3) -> float:
    """Seconds this host takes for the calibration microloop (best of N)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _calibration_workload()
        best = min(best, time.perf_counter() - t0)
    return best


def run_suite() -> dict:
    """Time each sweep (counters off), then re-run it for counters."""
    calibration_s = calibrate()
    benchmarks = {}
    for name, fn in SWEEPS:
        t0 = time.perf_counter()
        fn()
        wall = time.perf_counter() - t0
        prof = profile.enable()
        fn()
        profile.disable()
        benchmarks[name] = {
            "wall_clock_s": round(wall, 4),
            "normalized_wall": round(wall / calibration_s, 2),
            "sim_counters": prof.snapshot(),
        }
    return {
        "schema": "simcore-wallclock/1",
        "calibration_s": round(calibration_s, 5),
        "benchmarks": benchmarks,
    }


def check_regression(
    result: dict, baseline: dict, tolerance: float, label: str = ""
) -> list[str]:
    """Compare a fresh run against a committed baseline; returns failures."""
    failures = []
    tag = f" [{label}]" if label else ""
    for name, fresh in result["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            continue
        allowed = base["normalized_wall"] * (1.0 + tolerance)
        if fresh["normalized_wall"] > allowed:
            failures.append(
                f"{name}{tag}: normalized wall-clock {fresh['normalized_wall']:.2f} "
                f"exceeds baseline {base['normalized_wall']:.2f} by more than "
                f"{tolerance:.0%}"
            )
        base_events = base["sim_counters"]["events_processed"]
        fresh_events = fresh["sim_counters"]["events_processed"]
        if fresh_events > base_events * (1.0 + tolerance):
            failures.append(
                f"{name}{tag}: {fresh_events} events processed vs baseline "
                f"{base_events} (> {tolerance:.0%} more simulator bookkeeping)"
            )
    return failures


def check_baselines(result: dict, baseline_env: str, tolerance: float) -> list[str]:
    """Run :func:`check_regression` against every comma-separated baseline."""
    failures: list[str] = []
    for name in filter(None, (n.strip() for n in baseline_env.split(","))):
        baseline = json.loads((REPO_ROOT / name).read_text())
        failures.extend(check_regression(result, baseline, tolerance, label=name))
    return failures


def test_simcore_wallclock(benchmark):
    result = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    out_name = os.environ.get("SIMCORE_BENCH_OUT", "BENCH_LOCAL.json")
    out_path = REPO_ROOT / out_name
    out_path.write_text(json.dumps(result, indent=2) + "\n")

    # The whole point of the batched/slotted core: even the heaviest sweep
    # is a bounded amount of simulator bookkeeping.  This bound is
    # machine-independent (the pre-optimization core processed >1M events
    # for the small-file sweep alone).
    smallfile = result["benchmarks"]["smallfile_startup_sweep"]["sim_counters"]
    assert smallfile["events_processed"] < 200_000

    baseline_env = os.environ.get("SIMCORE_BENCH_BASELINE")
    if baseline_env:
        tolerance = float(os.environ.get("SIMCORE_BENCH_TOLERANCE", "0.25"))
        failures = check_baselines(result, baseline_env, tolerance)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    outcome = run_suite()
    print(json.dumps(outcome, indent=2))
    for sweep_name, data in outcome["benchmarks"].items():
        c = data["sim_counters"]
        print(
            f"{sweep_name}: {c['events_processed']} events processed; tickless "
            f"parked {c['parked_processes']} times, {c['wakeups_fired']} wakeups, "
            f"{c['poll_ticks_skipped']} idle poll ticks skipped"
        )
        print(
            f"  rootfs CoW: {c['cow_clones']} O(1) clones, "
            f"{c['cow_copy_ups']} copy-ups, {c['digest_cache_hits']} digest "
            f"memo hits, {c['flatten_cache_hits']} flatten/convert cache hits"
        )
    name = os.environ.get("SIMCORE_BENCH_OUT", "BENCH_LOCAL.json")
    (REPO_ROOT / name).write_text(json.dumps(outcome, indent=2) + "\n")
    baseline_env = os.environ.get("SIMCORE_BENCH_BASELINE")
    if baseline_env:
        tol = float(os.environ.get("SIMCORE_BENCH_TOLERANCE", "0.25"))
        problems = check_baselines(outcome, baseline_env, tol)
        if problems:
            raise SystemExit("PERF REGRESSION: " + "; ".join(problems))
    print("wall-clock within tolerance")
