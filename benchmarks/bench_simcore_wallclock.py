"""Wall-clock macro-benchmark of the discrete-event core.

Times the three heaviest existing sweeps end to end — the 64-node
small-file startup sweep (§3.2), the §6.5 scaling ablation, and the §6.6
scenario matrix — and records, for each, wall-clock seconds plus the
sim-core event counters from :mod:`repro.sim.profile`.  Results are
written as a ``BENCH_*.json`` file at the repo root, the repo's perf
trajectory: each PR that touches the hot path leaves its numbers behind
so the next one can't silently regress them.

Environment knobs (all optional):

- ``SIMCORE_BENCH_OUT``      output filename (default ``BENCH_LOCAL.json``;
  committed trajectory files like ``BENCH_PR2.json`` are written only
  when named explicitly, so a stray local run can't clobber history)
- ``SIMCORE_BENCH_BASELINE`` committed ``BENCH_*.json`` file(s) to
  compare against (comma-separated for several — e.g. an old floor plus
  the newest trajectory point); the test fails if any sweep's
  *normalized* wall-clock regresses beyond the tolerance against *any*
  of them
- ``SIMCORE_BENCH_TOLERANCE`` allowed relative regression (default 0.25)

Wall-clock comparisons across machines are normalized by a calibration
microloop (a fixed 60k-event ping workload timed on the same host), so a
slower CI runner doesn't read as a regression.  Event *counters* are
machine-independent and are additionally checked strictly: sweeps must
not process more than ``1 + tolerance`` times the baseline's events.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.sim import Environment
from repro.sim import profile

import bench_scenario_scaling
import bench_scenarios
import bench_smallfile_startup

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: (name, zero-arg callable) — the three heaviest sim-bound sweeps.
SWEEPS = [
    ("smallfile_startup_sweep", bench_smallfile_startup.sweep),
    ("scenario65_scaling_sweep", bench_scenario_scaling.sweep),
    ("section66_scenario_matrix", bench_scenarios.run_matrix),
]

#: chaos sweep half of the shard workload: one scenario, 16 seeds.
SHARD_CHAOS_SCENARIO = "kubelet-in-allocation"
SHARD_CHAOS_SEEDS = range(16)


def _shard_cells():
    """The shard workload: the full §6.6 matrix plus a 16-seed chaos sweep."""
    from repro.shard import chaos_seed_sweep, scenario_matrix

    return scenario_matrix() + chaos_seed_sweep(
        SHARD_CHAOS_SCENARIO, SHARD_CHAOS_SEEDS
    )


def shard_parallel_jobs() -> int:
    """Worker count for the parallel shard entry: the host's cores,
    capped at 4 (the workload has 22 cells; more workers just idle),
    floored at 2 so the entry always exercises a real pool."""
    return max(2, min(4, os.cpu_count() or 1))


def run_shard_suite(calibration_s: float) -> dict:
    """Time the shard workload serial vs parallel from one warm snapshot.

    The merged profile counters come straight off the runner
    (:class:`~repro.shard.ShardResult`), are machine-independent, and —
    because the runner's merge is placement-invariant — identical
    between the two entries; ``snapshot_forks``/``warm_replays`` in the
    snapshot surface how much prefix work the fork replayed.
    """
    from repro.shard import WarmSnapshot, run_cells

    cells = _shard_cells()
    snapshot = WarmSnapshot.for_scenario_prefix()
    entries = {}
    for name, jobs in (
        ("shard_matrix_chaos_serial", 1),
        ("shard_matrix_chaos_parallel", shard_parallel_jobs()),
    ):
        t0 = time.perf_counter()
        result = run_cells(cells, jobs=jobs, snapshot=snapshot)
        wall = time.perf_counter() - t0
        entries[name] = {
            "wall_clock_s": round(wall, 4),
            "normalized_wall": round(wall / calibration_s, 2),
            "jobs": jobs,
            "cells": len(cells),
            "sim_counters": result.profile,
        }
    return entries


def _calibration_workload() -> None:
    """A fixed sim-core microloop: ~60k events of pure bookkeeping."""
    env = Environment()

    def ping(env):
        for _ in range(200):
            yield env.timeout(1)

    for _ in range(100):
        env.process(ping(env))
    env.run()


def calibrate(repeats: int = 3) -> float:
    """Seconds this host takes for the calibration microloop (best of N)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _calibration_workload()
        best = min(best, time.perf_counter() - t0)
    return best


def run_suite() -> dict:
    """Time each sweep (counters off), then re-run it for counters."""
    calibration_s = calibrate()
    benchmarks = {}
    for name, fn in SWEEPS:
        t0 = time.perf_counter()
        fn()
        wall = time.perf_counter() - t0
        prof = profile.enable()
        fn()
        profile.disable()
        benchmarks[name] = {
            "wall_clock_s": round(wall, 4),
            "normalized_wall": round(wall / calibration_s, 2),
            "sim_counters": prof.snapshot(),
        }
    benchmarks.update(run_shard_suite(calibration_s))
    return {
        "schema": "simcore-wallclock/1",
        "calibration_s": round(calibration_s, 5),
        "benchmarks": benchmarks,
    }


def check_regression(
    result: dict, baseline: dict, tolerance: float, label: str = ""
) -> list[str]:
    """Compare a fresh run against a committed baseline; returns failures."""
    failures = []
    tag = f" [{label}]" if label else ""
    for name, fresh in result["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            continue
        allowed = base["normalized_wall"] * (1.0 + tolerance)
        if fresh["normalized_wall"] > allowed:
            failures.append(
                f"{name}{tag}: normalized wall-clock {fresh['normalized_wall']:.2f} "
                f"exceeds baseline {base['normalized_wall']:.2f} by more than "
                f"{tolerance:.0%}"
            )
        base_events = base["sim_counters"]["events_processed"]
        fresh_events = fresh["sim_counters"]["events_processed"]
        if fresh_events > base_events * (1.0 + tolerance):
            failures.append(
                f"{name}{tag}: {fresh_events} events processed vs baseline "
                f"{base_events} (> {tolerance:.0%} more simulator bookkeeping)"
            )
    return failures


def check_baselines(result: dict, baseline_env: str, tolerance: float) -> list[str]:
    """Run :func:`check_regression` against every comma-separated baseline."""
    failures: list[str] = []
    for name in filter(None, (n.strip() for n in baseline_env.split(","))):
        baseline = json.loads((REPO_ROOT / name).read_text())
        failures.extend(check_regression(result, baseline, tolerance, label=name))
    return failures


def test_simcore_wallclock(benchmark):
    result = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    out_name = os.environ.get("SIMCORE_BENCH_OUT", "BENCH_LOCAL.json")
    out_path = REPO_ROOT / out_name
    out_path.write_text(json.dumps(result, indent=2) + "\n")

    # The whole point of the batched/slotted core: even the heaviest sweep
    # is a bounded amount of simulator bookkeeping.  This bound is
    # machine-independent (the pre-optimization core processed >1M events
    # for the small-file sweep alone).
    smallfile = result["benchmarks"]["smallfile_startup_sweep"]["sim_counters"]
    assert smallfile["events_processed"] < 200_000

    # Sharded execution is a pure re-scheduling: the merged counters are
    # machine- and placement-independent, so serial and parallel entries
    # must agree exactly, and the warm snapshot must actually replay the
    # scenario prefix in every cell.
    serial = result["benchmarks"]["shard_matrix_chaos_serial"]
    parallel = result["benchmarks"]["shard_matrix_chaos_parallel"]
    assert parallel["sim_counters"] == serial["sim_counters"]
    assert serial["sim_counters"]["shard_cells_run"] == serial["cells"]
    assert serial["sim_counters"]["snapshot_forks"] == serial["cells"]
    assert serial["sim_counters"]["warm_replays"] >= serial["cells"]
    if (os.cpu_count() or 1) >= 2:
        # the PR6 acceptance bar: ≤ 0.6x serial wall on a real multicore
        assert parallel["wall_clock_s"] <= 0.6 * serial["wall_clock_s"], (
            f"sharded run took {parallel['wall_clock_s']:.2f}s with "
            f"{parallel['jobs']} jobs vs {serial['wall_clock_s']:.2f}s serial"
        )

    baseline_env = os.environ.get("SIMCORE_BENCH_BASELINE")
    if baseline_env:
        tolerance = float(os.environ.get("SIMCORE_BENCH_TOLERANCE", "0.25"))
        failures = check_baselines(result, baseline_env, tolerance)
        assert not failures, "; ".join(failures)


if __name__ == "__main__":  # pragma: no cover - manual/CI smoke entry point
    outcome = run_suite()
    print(json.dumps(outcome, indent=2))
    for sweep_name, data in outcome["benchmarks"].items():
        c = data["sim_counters"]
        if "jobs" in data:
            print(
                f"{sweep_name}: {data['cells']} cells with jobs={data['jobs']} in "
                f"{data['wall_clock_s']:.2f}s; {c['snapshot_forks']} snapshot forks, "
                f"{c['warm_replays']} warm prefix replays"
            )
            continue
        print(
            f"{sweep_name}: {c['events_processed']} events processed; tickless "
            f"parked {c['parked_processes']} times, {c['wakeups_fired']} wakeups, "
            f"{c['poll_ticks_skipped']} idle poll ticks skipped"
        )
        print(
            f"  rootfs CoW: {c['cow_clones']} O(1) clones, "
            f"{c['cow_copy_ups']} copy-ups, {c['digest_cache_hits']} digest "
            f"memo hits, {c['flatten_cache_hits']} flatten/convert cache hits"
        )
    name = os.environ.get("SIMCORE_BENCH_OUT", "BENCH_LOCAL.json")
    (REPO_ROOT / name).write_text(json.dumps(outcome, indent=2) + "\n")
    serial = outcome["benchmarks"]["shard_matrix_chaos_serial"]
    parallel = outcome["benchmarks"]["shard_matrix_chaos_parallel"]
    if parallel["sim_counters"] != serial["sim_counters"]:
        raise SystemExit("shard merge drift: serial and parallel counters differ")
    if (os.cpu_count() or 1) >= 2 and parallel["wall_clock_s"] > 0.6 * serial["wall_clock_s"]:
        raise SystemExit(
            f"SHARD REGRESSION: {parallel['wall_clock_s']:.2f}s with "
            f"{parallel['jobs']} jobs vs {serial['wall_clock_s']:.2f}s serial "
            f"(> 0.6x on {os.cpu_count()} cores)"
        )
    baseline_env = os.environ.get("SIMCORE_BENCH_BASELINE")
    if baseline_env:
        tol = float(os.environ.get("SIMCORE_BENCH_TOLERANCE", "0.25"))
        problems = check_baselines(outcome, baseline_env, tol)
        if problems:
            raise SystemExit("PERF REGRESSION: " + "; ".join(problems))
    print("wall-clock within tolerance")
