"""§3.2 / §4.1.4 claims:

- "A container image contains many small files which may be loaded from
  shared storage from many compute nodes and that put strain on the
  cluster filesystem, slowing down startup time";
- flattening to a single-file image "potentially provid[es] a speedup
  against traditional application execution by trading memory and CPU
  (decompression) for disk IO";
- the A2 ablation: node-local extraction vs shared-FS image (§4.1.2
  workaround).

The sweep launches a Python-like app (3000 small files) on 1..64 nodes
under three strategies and reports per-node startup time.
"""

from repro.fs import FileTree, SharedFS, pack_squash
from repro.fs.drivers import mount_squash
from repro.fs.perf import PROFILES
from repro.sim import Environment

from conftest import once, write_artifact

N_FILES = 1500
FILE_SIZE = 3_000


def _populate(tree, prefix="/app"):
    for i in range(N_FILES):
        tree.create_file(f"{prefix}/mod_{i:04}.py", size=FILE_SIZE)


#: the app tree is built once; every strategy and node count then packs
#: it through :func:`pack_squash`, whose content-addressed memo serves
#: the repeats (packing dominated sweep setup when done 8+ times per
#: run).  Unlike the old file-local memo, the repeat packs now register
#: as ``flatten_cache_hits`` in the profile counters.  The image is only
#: ever mounted read-only.
_APP_TREE = None


def _app_squash_image():
    global _APP_TREE
    if _APP_TREE is None:
        _APP_TREE = FileTree()
        _populate(_APP_TREE)
    return pack_squash(_APP_TREE)


def strategy_sharedfs_files(n_nodes: int) -> float:
    """Unpacked image directory on the shared FS: every node opens every
    small file through the metadata server."""
    env = Environment()
    fs = SharedFS(env=env, mds_capacity=4)
    _populate(fs.tree)
    for _ in range(n_nodes):
        env.process(fs.proc_load_tree("/app"))
    env.run()
    return env.now


def strategy_squash_on_sharedfs(n_nodes: int) -> float:
    """Single squash file on the shared FS: one streaming read per node
    (a couple of MDS ops), decompression on the node."""
    env = Environment()
    fs = SharedFS(env=env, mds_capacity=4)
    image = _app_squash_image()
    fs.tree.create_file("/images/app.squash", size=image.compressed_size)

    def one_node():
        yield env.process(fs.proc_open("/images/app.squash"))
        yield env.process(fs.proc_read_file("/images/app.squash"))
        view = mount_squash(image, fuse=False)
        # in-container small-file IO now hits the local squash mount
        yield env.timeout(view.load_all("/app"))

    for _ in range(n_nodes):
        env.process(one_node())
    env.run()
    return env.now


def strategy_nodelocal_extract(n_nodes: int) -> float:
    """Pull the squash once per node, extract to tmpfs, read locally
    (the Charliecloud/enroot route)."""
    env = Environment()
    fs = SharedFS(env=env, mds_capacity=4)
    image = _app_squash_image()
    fs.tree.create_file("/images/app.squash", size=image.compressed_size)
    tmp_model = PROFILES["tmpfs"]

    def one_node():
        yield env.process(fs.proc_open("/images/app.squash"))
        yield env.process(fs.proc_read_file("/images/app.squash"))
        yield env.timeout(image.uncompressed_size / 450e6)  # extract
        per_file = tmp_model.metadata_cost(3) + tmp_model.sequential_read_cost(FILE_SIZE)
        yield env.timeout(N_FILES * per_file)

    for _ in range(n_nodes):
        env.process(one_node())
    env.run()
    return env.now


def sweep():
    rows = []
    for n in (1, 4, 16, 64):
        rows.append(
            {
                "nodes": n,
                "sharedfs_files_s": strategy_sharedfs_files(n),
                "squash_sharedfs_s": strategy_squash_on_sharedfs(n),
                "nodelocal_extract_s": strategy_nodelocal_extract(n),
            }
        )
    return rows


def test_smallfile_startup_sweep(benchmark, out_dir):
    rows = once(benchmark, sweep)
    lines = [
        "Startup of a many-small-file app (1500 files) across node counts",
        f"{'nodes':>6} | {'shared-FS files':>16} | {'squash on shared':>17} | {'node-local dir':>15}",
    ]
    for r in rows:
        lines.append(
            f"{r['nodes']:>6} | {r['sharedfs_files_s']:>15.2f}s | "
            f"{r['squash_sharedfs_s']:>16.2f}s | {r['nodelocal_extract_s']:>14.2f}s"
        )
    r64 = rows[-1]
    speedup = r64["sharedfs_files_s"] / r64["squash_sharedfs_s"]
    lines += ["", f"  flattened-image speedup at 64 nodes: {speedup:.1f}x"]
    write_artifact(out_dir, "smallfile_startup.txt", "\n".join(lines) + "\n")

    # shape claims:
    r1 = rows[0]
    # the MDS-bound strategy degrades super-linearly with node count...
    assert r64["sharedfs_files_s"] > 10 * r1["sharedfs_files_s"]
    # ...while the single-file strategies scale far more gracefully
    assert r64["squash_sharedfs_s"] < 6 * r1["squash_sharedfs_s"]
    # at scale, flattening wins big (the paper's central §3.2 point)
    assert speedup > 5
    # and the advantage *grows* with node count: MDS contention, not raw
    # latency, is what kills the many-small-file strategy at scale
    speedup_1 = r1["sharedfs_files_s"] / r1["squash_sharedfs_s"]
    assert speedup > 5 * speedup_1
