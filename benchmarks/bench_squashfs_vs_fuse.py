"""§4.1.2 claim (ref [29], CSCS squashfs-mount benchmarks):

"benchmarks comparing SquashFUSE and the in-kernel SquashFS show a
magnitude lower IOPS for random access and a much higher latency" —
and the corollary that interpreted (many-small-file) workloads feel it
while compiled codes mostly do not.
"""

from repro.fs import FileTree, pack_squash
from repro.fs.drivers import mount_squash
from repro.workload.apps import CompiledMPIApp, PythonPipelineApp

from conftest import once, write_artifact


def build_images():
    py_tree = FileTree()
    py_tree.create_file("/usr/bin/python3.11", size=6_000_000)
    for i in range(1500):
        py_tree.create_file(f"/usr/lib/python3.11/mod_{i:04}.py", size=3_000)
    mpi_tree = FileTree()
    mpi_tree.create_file("/opt/app/bin/solver", size=45_000_000)
    mpi_tree.create_file("/opt/app/share/params.dat", size=120_000_000)
    return pack_squash(py_tree), pack_squash(mpi_tree)


def measure():
    py_img, mpi_img = build_images()
    rows = []
    views = {}
    for driver in ("kernel", "fuse"):
        fuse = driver == "fuse"
        py_view = mount_squash(py_img, fuse=fuse)
        mpi_view = mount_squash(mpi_img, fuse=fuse)
        views[driver] = py_view
        rows.append(
            {
                "driver": driver,
                "random_iops": py_view.cost_model.effective_random_iops(),
                "open_latency_us": py_view.cost_model.open_cost() * 1e6,
                "python_startup_s": PythonPipelineApp().startup_cost(py_view),
                "mpi_startup_s": CompiledMPIApp().startup_cost(mpi_view),
            }
        )
    return rows


def test_squashfuse_vs_kernel_squashfs(benchmark, out_dir):
    rows = once(benchmark, measure)
    kernel, fuse = rows[0], rows[1]
    lines = ["SquashFS kernel driver vs SquashFUSE (paper §4.1.2 / ref [29])", ""]
    for row in rows:
        lines.append(
            f"  {row['driver']:>6}: {row['random_iops']:>9.0f} IOPS  "
            f"open={row['open_latency_us']:6.1f}us  "
            f"python-start={row['python_startup_s']:7.3f}s  "
            f"mpi-start={row['mpi_startup_s']:7.3f}s"
        )
    iops_ratio = kernel["random_iops"] / fuse["random_iops"]
    latency_ratio = fuse["open_latency_us"] / kernel["open_latency_us"]
    py_penalty = fuse["python_startup_s"] / kernel["python_startup_s"]
    mpi_penalty = fuse["mpi_startup_s"] / kernel["mpi_startup_s"]
    lines += [
        "",
        f"  random-IOPS ratio (kernel/fuse): {iops_ratio:.1f}x   (paper: ~an order of magnitude)",
        f"  open-latency ratio (fuse/kernel): {latency_ratio:.1f}x (paper: much higher latency)",
        f"  python startup penalty: {py_penalty:.2f}x   mpi startup penalty: {mpi_penalty:.2f}x",
        "  (paper: noticeable for interpreted many-small-file stacks,",
        "   mostly start-time-only for compiled codes)",
    ]
    write_artifact(out_dir, "squashfs_vs_fuse.txt", "\n".join(lines) + "\n")

    assert 5 <= iops_ratio <= 50          # ~order of magnitude
    assert latency_ratio > 3              # much higher latency
    assert py_penalty > 1.5               # interpreted stacks feel it...
    assert mpi_penalty < py_penalty / 1.5 # ...much more than compiled ones
    assert mpi_penalty < 2.0              # compiled: a start-time-only tax
