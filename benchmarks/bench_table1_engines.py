"""Table 1 — engine overview, rootless techniques, OCI compatibility.

Regenerates the table from the live engine implementations and verifies
it against every row of the paper's Table 1.
"""

from repro.core import render_table, table1_engines

from conftest import once, write_artifact

#: the paper's Table 1, as (engine -> expected key cells)
PAPER_TABLE1 = {
    "docker": {"champion": "Docker", "runtime": "runc", "language": "Go",
               "rootless": "UserNS", "rootless_fs": "fuse-overlayfs",
               "monitor": "per-machine (dockerd)", "oci_hooks": "yes",
               "oci_container": "yes"},
    "podman": {"champion": "RedHat/IBM", "runtime": "crun", "language": "Go",
               "rootless_fs": "fuse-overlayfs",
               "monitor": "per-container (conmon)", "oci_container": "yes"},
    "podman-hpc": {"champion": "NERSC", "language": "Python, C",
                   "rootless_fs": "SquashFUSE, fuse-overlayfs",
                   "oci_hooks": "yes"},
    "shifter": {"champion": "NERSC", "runtime": "shifter", "language": "C",
                "rootless_fs": "suid", "monitor": "no", "oci_hooks": "no",
                "oci_container": "partial"},
    "sarus": {"champion": "CSCS", "runtime": "runc", "language": "C++",
              "rootless_fs": "suid", "oci_hooks": "yes",
              "oci_container": "partial"},
    "charliecloud": {"champion": "LANL", "language": "C",
                     "rootless_fs": "Dir, SquashFUSE", "oci_hooks": "no",
                     "oci_container": "partial"},
    "apptainer": {"champion": "LLNL, CIQ", "affiliation": "Linux Foundation",
                  "runtime": "runc", "rootless": "UserNS/fakeroot",
                  "oci_hooks": "manual"},
    "singularity-ce": {"champion": "Sylabs", "runtime": "crun",
                       "rootless": "UserNS/fakeroot", "oci_hooks": "manual"},
    "enroot": {"champion": "Nvidia", "runtime": "enroot",
               "language": "C, Bash", "rootless_fs": "Dir",
               "oci_container": "partial"},
}


def test_table1_reproduction(benchmark, out_dir):
    rows = once(benchmark, table1_engines)
    write_artifact(out_dir, "table1_engines.txt", render_table(rows, "Table 1"))
    by_engine = {r["engine"]: r for r in rows}
    assert list(by_engine) == list(PAPER_TABLE1), "engine set/order differs from paper"
    mismatches = []
    for engine, expected in PAPER_TABLE1.items():
        for field, value in expected.items():
            got = by_engine[engine][field]
            if got != value:
                mismatches.append(f"{engine}.{field}: paper={value!r} repro={got!r}")
    assert not mismatches, "\n".join(mismatches)
