"""Table 2 — format conversion, caching, sharing, namespacing, signing,
encryption.  Regenerated from live engines and checked per paper row."""

from repro.core import render_table, table2_formats

from conftest import once, write_artifact

PAPER_TABLE2 = {
    "docker": {"transparent_conversion": False, "native_caching": False,
               "native_sharing": False, "namespacing": "full",
               "signature_verification": "notary", "encryption": False},
    "podman": {"transparent_conversion": False, "namespacing": "full",
               "signature_verification": "gpg, sigstore", "encryption": True},
    "podman-hpc": {"transparent_conversion": True, "native_caching": True,
                   "native_sharing": False, "namespacing": "full/user+mount",
                   "encryption": True},
    "shifter": {"transparent_conversion": True, "native_caching": True,
                "native_sharing": False, "namespacing": "user+mount",
                "signature_verification": "-", "encryption": False},
    "sarus": {"transparent_conversion": True, "native_caching": True,
              "native_sharing": True, "namespacing": "user+mount",
              "encryption": False},
    "charliecloud": {"transparent_conversion": False, "native_caching": False,
                     "native_sharing": False, "namespacing": "user+mount",
                     "encryption": False},
    "apptainer": {"transparent_conversion": True, "native_caching": True,
                  "native_sharing": True, "signature_verification": "gpg",
                  "encryption": True},
    "singularity-ce": {"transparent_conversion": True, "native_caching": True,
                       "native_sharing": True, "signature_verification": "gpg",
                       "encryption": True},
    "enroot": {"transparent_conversion": False, "namespacing": "user+mount",
               "signature_verification": "-", "encryption": False},
}


def test_table2_reproduction(benchmark, out_dir):
    rows = once(benchmark, table2_formats)
    write_artifact(out_dir, "table2_formats.txt", render_table(rows, "Table 2"))
    by_engine = {r["engine"]: r for r in rows}
    mismatches = []
    for engine, expected in PAPER_TABLE2.items():
        for field, value in expected.items():
            got = by_engine[engine][field]
            if got != value:
                mismatches.append(f"{engine}.{field}: paper={value!r} repro={got!r}")
    assert not mismatches, "\n".join(mismatches)
