"""Table 3 — GPU/accelerator/library hookup, WLM and module integration,
documentation grades, contributor counts."""

from repro.core import render_table, table3_integrations

from conftest import once, write_artifact

PAPER_TABLE3 = {
    "docker": {"gpu": "hooks", "accelerators": "hooks", "library_hookup": "hooks",
               "wlm_integration": "no", "build_tool": True,
               "module_integration": "shpc", "contributors": 486},
    "podman": {"gpu": "hooks", "wlm_integration": "no", "build_tool": True,
               "module_integration": "shpc", "contributors": 461},
    "podman-hpc": {"gpu": "yes", "accelerators": "hooks-or-patch",
                   "library_hookup": "yes", "build_tool": True,
                   "module_integration": "(shpc)", "contributors": 3},
    "shifter": {"gpu": "no", "accelerators": "no", "library_hookup": "mpich",
                "wlm_integration": "spank", "build_tool": False,
                "module_integration": "shpc-announced", "contributors": 17},
    "sarus": {"gpu": "yes", "accelerators": "hooks", "library_hookup": "yes",
              "wlm_integration": "partial-hooks", "build_tool": False,
              "contributors": 6},
    "charliecloud": {"gpu": "manual", "accelerators": "manual",
                     "library_hookup": "manual", "wlm_integration": "no",
                     "build_tool": False, "module_integration": "no",
                     "contributors": 31, "docs_user": "+++"},
    "apptainer": {"gpu": "yes", "accelerators": "no", "library_hookup": "manual",
                  "wlm_integration": "no", "build_tool": True,
                  "module_integration": "shpc", "contributors": 148},
    "singularity-ce": {"gpu": "yes", "build_tool": True,
                       "module_integration": "shpc", "contributors": 130},
    "enroot": {"gpu": "nvidia-only", "accelerators": "custom-hooks",
               "wlm_integration": "spank", "build_tool": False,
               "module_integration": "no", "contributors": 9},
}


def test_table3_reproduction(benchmark, out_dir):
    rows = once(benchmark, table3_integrations)
    write_artifact(out_dir, "table3_integrations.txt", render_table(rows, "Table 3"))
    by_engine = {r["engine"]: r for r in rows}
    mismatches = []
    for engine, expected in PAPER_TABLE3.items():
        for field, value in expected.items():
            got = by_engine[engine][field]
            if got != value:
                mismatches.append(f"{engine}.{field}: paper={value!r} repro={got!r}")
    assert not mismatches, "\n".join(mismatches)


def test_contributor_caveat_activity(benchmark, out_dir):
    """§4.1.9: SingularityCE has fewer contributors than Apptainer but
    (at the survey date) twice the code activity — contributor counts
    alone do not rank projects."""
    rows = once(benchmark, table3_integrations)
    by_engine = {r["engine"]: r for r in rows}
    assert by_engine["singularity-ce"]["contributors"] < by_engine["apptainer"]["contributors"]
