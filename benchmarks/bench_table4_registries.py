"""Table 4 — registry overview and feature set, with the proxying and
mirroring cells verified *behaviourally* (push/pull/proxy/mirror runs
against every product)."""

from repro.core import render_table, table4_registries
from repro.fs import FileTree
from repro.oci import ImageConfig, Layer, OCIImage
from repro.registry import (
    ALL_REGISTRIES,
    MirrorDirection,
    OCIDistributionRegistry,
    RegistryError,
)

from conftest import once, write_artifact

PAPER_TABLE4 = {
    "quay": {"champion": "RedHat/IBM", "focus": "Registry", "protocols": "OCI v2",
             "proxying": "auto", "mirroring": "pull"},
    "harbor": {"champion": "VMWare", "affiliation": "CNCF", "protocols": "OCI v2",
               "proxying": "auto", "mirroring": "push, pull"},
    "gitlab": {"focus": "Git hosting, CI/CD", "proxying": "manual", "mirroring": "no"},
    "gitea": {"focus": "Git hosting, CI/CD", "proxying": "none", "mirroring": "no"},
    "shpc": {"affiliation": "LLNL", "protocols": "Library API", "mirroring": "manual"},
    "hinkskalle": {"affiliation": "University of Vienna",
                   "protocols": "Library API, OCI v2"},
    "zot": {"champion": "Cisco", "affiliation": "CNCF", "protocols": "OCI v1",
            "proxying": "none", "mirroring": "pull"},
}


def _image():
    t = FileTree()
    t.create_file("/bin/x", data=b"x")
    return OCIImage(ImageConfig(), [Layer(t)])


def _exercise_products():
    """Behavioural verification: each declared capability is exercised,
    each undeclared one is confirmed refused."""
    upstream = OCIDistributionRegistry(name="upstream")
    upstream.push_image("up/app", "v1", _image())
    outcomes = {}
    for cls in ALL_REGISTRIES:
        product = cls()
        name = product.traits.name
        # proxying
        try:
            proxy = product.create_proxy(upstream)
            proxy.pull_image("up/app", "v1")
            proxied = True
        except RegistryError:
            proxied = False
        # pull mirroring
        try:
            if product.oci is not None and product.traits.multi_tenancy != "no":
                product.oci.create_tenant("up")
            product.add_mirror(MirrorDirection.PULL, "up/*", upstream)
            product.replicator.sync()
            pull_mirrored = product.oci.resolve("up/app", "v1") is not None
        except RegistryError:
            pull_mirrored = False
        outcomes[name] = {"proxied": proxied, "pull_mirrored": pull_mirrored}
    return outcomes


def test_table4_reproduction(benchmark, out_dir):
    rows = once(benchmark, table4_registries)
    write_artifact(out_dir, "table4_registries.txt", render_table(rows, "Table 4"))
    by_name = {r["registry"]: r for r in rows}
    assert list(by_name) == list(PAPER_TABLE4)
    mismatches = []
    for name, expected in PAPER_TABLE4.items():
        for field, value in expected.items():
            got = by_name[name][field]
            if got != value:
                mismatches.append(f"{name}.{field}: paper={value!r} repro={got!r}")
    assert not mismatches, "\n".join(mismatches)


def test_table4_cells_backed_by_behaviour(benchmark):
    outcomes = once(benchmark, _exercise_products)
    # declared proxying => a pull-through actually worked, and vice versa
    assert outcomes["quay"]["proxied"] and outcomes["harbor"]["proxied"]
    assert not outcomes["gitea"]["proxied"] and not outcomes["zot"]["proxied"]
    assert outcomes["quay"]["pull_mirrored"] and outcomes["zot"]["pull_mirrored"]
    assert not outcomes["gitea"]["pull_mirrored"]
    assert not outcomes["gitlab"]["pull_mirrored"]
