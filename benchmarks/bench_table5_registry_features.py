"""Table 5 — squashing, image formats, tenancy, quota, signing,
deployment, build integration; tenancy/quota/signing verified live."""

from repro.core import render_table, table5_registry_features
from repro.fs import FileTree
from repro.oci import ImageConfig, Layer, OCIImage
from repro.registry import ALL_REGISTRIES, QuotaExceeded, RegistryError

from conftest import once, write_artifact

PAPER_TABLE5 = {
    "quay": {"squashing": "on-demand", "formats": "OCI",
             "multi_tenancy": "Organization", "quota": "per-project", "signing": True},
    "harbor": {"squashing": "no", "formats": "OCI", "multi_tenancy": "Project",
               "quota": "per-project", "signing": True},
    "gitlab": {"formats": "OCI", "multi_tenancy": "Organization",
               "quota": "minimal", "signing": False},
    "gitea": {"multi_tenancy": "no", "quota": "no", "signing": False},
    "shpc": {"formats": "SIF", "signing": True},
    "hinkskalle": {"formats": "SIF, OCI", "signing": True},
    "zot": {"formats": "OCI", "multi_tenancy": "no", "signing": True},
}


def _image(size=1000):
    t = FileTree()
    t.create_file("/bin/x", size=size)
    return OCIImage(ImageConfig(), [Layer(t)])


def _exercise_tenancy_and_quota():
    outcomes = {}
    for cls in ALL_REGISTRIES:
        product = cls()
        name = product.traits.name
        tenancy_works = False
        quota_enforced = False
        if product.oci is not None:
            try:
                product.oci.create_tenant("org")
                tenancy_works = True
            except RegistryError:
                pass
            if tenancy_works and product.quotas is not None:
                product.quotas.set_limit("org", 10)
                try:
                    product.oci.push_image("org/big", "v1", _image(size=1_000_000))
                except QuotaExceeded:
                    quota_enforced = True
        outcomes[name] = {"tenancy": tenancy_works, "quota": quota_enforced}
    return outcomes


def test_table5_reproduction(benchmark, out_dir):
    rows = once(benchmark, table5_registry_features)
    write_artifact(out_dir, "table5_registry_features.txt", render_table(rows, "Table 5"))
    by_name = {r["registry"]: r for r in rows}
    mismatches = []
    for name, expected in PAPER_TABLE5.items():
        for field, value in expected.items():
            got = by_name[name][field]
            if got != value:
                mismatches.append(f"{name}.{field}: paper={value!r} repro={got!r}")
    assert not mismatches, "\n".join(mismatches)


def test_table5_tenancy_quota_behaviour(benchmark):
    outcomes = once(benchmark, _exercise_tenancy_and_quota)
    assert outcomes["quay"]["tenancy"] and outcomes["quay"]["quota"]
    assert outcomes["harbor"]["tenancy"] and outcomes["harbor"]["quota"]
    assert not outcomes["gitea"]["tenancy"]
    assert not outcomes["zot"]["tenancy"]
