"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (a table, a figure, or a
quantitative claim), writes the rendered result to ``benchmarks/out/``,
asserts the *shape* the paper reports, and times the generating code via
pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


def write_artifact(out_dir: pathlib.Path, name: str, text: str) -> None:
    (out_dir / name).write_text(text)


def once(benchmark, fn, *args, **kwargs):
    """Run a heavy simulation exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
