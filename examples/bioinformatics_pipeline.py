#!/usr/bin/env python
"""A containerized bioinformatics pipeline on a Slurm cluster (§2's
motivating use case): tools with conflicting environments, each in its
own container, wired into a dependency DAG and fully WLM-accounted.

    python examples/bioinformatics_pipeline.py
"""

from repro.cluster import HostNode
from repro.core import Workflow, WorkflowStep
from repro.engines import SarusEngine
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import OCIDistributionRegistry
from repro.sim import Environment
from repro.wlm import SlurmController

TOOLS = {
    # tool -> (base image, extra build steps): deliberately conflicting
    # stacks (python-heavy vs compiled) packaged independently
    "fastqc": ("python:3.11", "pip-install fastqc 80"),
    "bwa": ("ubuntu:22.04", "compile /bin/sh /opt/bwa/bwa 9000000"),
    "samtools": ("ubuntu:22.04", "install-pkg htslib 25 600000"),
    "variant-caller": ("python:3.11", "pip-install deepvariant 200"),
}


def main() -> None:
    env = Environment()
    hosts = [HostNode(name=f"nid{i:04}", env=env) for i in range(4)]
    wlm = SlurmController(env, hosts)
    engines = {h.name: SarusEngine(h) for h in hosts}
    registry = OCIDistributionRegistry(name="site-registry")

    builder = Builder(BaseImageCatalog())
    for tool, (base, step) in TOOLS.items():
        image = builder.build_dockerfile(f"FROM {base}\nRUN {step}\nENTRYPOINT /opt/{tool}\n")
        registry.push_image(f"bio/{tool}", "v1", image)
        print(f"published bio/{tool}:v1 ({image.compressed_size / 1e6:6.1f} MB, "
              f"{image.num_files} files)")

    pipeline = Workflow(
        "rnaseq-batch",
        [
            WorkflowStep(name="qc", image="r.site/bio/fastqc:v1", duration=120, cores=4),
            WorkflowStep(name="align", image="r.site/bio/bwa:v1", duration=600,
                         cores=32, after=("qc",)),
            WorkflowStep(name="sort-index", image="r.site/bio/samtools:v1",
                         duration=180, cores=8, after=("align",)),
            WorkflowStep(name="call-variants", image="r.site/bio/variant-caller:v1",
                         duration=420, cores=32, after=("sort-index",)),
            WorkflowStep(name="qc-report", image="r.site/bio/fastqc:v1",
                         duration=60, cores=2, after=("qc",)),
        ],
        user_uid=1000,
    )
    print(f"\npipeline batches: {pipeline.topological_batches()}")

    proc = pipeline.run_on_wlm(env, wlm, engines, registry)
    makespan = env.run(until=proc)
    print(f"\npipeline finished: makespan {makespan:.0f}s (simulated)")
    for name, step in pipeline.steps.items():
        print(f"  {name:>14}: job {step.job_id}  start {step.started_at:8.1f}s  "
              f"end {step.finished_at:8.1f}s")

    print("\nsacct (WLM accounting for the workflow):")
    for record in wlm.accounting.by_comment_prefix("workflow:rnaseq-batch/"):
        print(f"  job {record.job_id:>3} {record.job_name:<28} "
              f"{record.elapsed:7.1f}s x {record.cpu_seconds / record.elapsed:4.0f} cores"
              f" = {record.cpu_seconds:9.0f} cpu-s")
    total = sum(r.cpu_seconds for r in wlm.accounting.by_comment_prefix("workflow:"))
    print(f"  total: {total:.0f} cpu-seconds, all attributed to uid 1000")


if __name__ == "__main__":
    main()
