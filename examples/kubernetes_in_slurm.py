#!/usr/bin/env python
"""The Figure 1 proof of concept, step by step: rootless Kubernetes
kubelets joining a standing K3s control plane from inside a Slurm
allocation, with pods landing on the allocation's nodes and every
cpu-second accounted by Slurm.

    python examples/kubernetes_in_slurm.py
"""

from repro.scenarios import KubeletInAllocationScenario
from repro.scenarios.base import WORKFLOW_IMAGE
from repro.sim import Environment
from repro.workload.generators import PodBatchGenerator


def main() -> None:
    env = Environment()
    scenario = KubeletInAllocationScenario(env, n_nodes=4)

    print("== provisioning ==")
    ready = scenario.provision()
    env.run(until=ready)
    print(f"t={scenario._control_plane_ready_at:7.2f}s  standing K3s control plane ready")
    print(f"t={scenario.job.start_time:7.2f}s  Slurm allocation granted "
          f"(job {scenario.job.job_id}, {scenario.n_nodes} nodes, uid 1000)")
    print(f"t={scenario.provisioned_at:7.2f}s  all kubelets joined "
          f"(steady-state provision: {scenario.steady_state_provision_time:.2f}s)")
    for kubelet in scenario.kubelets:
        print(f"    kubelet on {kubelet.node_name}: rootless={kubelet.rootless}, "
              f"cgroup={kubelet.cgroup_path}")

    print("\n== submitting a workflow as plain pods ==")
    pods = PodBatchGenerator(WORKFLOW_IMAGE, seed=7).batch(6)
    scenario.submit(pods)
    env.run(until=3000)
    for pod in pods:
        print(f"  pod {pod.metadata.name}: {pod.phase.value:<9} on {pod.node_name} "
              f"({pod.start_time - pod._submitted_at:5.2f}s to start, "
              f"ran {pod.end_time - pod.start_time:6.1f}s)")

    print("\n== teardown and accounting ==")
    scenario.teardown()
    env.run(until=3100)
    metrics = scenario.metrics()
    job_records = [r for r in scenario.wlm.accounting.all()
                   if r.job_id == scenario.job.job_id]
    for record in job_records:
        print(f"  sacct: job {record.job_id} ({record.job_name}) {record.state}, "
              f"{record.elapsed:.0f}s on {record.nodes} nodes = "
              f"{record.cpu_seconds:.0f} cpu-s, uid {record.user_uid}")
    print(f"\n  pods completed:          {metrics.pods_completed}/{metrics.pods_submitted}")
    print(f"  WLM accounting coverage: {metrics.wlm_accounting_coverage:.2f}")
    print(f"  workflow transparency:   {metrics.workflow_transparency}")
    print(f"  standard pod env:        {metrics.standard_pod_environment} (mainline K3s)")


if __name__ == "__main__":
    main()
