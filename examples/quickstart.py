#!/usr/bin/env python
"""Quickstart: build an image, push it to a registry, and run it with an
HPC container engine on a simulated compute node.

    python examples/quickstart.py
"""

from repro.cluster import GPUDevice, HostNode
from repro.engines import SarusEngine
from repro.kernel import KernelConfig
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import OCIDistributionRegistry

DOCKERFILE = """
FROM ubuntu:22.04
ENV REPRO_CUDA_DRIVER=535.0
RUN install-pkg fftw 30 800000
RUN write /opt/app/solver 12000000
ENTRYPOINT /opt/app/solver
"""


def main() -> None:
    # 1. Build: the Dockerfile runs in the simulated build shell.
    builder = Builder(BaseImageCatalog())
    image = builder.build_dockerfile(DOCKERFILE)
    print(f"built image {image.digest[:22]} with {len(image.layers)} layers, "
          f"{image.compressed_size / 1e6:.1f} MB compressed")

    # 2. Push to the site registry.
    registry = OCIDistributionRegistry(name="site-registry")
    push_cost = registry.push_image("hpc/solver", "v1", image)
    print(f"pushed hpc/solver:v1 in {push_cost:.3f}s (simulated)")

    # 3. A compute node: modern kernel, one GPU, Sarus deployed.
    node = HostNode(
        name="nid0001",
        kernel_config=KernelConfig.modern_hpc(),
        gpus=[GPUDevice(vendor="nvidia", model="a100", index=0)],
    )
    sarus = SarusEngine(node)
    sarus.enable_gpu()

    # 4. The job user (as the WLM would create it, with a GPU grant).
    user = node.kernel.spawn(uid=1000)
    node.kernel.grant_device(user, "nvidia0")

    # 5. Pull (transparent OCI -> squash conversion) and run.
    pulled = sarus.pull("hpc/solver", "v1", registry)
    result = sarus.run(pulled, user)
    container = result.container

    print(f"\ncontainer {container.id}: {container.state.value}")
    print(f"startup breakdown ({result.startup_seconds:.3f}s total):")
    for phase, seconds in sorted(result.timings.items()):
        print(f"  {phase:>8}: {seconds:8.3f}s")
    print("\ncontainer events:")
    for event in container.events:
        print(f"  - {event}")
    print(f"\nGPU visible in container: {'nvidia0' in container.proc.exposed_devices}")
    print(f"runs as invoking user (host uid): {container.proc.host_uid()}")
    print(f"root inside its user namespace:   {container.proc.container_uid() == 0}")

    # 6. Second run: the conversion cache kicks in.
    result2 = sarus.run(pulled, user)
    print(f"\nsecond run startup: {result2.startup_seconds:.3f}s "
          f"(no 'convert' phase: {'convert' not in result2.timings})")


if __name__ == "__main__":
    main()
