#!/usr/bin/env python
"""Registry operations for a NATed HPC site (§5): rate limits, the
pull-through proxy, mirroring into local infrastructure, and signed
pushes with cosign + SBOM.

    python examples/registry_airgap.py
"""

from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry import (
    MirrorDirection,
    OCIDistributionRegistry,
    Quay,
    RateLimiter,
    RateLimitExceeded,
)
from repro.signing import CosignClient, KeyPair, TransparencyLog, generate_sbom


def main() -> None:
    # Upstream "DockerHub" with its per-IP pull limit.
    hub = OCIDistributionRegistry(
        name="dockerhub",
        rate_limiter=RateLimiter(max_requests=100, window_seconds=6 * 3600),
    )
    builder = Builder(BaseImageCatalog())
    pipeline = builder.build_dockerfile("FROM python:3.11\nRUN pip-install nf-core 120")
    hub.push_image("community/pipeline", "23.04", pipeline)

    # 1. The problem: 128 nodes behind one NAT IP.
    failures = 0
    for node in range(128):
        try:
            hub.pull_image("community/pipeline", "23.04", ip="198.51.100.1", now=node * 2.0)
        except RateLimitExceeded:
            failures += 1
    print(f"direct pulls: {128 - failures}/128 succeeded, {failures} rate-limited")

    # 2. The fix: a site Quay with a pull-through proxy.
    quay = Quay()
    proxy = quay.create_proxy(hub)
    ok = 0
    for node in range(128):
        # 30000s later: the previous 6h window has expired upstream
        proxy.pull_image("community/pipeline", "23.04", now=30_000 + node * 2.0)
        ok += 1
    print(f"proxied pulls: {ok}/128 succeeded, "
          f"{proxy.stats['upstream_requests']} upstream request(s), "
          f"hit rate {proxy.hit_rate:.2%}")

    # 3. Mirror upstream science images onto local infrastructure.
    assert quay.oci is not None
    quay.oci.create_tenant("community")
    quay.add_mirror(MirrorDirection.PULL, "community/*", hub)
    cost = quay.replicator.sync()
    print(f"mirror sync: {quay.replicator.stats['pull_syncs']} repo(s) copied "
          f"in {cost:.2f}s (simulated); local tags: "
          f"{quay.oci.list_tags('community/pipeline')}")

    # 4. Sign a site-built image with cosign and attach an SBOM.
    quay.oci.create_tenant("hpc")
    site_image = builder.build_dockerfile(
        "FROM ubuntu:22.04\nRUN install-pkg gromacs 40 2000000\nRUN pip-install mdtools 60"
    )
    quay.oci.push_image("hpc/gromacs", "2023.3", site_image)
    log = TransparencyLog()
    cosign = CosignClient(log)
    ci_key = KeyPair("site-ci")
    entry = cosign.sign(ci_key, site_image.digest)
    quay.attach_signature("hpc/gromacs", site_image.digest,
                          payload={"rekor_index": entry.index})
    sbom = generate_sbom(site_image.flatten(), site_image.digest)
    print(f"\nsigned hpc/gromacs:2023.3 (rekor entry {entry.index}, "
          f"inclusion proof: {log.verify_inclusion(entry)})")
    print(f"SBOM components: {[(c.name, c.origin) for c in sbom.components]}")
    verified = cosign.verify(ci_key, site_image.digest)
    print(f"verification before pull: entry {verified.index} ok")


if __name__ == "__main__":
    main()
