#!/usr/bin/env python
"""Adaptive containerization end-to-end: generate the decision document
for three site profiles, then let the optimizer pick the best image
variant and runtime parameters for a target node (§7 outlook).

    python examples/site_decision.py
"""

from repro.cluster import CPUSpec, GPUDevice, HostNode
from repro.core import (
    ContainerOptimizer,
    DecisionReport,
    ImageVariant,
    SiteRequirements,
)
from repro.engines import SarusEngine
from repro.oci import Builder
from repro.oci.catalog import BaseImageCatalog


def main() -> None:
    profiles = [
        SiteRequirements.conservative_center(),
        SiteRequirements.security_hardened_center(),
        SiteRequirements.cloud_converged_center(),
    ]
    for site in profiles:
        report = DecisionReport(site)
        stack = report.stack
        engine = stack["engine"]
        registry = stack["registry"]
        scenario = stack["scenario"]
        print(f"== {site.name} ==")
        print(f"  engine:   {engine.info.name if engine else 'NONE compliant'}")
        print(f"  registry: {registry.traits.name if registry else 'NONE compliant'}")
        print(f"  k8s path: {scenario.name if scenario else 'not required'}")
        print()

    # Full document for one site:
    print(DecisionReport(profiles[1]).render())

    # The optimizer: one application, four published variants, one target.
    print("\n== container optimization for a target node (§7) ==")
    builder = Builder(BaseImageCatalog())
    base = builder.build_dockerfile("FROM ubuntu:22.04\nRUN write /opt/s 1000000")
    variants = [
        ImageVariant(ref="solver:v2-generic", image=base, microarch="x86-64-v2"),
        ImageVariant(ref="solver:v3-mpich", image=base, microarch="x86-64-v3",
                     mpi_flavor="mpich"),
        ImageVariant(ref="solver:v4-cuda", image=base, microarch="x86-64-v4",
                     cuda_driver="535.0", mpi_flavor="mpich"),
    ]
    node = HostNode(
        name="gpu-node",
        cpu=CPUSpec(microarch="x86-64-v4"),
        gpus=[GPUDevice(vendor="nvidia", model="h100", index=0, driver_version="535.104")],
    )
    optimizer = ContainerOptimizer(SiteRequirements())
    plan = optimizer.plan(variants, node, SarusEngine(node))
    print(f"  selected variant:  {plan.variant.ref}")
    print(f"  rootfs strategy:   {plan.rootfs_strategy}")
    print(f"  bind mounts:       {plan.bind_mounts}")
    print(f"  devices:           {plan.devices}")
    print(f"  env:               {plan.env}")
    print(f"  expected speedup:  {plan.expected_speedup:.2f}x vs generic build")
    for warning in plan.warnings:
        print(f"  warning: {warning}")


if __name__ == "__main__":
    main()
