"""Shim for legacy editable installs (offline environment: no wheel pkg)."""

from setuptools import setup

setup()
