"""repro — executable reproduction of *Survey of adaptive containerization
architectures for HPC* (Müller, Mujkanovic, Durillo, Hammer; SC23).

The surveyed stack, as working code over a deterministic simulation:

- :mod:`repro.sim` — discrete-event simulation core
- :mod:`repro.kernel` — namespaces, capabilities, cgroups, mounts, syscalls
- :mod:`repro.fs` — filesystems, IO cost models, mount drivers
- :mod:`repro.oci` — images, layers, runtimes, builders, SIF, eStargz
- :mod:`repro.signing` — GPG, Notary, cosign/transparency log, SBOM
- :mod:`repro.registry` — OCI distribution + Library API and 7 products
- :mod:`repro.engines` — the 9 container engines of Tables 1–3
- :mod:`repro.cluster` — hardware, interconnect, nodes, the Site facade
- :mod:`repro.wlm` — Slurm-like WLM with SPANK, backfill, preemption
- :mod:`repro.k8s` — API server, scheduler, kubelets, K3s, KNoC, bridge
- :mod:`repro.scenarios` — the five §6 integration scenarios
- :mod:`repro.core` — adaptive containerization: requirements, tables,
  selection, decision documents, optimizer, workflows, CI, repackaging
- :mod:`repro.workload` — synthetic applications and generators

Start with ``examples/quickstart.py`` or ``python -m repro tables``.
"""

__version__ = "1.0.0"
