"""Command-line interface.

::

    python -m repro tables 1           # render a paper table
    python -m repro decide hardened    # decision document for a site profile
    python -m repro scenarios --jobs 4 # run the §6.6 comparison, sharded
    python -m repro startup            # cross-engine startup comparison
    python -m repro trace kubelet_in_allocation --out trace.json
                                       # Perfetto timeline of one scenario
    python -m repro chaos kubelet_in_allocation --seed 42
                                       # same scenario under a seeded fault plan
    python -m repro chaos kubelet_in_allocation --seeds 0..15 --jobs 4 \
        --out report.json              # sharded chaos seed sweep + JSON report
    python -m repro fleet --tenants 2000 --nodes 10000 --starts 1000000 \
        --jobs 8                       # trace-driven multi-tenant fleet run
    python -m repro fleet --chaos --seed 7 --slo --slo-out scorecard.json
                                       # fleet run under a seeded node-crash /
                                       # registry-outage plan, scored against
                                       # the fleet SLO rules
    python -m repro slo kubelet_in_allocation --seed 42 --out scorecard.json
                                       # chaos run sampled in virtual time and
                                       # scored against declarative SLO rules
"""

from __future__ import annotations

import argparse
import functools
import sys
import typing as _t

from repro.core.requirements import SiteRequirements

_PROFILES = {
    "conservative": SiteRequirements.conservative_center,
    "hardened": SiteRequirements.security_hardened_center,
    "cloud": SiteRequirements.cloud_converged_center,
}


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.core import tables as t

    renderers = {
        1: ("Table 1 — engines: overview, rootless, OCI", t.table1_engines),
        2: ("Table 2 — engines: formats, caching, signing", t.table2_formats),
        3: ("Table 3 — engines: HPC integrations, community", t.table3_integrations),
        4: ("Table 4 — registries: overview, proxy, auth", t.table4_registries),
        5: ("Table 5 — registries: tenancy, quota, deployment", t.table5_registry_features),
    }
    numbers = [args.number] if args.number else sorted(renderers)
    for number in numbers:
        title, fn = renderers[number]
        print(t.render_table(fn(), title))
    return 0


def _cmd_decide(args: argparse.Namespace) -> int:
    from repro.core.decision import DecisionReport

    site = _PROFILES[args.profile]()
    print(DecisionReport(site).render(include_tables=args.tables))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.core.tables import render_table
    from repro.scenarios.evaluate import summary_rows
    from repro.shard import ObsConfig, WarmSnapshot, run_cells, scenario_matrix

    if args.list:
        return _print_scenario_list()
    want_metrics = args.metrics or bool(args.metrics_out)
    if want_metrics:
        from repro.obs import metrics as obs_metrics
        from repro.sim import profile as sim_profile

        sim_profile.counters.reset()
        obs_metrics.registry.reset()
    result = run_cells(
        scenario_matrix(n_nodes=args.nodes, n_pods=args.pods),
        jobs=args.jobs,
        obs=ObsConfig(metrics=want_metrics),
        snapshot=WarmSnapshot.for_scenario_prefix(args.nodes),
    )
    metrics = result.values()
    print(render_table(summary_rows(metrics),
                       f"§6.6 comparison ({args.pods} pods on {args.nodes} nodes)"))
    for m in metrics:
        for note in m.notes:
            print(f"  [{m.scenario}] {note}")
    if want_metrics:
        if args.metrics:
            print()
            print(obs_metrics.registry.render_table())
        if args.metrics_out:
            _write_metrics_json(args.metrics_out)
            print(f"  metrics: {args.metrics_out}")
        obs_metrics.registry.reset()
    return 0


def _cmd_startup(args: argparse.Namespace) -> int:
    from repro.cluster import HostNode
    from repro.engines import ALL_ENGINES, DockerEngine, EnrootEngine
    from repro.oci import Builder
    from repro.oci.catalog import BaseImageCatalog
    from repro.registry import OCIDistributionRegistry

    want_metrics = args.metrics or bool(args.metrics_out)
    if want_metrics:
        from repro.obs import metrics as obs_metrics

        obs_metrics.enable()
    registry = OCIDistributionRegistry(name="cli")
    image = Builder(BaseImageCatalog()).build_dockerfile(
        "FROM ubuntu:22.04\nRUN write /opt/app 50000000\nENTRYPOINT /opt/app"
    )
    registry.push_image("cli/app", "v1", image)
    print(f"{'engine':>15} {'cold':>9} {'warm':>9}  rootfs")
    for engine_cls in ALL_ENGINES:
        node = HostNode(name="cli-node")
        engine = engine_cls(node)
        if isinstance(engine, DockerEngine):
            engine.start_daemon()
        user = node.kernel.spawn(uid=1000)
        pulled = engine.pull("cli/app", "v1", registry)
        if isinstance(engine, EnrootEngine):
            engine.import_image("cli/app:v1", pulled.image)
        cold = engine.run(pulled, user)
        warm = engine.run(engine.pull("cli/app", "v1", registry), user)
        print(f"{engine.info.name:>15} {cold.startup_seconds:8.3f}s "
              f"{warm.startup_seconds:8.3f}s  {cold.container.rootfs.driver.name}")
    if want_metrics:
        if args.metrics:
            print()
            print(obs_metrics.registry.render_table())
        if args.metrics_out:
            _write_metrics_json(args.metrics_out)
            print(f"metrics written to {args.metrics_out}")
        obs_metrics.disable()
    return 0


@functools.lru_cache(maxsize=1)
def _scenario_classes() -> dict[str, type]:
    """Scenario lookup accepting both hyphen and underscore spellings.

    Memoized: the table is rebuilt from ``ALL_SCENARIOS`` once per
    process instead of once per command invocation."""
    from repro.shard.cells import scenario_table

    return scenario_table()


def _print_scenario_list() -> int:
    for name in sorted({cls.name for cls in _scenario_classes().values()}):
        print(name)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.obs.export import validate_chrome_trace
    from repro.scenarios.evaluate import run_scenario
    import json as _json

    scenarios = _scenario_classes()
    scenario_cls = scenarios.get(args.scenario)
    if scenario_cls is None:
        names = ", ".join(sorted(c.name for c in set(scenarios.values())))
        print(f"unknown scenario {args.scenario!r}; one of: {names}", file=sys.stderr)
        return 2
    obs_trace.enable(wall_clock=args.wall)
    obs_metrics.enable()
    try:
        metrics = run_scenario(scenario_cls, n_nodes=args.nodes, n_pods=args.pods)
        doc = obs_trace.export_json(args.out, indent=2 if args.pretty else None)
    finally:
        obs_metrics.disable()
        obs_trace.disable()
    problems = validate_chrome_trace(_json.loads(doc))
    tracer = obs_trace.tracer
    cats = ", ".join(sorted(tracer.categories()))
    print(f"{args.out}: {len(tracer)} span records across "
          f"{len(tracer.categories())} subsystems ({cats})")
    print(f"  scenario={metrics.scenario} pods={metrics.pods_completed}/"
          f"{metrics.pods_submitted} provision={metrics.provision_time:.1f}s")
    if args.metrics:
        print()
        print(obs_metrics.registry.render_table())
    if args.metrics_out:
        _write_metrics_json(args.metrics_out)
        print(f"  metrics written to {args.metrics_out}")
    if problems:
        for p in problems:
            print(f"invalid trace: {p}", file=sys.stderr)
        return 1
    print("  open in https://ui.perfetto.dev (or chrome://tracing)")
    return 0


def _write_chaos_report(reports: list, scenario: str, path: str) -> None:
    import json as _json

    from repro.faults.chaos import chaos_report_document

    with open(path, "w") as fh:
        fh.write(_json.dumps(chaos_report_document(reports, scenario), indent=2))
        fh.write("\n")


def _write_metrics_json(path: str) -> None:
    """``--metrics-out``: the registry snapshot as a schema-tagged JSON doc."""
    import json as _json

    from repro.obs import metrics as obs_metrics

    with open(path, "w") as fh:
        fh.write(_json.dumps(
            {"schema": "repro-metrics/1", "series": obs_metrics.registry.snapshot()},
            indent=2, sort_keys=True))
        fh.write("\n")


def _write_timeseries_json(path: str) -> None:
    """``--timeseries``: the sampled rings as a schema-tagged JSON doc."""
    from repro.obs import timeseries as obs_timeseries

    with open(path, "w") as fh:
        fh.write(obs_timeseries.recorder.to_json())
        fh.write("\n")


def _sample_interval(args: argparse.Namespace):
    """Effective sampling interval: ``--sample-interval``, or the default
    when ``--timeseries PATH`` asks for an export without naming one."""
    if args.sample_interval is not None:
        return args.sample_interval
    if getattr(args, "timeseries", None):
        from repro.obs.timeseries import DEFAULT_INTERVAL

        return DEFAULT_INTERVAL
    return None


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.plan import FaultPlan
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.obs.export import validate_chrome_trace
    import json as _json

    if args.list:
        return _print_scenario_list()
    if args.scenario is None:
        print("a scenario name is required (or --list)", file=sys.stderr)
        return 2
    scenarios = _scenario_classes()
    scenario_cls = scenarios.get(args.scenario)
    if scenario_cls is None:
        names = ", ".join(sorted(c.name for c in set(scenarios.values())))
        print(f"unknown scenario {args.scenario!r}; one of: {names}", file=sys.stderr)
        return 2

    if args.seeds is not None:
        return _chaos_sweep(args, scenario_cls)

    from repro.faults.chaos import run_chaos

    if args.faults:
        plan = FaultPlan.from_file(args.faults)
    else:
        node_names = [f"nid{i:04}" for i in range(args.nodes)]
        plan = FaultPlan.generate(seed=args.seed, horizon=600.0, node_names=node_names)
    if args.save_plan:
        plan.to_file(args.save_plan)
        print(f"fault plan ({len(plan)} events) written to {args.save_plan}")
    from repro.obs import timeseries as obs_timeseries

    interval = _sample_interval(args)
    obs_trace.enable()
    obs_metrics.enable()
    if interval is not None:
        obs_timeseries.enable(interval=interval)
    try:
        _metrics, report = run_chaos(
            scenario_cls, plan, n_nodes=args.nodes, n_pods=args.pods, seed=args.seed
        )
        doc = obs_trace.export_json(args.trace, indent=2 if args.pretty else None)
    finally:
        obs_metrics.disable()
        obs_trace.disable()
        obs_timeseries.disable()
    print(report.render())
    print(f"  trace:           {args.trace}")
    if args.out:
        _write_chaos_report([report], scenario_cls.name, args.out)
        print(f"  report:          {args.out}")
    if args.timeseries:
        _write_timeseries_json(args.timeseries)
        print(f"  timeseries:      {args.timeseries}")
    if interval is not None:
        obs_timeseries.reset()
    if args.metrics:
        print()
        print(obs_metrics.registry.render_table())
    if args.metrics_out:
        _write_metrics_json(args.metrics_out)
        print(f"  metrics:         {args.metrics_out}")
    problems = validate_chrome_trace(_json.loads(doc))
    if problems:
        for p in problems:
            print(f"invalid trace: {p}", file=sys.stderr)
        return 1
    return 0 if report.clean else 1


def _chaos_sweep(args: argparse.Namespace, scenario_cls: type) -> int:
    """``chaos --seeds A..B [--jobs N]``: the sharded chaos seed sweep.

    Stdout never mentions the worker count, and the runner's merge rules
    are placement-independent, so ``--jobs 1`` and ``--jobs N`` produce
    byte-identical output, trace files and report JSON.
    """
    from repro.faults.chaos import chaos_report_document
    from repro.faults.plan import FaultPlan
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.obs.export import validate_chrome_trace
    from repro.shard import (
        ObsConfig,
        WarmSnapshot,
        chaos_seed_sweep,
        parse_seed_range,
        run_cells,
    )
    import dataclasses as _dc
    import json as _json

    try:
        seeds = parse_seed_range(args.seeds)
    except ValueError as exc:
        print(f"bad --seeds: {exc}", file=sys.stderr)
        return 2
    if args.save_plan:
        print("--save-plan needs a single-seed run (drop --seeds)", file=sys.stderr)
        return 2
    cells = chaos_seed_sweep(
        scenario_cls.name, seeds, n_nodes=args.nodes, n_pods=args.pods
    )
    if args.faults:
        plan_json = FaultPlan.from_file(args.faults).to_json()
        cells = [_dc.replace(cell, plan_json=plan_json) for cell in cells]
    want_metrics = args.metrics or bool(args.metrics_out)
    if want_metrics:
        from repro.sim import profile as sim_profile

        sim_profile.counters.reset()
        obs_metrics.registry.reset()
    interval = _sample_interval(args)
    if interval is not None:
        from repro.obs import timeseries as obs_timeseries

        obs_timeseries.reset()
    obs_trace.tracer.reset()
    result = run_cells(
        cells,
        jobs=args.jobs,
        obs=ObsConfig(metrics=want_metrics, trace=True, timeseries=interval),
        snapshot=WarmSnapshot.for_scenario_prefix(args.nodes),
    )
    reports = result.values()
    doc_text = obs_trace.export_json(args.trace, indent=2 if args.pretty else None)
    report_doc = chaos_report_document(reports, scenario_cls.name)

    print(f"chaos sweep: {scenario_cls.name} "
          f"seeds {seeds[0]}..{seeds[-1]} ({len(seeds)} run(s))")
    for report in reports:
        injected = sum(report.injected.values())
        retries = sum(report.retries.values())
        status = "clean" if report.clean else f"LEAKS={len(report.leaks)}"
        print(f"  seed {report.seed:>4}: injected={injected} retries={retries} "
              f"requeued={report.jobs_requeued} "
              f"pods {report.pods_completed}/{report.pods_submitted} {status}")
    agg = report_doc["aggregate"]
    parts = ", ".join(f"{k}={v}" for k, v in agg["injected"].items()) or "none"
    print(f"aggregate:         faults injected: {parts}")
    print(f"  pods:            {agg['pods_completed']} completed, "
          f"{agg['pods_failed']} failed, {agg['pods_submitted']} submitted")
    if agg["leaks"]:
        print(f"  LEAKS:           {agg['leaks']} across {agg['runs']} run(s)")
    else:
        print(f"  leaks:           none across {agg['runs']} run(s)")
    print(f"  trace:           {args.trace}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(_json.dumps(report_doc, indent=2))
            fh.write("\n")
        print(f"  report:          {args.out}")
    if args.timeseries:
        _write_timeseries_json(args.timeseries)
        print(f"  timeseries:      {args.timeseries}")
    if interval is not None:
        obs_timeseries.reset()
    if want_metrics:
        if args.metrics:
            print()
            print(obs_metrics.registry.render_table())
        if args.metrics_out:
            _write_metrics_json(args.metrics_out)
            print(f"  metrics:         {args.metrics_out}")
        obs_metrics.registry.reset()
    problems = validate_chrome_trace(_json.loads(doc_text))
    if problems:
        for p in problems:
            print(f"invalid trace: {p}", file=sys.stderr)
        return 1
    return 0 if agg["clean"] else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    """``fleet``: the trace-driven multi-tenant fleet workload.

    Stdout (and ``--out`` / ``--slo-out`` JSON) depends only on the
    merged shard results, so ``--jobs 1`` and ``--jobs N`` are
    byte-identical — the CI fleet-smoke and fleet-chaos steps ``cmp``
    exactly that.  ``--chaos`` / ``--faults`` deliver a fault plan into
    every shard; ``--slo`` scores the sampled ``fleet.*`` series.
    """
    from repro.faults.plan import FaultPlan
    from repro.obs import metrics as obs_metrics
    from repro.obs import timeseries as obs_timeseries
    from repro.workload.fleet import (
        FleetConfig,
        fleet_report_document,
        generate_fleet_plan,
        render_fleet_summary,
        run_fleet,
        score_fleet_slo,
    )
    import json as _json

    try:
        config = FleetConfig(
            tenants=args.tenants,
            nodes=args.nodes,
            starts=args.starts,
            images=args.images,
            zipf_s=args.zipf,
            seed=args.seed,
            shards=args.shards,
            day=args.day,
            naive=args.naive,
        )
    except ValueError as exc:
        print(f"bad fleet config: {exc}", file=sys.stderr)
        return 2
    if args.faults and args.chaos:
        print("--faults and --chaos are mutually exclusive", file=sys.stderr)
        return 2
    plan = None
    if args.faults:
        plan = FaultPlan.from_file(args.faults)
    elif args.chaos:
        plan = generate_fleet_plan(config, seed=args.seed)
    if args.save_plan:
        if plan is None:
            print("--save-plan needs --chaos or --faults", file=sys.stderr)
            return 2
        plan.to_file(args.save_plan)
        print(f"fault plan ({len(plan)} events) written to {args.save_plan}")
    want_slo = args.slo or bool(args.slo_out)
    want_metrics = args.metrics or bool(args.metrics_out)
    if want_metrics:
        from repro.sim import profile as sim_profile

        sim_profile.counters.reset()
        obs_metrics.registry.reset()
    interval = _sample_interval(args)
    if want_slo and interval is None:
        from repro.obs.timeseries import DEFAULT_INTERVAL

        interval = DEFAULT_INTERVAL
    if interval is not None:
        obs_timeseries.reset()
    result = run_fleet(
        config, jobs=args.jobs, metrics=want_metrics, sample_interval=interval,
        plan=plan,
    )
    print(render_fleet_summary(result))
    if want_slo:
        from repro.obs.slo import SloRuleSet

        rules = SloRuleSet.from_file(args.rules) if args.rules else None
        # the cell merge appends points but not the interval — pin it so
        # the scorecard names the grid the cells actually sampled on
        obs_timeseries.recorder.enable(interval=interval, reset=False)
        scorecard = score_fleet_slo(result, rules=rules)
        obs_timeseries.disable()
        print()
        print(scorecard.render())
        if args.slo_out:
            with open(args.slo_out, "w") as fh:
                fh.write(scorecard.to_json())
                fh.write("\n")
            print(f"  scorecard:  {args.slo_out}")
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(_json.dumps(fleet_report_document(result), indent=2))
            fh.write("\n")
        print(f"  report:     {args.out}")
    if args.timeseries:
        _write_timeseries_json(args.timeseries)
        print(f"  timeseries: {args.timeseries}")
    if interval is not None:
        obs_timeseries.reset()
    if want_metrics:
        if args.metrics:
            print()
            print(obs_metrics.registry.render_table())
        if args.metrics_out:
            _write_metrics_json(args.metrics_out)
            print(f"  metrics:    {args.metrics_out}")
        obs_metrics.registry.reset()
    return 0 if not result.leaks else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    """``replay``: fleet traces through the real §6.5 control plane.

    Same byte-identity contract as ``fleet``: stdout and ``--out`` JSON
    depend only on the merged shard results, so ``--jobs 1`` and
    ``--jobs N`` produce identical output.
    """
    from repro.obs import metrics as obs_metrics
    from repro.scenarios.fleet_replay import (
        render_replay_summary,
        replay_report_document,
        run_fleet_replay,
    )
    from repro.workload.fleet import FleetConfig
    import json as _json

    try:
        config = FleetConfig(
            tenants=args.tenants,
            nodes=args.nodes,
            starts=args.starts,
            images=args.images,
            zipf_s=args.zipf,
            seed=args.seed,
            shards=args.shards,
            day=args.day,
            naive=args.naive,
        )
    except ValueError as exc:
        print(f"bad replay config: {exc}", file=sys.stderr)
        return 2
    plan = None
    if args.faults:
        from repro.faults.plan import FaultPlan

        plan = FaultPlan.from_file(args.faults)
    want_metrics = args.metrics or bool(args.metrics_out)
    if want_metrics:
        from repro.sim import profile as sim_profile

        sim_profile.counters.reset()
        obs_metrics.registry.reset()
    interval = _sample_interval(args)
    if interval is not None:
        from repro.obs import timeseries as obs_timeseries

        obs_timeseries.reset()
    result = run_fleet_replay(
        config, jobs=args.jobs, metrics=want_metrics, sample_interval=interval,
        plan=plan,
    )
    print(render_replay_summary(result))
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(_json.dumps(replay_report_document(result), indent=2))
            fh.write("\n")
        print(f"  report:     {args.out}")
    if args.timeseries:
        _write_timeseries_json(args.timeseries)
        print(f"  timeseries: {args.timeseries}")
    if interval is not None:
        obs_timeseries.reset()
    if want_metrics:
        if args.metrics:
            print()
            print(obs_metrics.registry.render_table())
        if args.metrics_out:
            _write_metrics_json(args.metrics_out)
            print(f"  metrics:    {args.metrics_out}")
        obs_metrics.registry.reset()
    return 0 if not result.leaks else 1


def _cmd_slo(args: argparse.Namespace) -> int:
    """``slo``: a chaos run sampled in virtual time and scored against
    declarative SLO rules.

    Everything printed or written is a pure function of ``(scenario,
    plan, rules, seed, interval)``, so double runs — and the CI
    slo-smoke step's ``cmp`` — agree byte for byte.
    """
    from repro.faults.chaos import run_slo
    from repro.faults.plan import FaultPlan
    from repro.obs import metrics as obs_metrics
    from repro.obs import timeseries as obs_timeseries
    from repro.obs.slo import SloRuleSet

    if args.list:
        return _print_scenario_list()
    if args.scenario is None:
        print("a scenario name is required (or --list)", file=sys.stderr)
        return 2
    scenarios = _scenario_classes()
    scenario_cls = scenarios.get(args.scenario)
    if scenario_cls is None:
        names = ", ".join(sorted(c.name for c in set(scenarios.values())))
        print(f"unknown scenario {args.scenario!r}; one of: {names}", file=sys.stderr)
        return 2
    if args.faults:
        plan = FaultPlan.from_file(args.faults)
    else:
        node_names = [f"nid{i:04}" for i in range(args.nodes)]
        plan = FaultPlan.generate(seed=args.seed, horizon=600.0, node_names=node_names)
    rules = SloRuleSet.from_file(args.rules) if args.rules else None
    obs_metrics.enable()
    try:
        _metrics, report, scorecard = run_slo(
            scenario_cls,
            plan,
            rules=rules,
            n_nodes=args.nodes,
            n_pods=args.pods,
            seed=args.seed,
            sample_interval=args.sample_interval,
        )
        print(scorecard.render())
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(scorecard.to_json())
                fh.write("\n")
            print(f"  scorecard:  {args.out}")
        if args.timeseries:
            _write_timeseries_json(args.timeseries)
            print(f"  timeseries: {args.timeseries}")
        if args.metrics:
            print()
            print(obs_metrics.registry.render_table())
        if args.metrics_out:
            _write_metrics_json(args.metrics_out)
            print(f"  metrics:    {args.metrics_out}")
    finally:
        obs_metrics.disable()
        obs_metrics.registry.reset()
        obs_timeseries.disable()
        obs_timeseries.reset()
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of the SC23 HPC-containerization survey.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_tables = sub.add_parser("tables", help="render paper tables from the implementation")
    p_tables.add_argument("number", nargs="?", type=int, choices=range(1, 6))
    p_tables.set_defaults(fn=_cmd_tables)

    p_decide = sub.add_parser("decide", help="decision document for a site profile")
    p_decide.add_argument("profile", choices=sorted(_PROFILES))
    p_decide.add_argument("--tables", action="store_true")
    p_decide.set_defaults(fn=_cmd_decide)

    p_scen = sub.add_parser("scenarios", help="run the §6.6 scenario comparison")
    p_scen.add_argument("--nodes", type=int, default=4)
    p_scen.add_argument("--pods", type=int, default=8)
    p_scen.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the matrix (output is "
                             "byte-identical to --jobs 1)")
    p_scen.add_argument("--list", action="store_true",
                        help="list scenario names and exit")
    p_scen.add_argument("--metrics", action="store_true",
                        help="print the labeled metrics registry afterwards")
    p_scen.add_argument("--metrics-out", default=None, metavar="METRICS.json",
                        help="write the metrics registry snapshot as JSON "
                             "(schema repro-metrics/1)")
    p_scen.set_defaults(fn=_cmd_scenarios)

    p_start = sub.add_parser("startup", help="cross-engine startup comparison")
    p_start.add_argument("--metrics", action="store_true",
                         help="print the labeled metrics registry afterwards")
    p_start.add_argument("--metrics-out", default=None, metavar="METRICS.json",
                         help="write the metrics registry snapshot as JSON "
                              "(schema repro-metrics/1)")
    p_start.set_defaults(fn=_cmd_startup)

    p_trace = sub.add_parser(
        "trace", help="run one scenario and export a Perfetto timeline"
    )
    p_trace.add_argument("scenario", metavar="scenario",
                         help="scenario name (hyphens or underscores)")
    p_trace.add_argument("--out", default="trace.json",
                         help="output path for the Chrome trace JSON")
    p_trace.add_argument("--nodes", type=int, default=4)
    p_trace.add_argument("--pods", type=int, default=8)
    p_trace.add_argument("--wall", action="store_true",
                         help="also record wall-clock span durations "
                              "(non-deterministic args; off by default)")
    p_trace.add_argument("--pretty", action="store_true",
                         help="indent the JSON output")
    p_trace.add_argument("--metrics", action="store_true",
                         help="print the labeled metrics registry afterwards")
    p_trace.add_argument("--metrics-out", default=None, metavar="METRICS.json",
                         help="write the metrics registry snapshot as JSON "
                              "(schema repro-metrics/1)")
    p_trace.set_defaults(fn=_cmd_trace)

    p_chaos = sub.add_parser(
        "chaos",
        help="run one scenario under a deterministic fault plan",
        description="Arm the fault injector with a seeded (or file-supplied) "
                    "plan, run the scenario, and report injections, retries, "
                    "requeues, pod outcomes, and the leak audit.  Same seed "
                    "and plan produce a byte-identical trace.",
    )
    p_chaos.add_argument("scenario", metavar="scenario", nargs="?",
                         help="scenario name (hyphens or underscores)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="seed for plan generation and the workload")
    p_chaos.add_argument("--seeds", default=None, metavar="A..B",
                         help="run a seed sweep over the inclusive range "
                              "(or a single seed) instead of one --seed run")
    p_chaos.add_argument("--jobs", type=int, default=1,
                         help="worker processes for a --seeds sweep (output "
                              "is byte-identical to --jobs 1)")
    p_chaos.add_argument("--faults", default=None, metavar="PLAN.json",
                         help="load the fault plan from a JSON file instead "
                              "of generating one from the seed(s)")
    p_chaos.add_argument("--save-plan", default=None, metavar="PLAN.json",
                         help="write the effective fault plan to a JSON file")
    p_chaos.add_argument("--nodes", type=int, default=4)
    p_chaos.add_argument("--pods", type=int, default=8)
    p_chaos.add_argument("--trace", default="chaos-trace.json",
                         help="output path for the Chrome trace JSON")
    p_chaos.add_argument("--out", default=None, metavar="REPORT.json",
                         help="also write the chaos report document as JSON "
                              "(schema repro-chaos-report/2)")
    p_chaos.add_argument("--list", action="store_true",
                         help="list scenario names and exit")
    p_chaos.add_argument("--pretty", action="store_true",
                         help="indent the trace JSON output")
    p_chaos.add_argument("--sample-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="sample time-series every SECONDS of virtual "
                              "time (enables SLO evaluation and detection "
                              "latency in the report)")
    p_chaos.add_argument("--timeseries", default=None, metavar="SERIES.json",
                         help="write the sampled time-series as JSON (schema "
                              "repro-timeseries/1; implies sampling at the "
                              "default interval)")
    p_chaos.add_argument("--metrics", action="store_true",
                         help="print the labeled metrics registry afterwards")
    p_chaos.add_argument("--metrics-out", default=None, metavar="METRICS.json",
                         help="write the metrics registry snapshot as JSON "
                              "(schema repro-metrics/1)")
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_slo = sub.add_parser(
        "slo",
        help="score a chaos run against declarative SLO rules",
        description="Run one scenario under a deterministic fault plan with "
                    "virtual-time time-series sampling on, evaluate "
                    "threshold / error-ratio / burn-rate SLO rules over the "
                    "sampled series, and print a scorecard with per-rule "
                    "breach time, per-entity health, and per-fault-kind "
                    "detection latency.  Double runs agree byte for byte.",
    )
    p_slo.add_argument("scenario", metavar="scenario", nargs="?",
                       help="scenario name (hyphens or underscores)")
    p_slo.add_argument("--seed", type=int, default=0,
                       help="seed for plan generation and the workload")
    p_slo.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="load the fault plan from a JSON file instead of "
                            "generating one from the seed")
    p_slo.add_argument("--rules", default=None, metavar="RULES.json",
                       help="load SLO rules from a JSON file (default: the "
                            "built-in chaos rule set)")
    p_slo.add_argument("--nodes", type=int, default=4)
    p_slo.add_argument("--pods", type=int, default=8)
    p_slo.add_argument("--sample-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="virtual-time sampling interval (default 5.0)")
    p_slo.add_argument("--out", default=None, metavar="SCORECARD.json",
                       help="write the scorecard as JSON (schema "
                            "repro-slo-scorecard/1)")
    p_slo.add_argument("--timeseries", default=None, metavar="SERIES.json",
                       help="write the sampled time-series as JSON (schema "
                            "repro-timeseries/1)")
    p_slo.add_argument("--list", action="store_true",
                       help="list scenario names and exit")
    p_slo.add_argument("--metrics", action="store_true",
                       help="print the labeled metrics registry afterwards")
    p_slo.add_argument("--metrics-out", default=None, metavar="METRICS.json",
                       help="write the metrics registry snapshot as JSON "
                            "(schema repro-metrics/1)")
    p_slo.set_defaults(fn=_cmd_slo)

    p_fleet = sub.add_parser(
        "fleet",
        help="run the trace-driven multi-tenant fleet workload",
        description="Simulate a fleet of tenants pulling Zipf-distributed "
                    "images through per-tenant registries onto a shared node "
                    "pool (diurnal Poisson arrivals, content-addressed node "
                    "caches).  The run is partitioned into deterministic "
                    "shard cells; output is byte-identical for any --jobs.",
    )
    p_fleet.add_argument("--tenants", type=int, default=64)
    p_fleet.add_argument("--nodes", type=int, default=128)
    p_fleet.add_argument("--starts", type=int, default=5000,
                         help="total container starts across the fleet")
    p_fleet.add_argument("--images", type=int, default=24,
                         help="catalog size tenants mirror and pull from")
    p_fleet.add_argument("--zipf", type=float, default=1.2,
                         help="image-popularity Zipf skew (the §4 knob)")
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument("--shards", type=int, default=8,
                         help="tenant partitions (fixed per config; NOT the "
                              "worker count — see --jobs)")
    p_fleet.add_argument("--day", type=float, default=1800.0,
                         help="diurnal period in virtual seconds")
    p_fleet.add_argument("--jobs", type=int, default=1,
                         help="worker processes (output is byte-identical "
                              "to --jobs 1)")
    p_fleet.add_argument("--naive", action="store_true",
                         help="run the pre-optimization engine (one event "
                              "per start, linear node scans) — same results, "
                              "much slower; exists for the perf baseline")
    p_fleet.add_argument("--chaos", action="store_true",
                         help="generate a fleet-sized fault plan from --seed "
                              "(node crashes + registry windows) and deliver "
                              "it into every shard")
    p_fleet.add_argument("--faults", default=None, metavar="PLAN.json",
                         help="load the fault plan from a JSON file instead "
                              "of generating one with --chaos")
    p_fleet.add_argument("--save-plan", default=None, metavar="PLAN.json",
                         help="write the effective fault plan to a JSON file")
    p_fleet.add_argument("--slo", action="store_true",
                         help="sample fleet.* time-series and score them "
                              "against the fleet SLO rules (pending depth, "
                              "warm-rate floor, wait budgets, chaos symptoms)")
    p_fleet.add_argument("--slo-out", default=None, metavar="SCORECARD.json",
                         help="write the SLO scorecard as JSON (schema "
                              "repro-slo-scorecard/1; implies --slo)")
    p_fleet.add_argument("--rules", default=None, metavar="RULES.json",
                         help="load SLO rules from a JSON file (default: the "
                              "built-in fleet rule set)")
    p_fleet.add_argument("--out", default=None, metavar="REPORT.json",
                         help="also write the fleet report document as JSON "
                              "(schema repro-fleet-report/2)")
    p_fleet.add_argument("--sample-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="sample per-shard/per-tenant time-series every "
                              "SECONDS of virtual time")
    p_fleet.add_argument("--timeseries", default=None, metavar="SERIES.json",
                         help="write the sampled time-series as JSON (schema "
                              "repro-timeseries/1; implies sampling at the "
                              "default interval)")
    p_fleet.add_argument("--metrics", action="store_true",
                         help="print the labeled metrics registry afterwards")
    p_fleet.add_argument("--metrics-out", default=None, metavar="METRICS.json",
                         help="write the metrics registry snapshot as JSON "
                              "(schema repro-metrics/1)")
    p_fleet.set_defaults(fn=_cmd_fleet)

    p_replay = sub.add_parser(
        "replay",
        help="replay fleet traces through the real §6.5 control plane",
        description="Feed the fleet workload's arrival traces (diurnal "
                    "Poisson, Zipf tenants/images) through the real "
                    "apiserver → scheduler → kubelet → engine → registry "
                    "path: each shard is an independent §6.5 sub-cluster "
                    "(kubelets in a WLM allocation).  Output is "
                    "byte-identical for any --jobs.",
    )
    p_replay.add_argument("--tenants", type=int, default=16)
    p_replay.add_argument("--nodes", type=int, default=32)
    p_replay.add_argument("--starts", type=int, default=400,
                          help="total pod starts across the fleet")
    p_replay.add_argument("--images", type=int, default=12,
                          help="catalog size tenants mirror and pull from")
    p_replay.add_argument("--zipf", type=float, default=1.2,
                          help="image-popularity Zipf skew (the §4 knob)")
    p_replay.add_argument("--seed", type=int, default=0)
    p_replay.add_argument("--shards", type=int, default=4,
                          help="sub-clusters (fixed per config; NOT the "
                               "worker count — see --jobs)")
    p_replay.add_argument("--day", type=float, default=1800.0,
                          help="diurnal period in virtual seconds")
    p_replay.add_argument("--jobs", type=int, default=1,
                          help="worker processes (output is byte-identical "
                               "to --jobs 1)")
    p_replay.add_argument("--naive", action="store_true",
                          help="run the retained linear-scan control plane "
                               "(same results, much slower; the perf "
                               "baseline)")
    p_replay.add_argument("--faults", default=None, metavar="PLAN.json",
                          help="deliver a fault plan's registry windows into "
                               "the replay pull path (node crashes in the "
                               "plan are ignored — fleet node ids don't name "
                               "replay sub-cluster nodes)")
    p_replay.add_argument("--out", default=None, metavar="REPORT.json",
                          help="also write the replay report document as "
                               "JSON (schema repro-fleet-replay-report/1)")
    p_replay.add_argument("--sample-interval", type=float, default=None,
                          metavar="SECONDS",
                          help="sample per-shard replay time-series every "
                               "SECONDS of virtual time")
    p_replay.add_argument("--timeseries", default=None, metavar="SERIES.json",
                          help="write the sampled time-series as JSON (schema "
                               "repro-timeseries/1; implies sampling at the "
                               "default interval)")
    p_replay.add_argument("--metrics", action="store_true",
                          help="print the labeled metrics registry afterwards")
    p_replay.add_argument("--metrics-out", default=None, metavar="METRICS.json",
                          help="write the metrics registry snapshot as JSON "
                               "(schema repro-metrics/1)")
    p_replay.set_defaults(fn=_cmd_replay)
    return parser


def main(argv: _t.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
