"""Cluster hardware model: nodes, devices, interconnect, sites."""

from repro.cluster.capacity import CapacityIndex, LinearCapacityScan
from repro.cluster.hardware import CPUSpec, GPUDevice, MICROARCH_LEVELS, NICSpec
from repro.cluster.node import HostNode
from repro.cluster.network import Interconnect

__all__ = [
    "CPUSpec",
    "CapacityIndex",
    "GPUDevice",
    "HostNode",
    "Interconnect",
    "LinearCapacityScan",
    "MICROARCH_LEVELS",
    "NICSpec",
    "Site",
]


def __getattr__(name):
    # Site pulls in core/engines/wlm; import lazily to keep the low-level
    # cluster package cycle-free.
    if name == "Site":
        from repro.cluster.site import Site

        return Site
    raise AttributeError(name)
