"""Free-capacity placement indexes for fleet-scale scheduling.

A scheduler placing one container start needs "the node with the least
free capacity that still fits the request" (best-fit keeps big holes
open for big requests; ties break toward the lowest node id so results
are reproducible).  A linear scan answers that in O(nodes) — fine at
the §6 scenarios' 4–100 nodes, ruinous at the fleet scenario's 10k+
nodes where it turns 1M placements into 10^10 comparisons.

:class:`CapacityIndex` answers the same query in O(log nodes): one
lazy-deleted min-heap of node ids per free-capacity level.  Because
per-node capacity is a small integer (cores), there are at most
``node_cpus`` levels; best-fit is "first non-empty valid bucket at or
above the request", and the heap root is the lowest node id at that
level.  Entries are never removed eagerly — a node's entry in a bucket
is valid only while its current free capacity equals the bucket level,
and stale entries are discarded when popped — so every operation is a
constant number of heap pushes/pops.

:class:`LinearCapacityScan` is the O(nodes) reference implementation
with the *identical* policy.  It exists for two reasons: it is the
pre-optimization baseline :mod:`benchmarks.bench_fleet` measures the
index against, and it is the oracle the property tests compare every
placement decision to.

Both implementations understand **down nodes** (the fleet chaos path):
:meth:`~CapacityIndex.remove_node` takes a node out of the pool — its
free capacity drops to zero, so neither allocator will ever pick it —
and :meth:`~CapacityIndex.restore_node` returns it fully free.  The
caller owns the slots that were running on the node when it crashed
(they are killed, not released), so removal never calls ``release``;
restoration recreates the node's full capacity in one step.  The
``down`` set is part of the leak-audit surface: a clean run ends with
it empty.
"""

from __future__ import annotations

from heapq import heappop, heappush


class LinearCapacityScan:
    """Reference best-fit placement: scan every node per request."""

    __slots__ = ("free", "cap", "down")

    def __init__(self, n_nodes: int, node_cpus: int):
        self.cap = int(node_cpus)
        self.free = [self.cap] * int(n_nodes)
        #: node ids currently crashed (zero free capacity, never picked)
        self.down: set[int] = set()

    def alloc(self, req: int) -> int | None:
        """Claim ``req`` cores on the best-fitting node (lowest id on
        ties); returns the node id, or None when nothing fits."""
        best = -1
        best_free = self.cap + 1
        for node, free in enumerate(self.free):
            if req <= free < best_free:
                best, best_free = node, free
                if free == req:
                    break  # exact fit: no better bucket exists
        if best < 0:
            return None
        self.free[best] = best_free - req
        return best

    def release(self, node: int, req: int) -> None:
        self.free[node] += req

    def remove_node(self, node: int) -> int:
        """Crash ``node``: drop its free capacity to zero so the scan
        never picks it.  Returns the cores that were free at removal.
        No-op (returning 0) when the node is already down — overlapping
        crash windows must not double-remove."""
        if node in self.down:
            return 0
        self.down.add(node)
        freed = self.free[node]
        self.free[node] = 0
        return freed

    def restore_node(self, node: int) -> None:
        """Reboot ``node``: it rejoins the pool fully free.  The slots
        that were killed at crash time were never released, so this is
        the single step that recreates the node's capacity."""
        if node not in self.down:
            return
        self.down.discard(node)
        self.free[node] = self.cap

    @property
    def total_free(self) -> int:
        return sum(self.free)


class CapacityIndex:
    """Bucketed lazy-deletion index with the same policy as the scan."""

    __slots__ = ("free", "cap", "_buckets", "down")

    def __init__(self, n_nodes: int, node_cpus: int):
        self.cap = int(node_cpus)
        self.free = [self.cap] * int(n_nodes)
        #: _buckets[c] is a min-heap of node ids whose free capacity was
        #: c when pushed; an entry is valid iff free[node] == c still.
        self._buckets: list[list[int]] = [[] for _ in range(self.cap + 1)]
        # every node starts fully free: ascending range is a valid heap
        self._buckets[self.cap].extend(range(int(n_nodes)))
        #: node ids currently crashed (zero free capacity, never picked)
        self.down: set[int] = set()

    def alloc(self, req: int) -> int | None:
        """Best-fit claim, identical decisions to the linear scan."""
        free = self.free
        buckets = self._buckets
        for level in range(req, self.cap + 1):
            heap = buckets[level]
            while heap:
                node = heap[0]
                if free[node] != level:
                    heappop(heap)  # stale: node moved levels since push
                    continue
                heappop(heap)
                remaining = level - req
                free[node] = remaining
                if remaining:
                    heappush(buckets[remaining], node)
                return node
        return None

    def release(self, node: int, req: int) -> None:
        remaining = self.free[node] + req
        self.free[node] = remaining
        heappush(self._buckets[remaining], node)

    def remove_node(self, node: int) -> int:
        """Crash ``node``: setting its free capacity to zero invalidates
        every bucket entry it may have (level 0 has no bucket), so the
        lazy-deletion check discards them on pop.  Returns the cores
        that were free at removal; no-op when already down."""
        if node in self.down:
            return 0
        self.down.add(node)
        freed = self.free[node]
        self.free[node] = 0
        return freed

    def restore_node(self, node: int) -> None:
        """Reboot ``node`` fully free and re-index it at the top level."""
        if node not in self.down:
            return
        self.down.discard(node)
        self.free[node] = self.cap
        heappush(self._buckets[self.cap], node)

    @property
    def total_free(self) -> int:
        return sum(self.free)
