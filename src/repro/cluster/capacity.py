"""Free-capacity placement indexes for fleet-scale scheduling.

A scheduler placing one container start needs "the node with the least
free capacity that still fits the request" (best-fit keeps big holes
open for big requests; ties break toward the lowest node id so results
are reproducible).  A linear scan answers that in O(nodes) — fine at
the §6 scenarios' 4–100 nodes, ruinous at the fleet scenario's 10k+
nodes where it turns 1M placements into 10^10 comparisons.

:class:`CapacityIndex` answers the same query in O(log nodes): one
lazy-deleted min-heap of node ids per free-capacity level.  Because
per-node capacity is a small integer (cores), there are at most
``node_cpus`` levels; best-fit is "first non-empty valid bucket at or
above the request", and the heap root is the lowest node id at that
level.  Entries are never removed eagerly — a node's entry in a bucket
is valid only while its current free capacity equals the bucket level,
and stale entries are discarded when popped — so every operation is a
constant number of heap pushes/pops.

:class:`LinearCapacityScan` is the O(nodes) reference implementation
with the *identical* policy.  It exists for two reasons: it is the
pre-optimization baseline :mod:`benchmarks.bench_fleet` measures the
index against, and it is the oracle the property tests compare every
placement decision to.
"""

from __future__ import annotations

from heapq import heappop, heappush


class LinearCapacityScan:
    """Reference best-fit placement: scan every node per request."""

    __slots__ = ("free", "cap")

    def __init__(self, n_nodes: int, node_cpus: int):
        self.cap = int(node_cpus)
        self.free = [self.cap] * int(n_nodes)

    def alloc(self, req: int) -> int | None:
        """Claim ``req`` cores on the best-fitting node (lowest id on
        ties); returns the node id, or None when nothing fits."""
        best = -1
        best_free = self.cap + 1
        for node, free in enumerate(self.free):
            if req <= free < best_free:
                best, best_free = node, free
                if free == req:
                    break  # exact fit: no better bucket exists
        if best < 0:
            return None
        self.free[best] = best_free - req
        return best

    def release(self, node: int, req: int) -> None:
        self.free[node] += req

    @property
    def total_free(self) -> int:
        return sum(self.free)


class CapacityIndex:
    """Bucketed lazy-deletion index with the same policy as the scan."""

    __slots__ = ("free", "cap", "_buckets")

    def __init__(self, n_nodes: int, node_cpus: int):
        self.cap = int(node_cpus)
        self.free = [self.cap] * int(n_nodes)
        #: _buckets[c] is a min-heap of node ids whose free capacity was
        #: c when pushed; an entry is valid iff free[node] == c still.
        self._buckets: list[list[int]] = [[] for _ in range(self.cap + 1)]
        # every node starts fully free: ascending range is a valid heap
        self._buckets[self.cap].extend(range(int(n_nodes)))

    def alloc(self, req: int) -> int | None:
        """Best-fit claim, identical decisions to the linear scan."""
        free = self.free
        buckets = self._buckets
        for level in range(req, self.cap + 1):
            heap = buckets[level]
            while heap:
                node = heap[0]
                if free[node] != level:
                    heappop(heap)  # stale: node moved levels since push
                    continue
                heappop(heap)
                remaining = level - req
                free[node] = remaining
                if remaining:
                    heappush(buckets[remaining], node)
                return node
        return None

    def release(self, node: int, req: int) -> None:
        remaining = self.free[node] + req
        self.free[node] = remaining
        heappush(self._buckets[remaining], node)

    @property
    def total_free(self) -> int:
        return sum(self.free)
