"""Hardware descriptions: CPUs (microarchitecture levels), GPUs, NICs.

Microarchitecture levels matter for the paper's closing challenge
("selecting the most fitting optimized container ... for the respective
target hardware"): an image compiled for x86-64-v4 (AVX-512) faults on a
v2 host, while a v2 image leaves performance on the table on a v4 host.
"""

from __future__ import annotations

import dataclasses

#: psABI microarchitecture levels, in ascending feature order
MICROARCH_LEVELS = ("x86-64", "x86-64-v2", "x86-64-v3", "x86-64-v4")


def microarch_index(level: str) -> int:
    try:
        return MICROARCH_LEVELS.index(level)
    except ValueError:
        raise ValueError(f"unknown microarch level: {level!r} (known: {MICROARCH_LEVELS})")


def microarch_compatible(image_level: str, host_level: str) -> bool:
    """An image runs if the host implements at least the image's level."""
    return microarch_index(image_level) <= microarch_index(host_level)


@dataclasses.dataclass(frozen=True)
class CPUSpec:
    model: str = "generic-epyc"
    cores: int = 64
    microarch: str = "x86-64-v3"
    #: relative throughput multiplier when code matches the host level
    flops_per_core: float = 5e10


@dataclasses.dataclass(frozen=True)
class GPUDevice:
    vendor: str  # "nvidia", "amd", "intel"
    model: str
    index: int
    memory_bytes: int = 80 * 2**30
    #: driver library version the host exposes (ABI-checked by hooks)
    driver_version: str = "535.104"

    @property
    def device_node(self) -> str:
        return f"{self.vendor}{self.index}"


@dataclasses.dataclass(frozen=True)
class NICSpec:
    kind: str = "slingshot"  # or "infiniband", "ethernet"
    bandwidth: float = 25e9  # bytes/second (200 Gb/s)
    latency: float = 2e-6
    #: device library needed inside containers for native transport
    provider_lib: str = "libcxi.so"
