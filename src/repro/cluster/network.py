"""Interconnect model: point-to-point transfer costs between nodes.

Used by the Kubernetes-in-WLM proof of concept (Figure 1: "building a
Kubernetes cluster across the high-speed network of a compute cluster
using Slingshot") and by multi-node image distribution estimates.
"""

from __future__ import annotations

from repro.cluster.hardware import NICSpec


class Interconnect:
    """A flat (single-switch-tier) high-speed network."""

    def __init__(self, nic: NICSpec | None = None, per_hop_latency: float = 0.4e-6, hops: int = 2):
        self.nic = nic or NICSpec()
        self.per_hop_latency = per_hop_latency
        self.hops = hops
        self.stats = {"messages": 0, "bytes": 0}

    def transfer_cost(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` point-to-point."""
        self.stats["messages"] += 1
        self.stats["bytes"] += nbytes
        return self.nic.latency + self.hops * self.per_hop_latency + nbytes / self.nic.bandwidth

    def rpc_cost(self, request_bytes: int = 512, response_bytes: int = 4096) -> float:
        """A request/response round trip (e.g. kubelet → API server)."""
        return self.transfer_cost(request_bytes) + self.transfer_cost(response_bytes)

    def broadcast_cost(self, nbytes: int, n_nodes: int) -> float:
        """Binomial-tree broadcast of ``nbytes`` to ``n_nodes``."""
        if n_nodes <= 1:
            return 0.0
        rounds = (n_nodes - 1).bit_length()
        return rounds * self.transfer_cost(nbytes)
