"""A compute (or login) node: kernel + storage + devices + host OS tree."""

from __future__ import annotations

import typing as _t

from repro.cluster.hardware import CPUSpec, GPUDevice, NICSpec
from repro.fs.backends import LocalDisk, SharedFS, TmpFS
from repro.kernel.config import KernelConfig
from repro.kernel.syscalls import Kernel
from repro.sim import Environment


class HostNode:
    """One machine: its kernel, local storage, devices, and host libraries."""

    def __init__(
        self,
        name: str = "nid00001",
        kernel_config: KernelConfig | None = None,
        cpu: CPUSpec | None = None,
        gpus: _t.Sequence[GPUDevice] = (),
        nic: NICSpec | None = None,
        sharedfs: SharedFS | None = None,
        env: Environment | None = None,
    ):
        self.name = name
        self.env = env
        self.kernel = Kernel(kernel_config or KernelConfig.modern_hpc(), hostname=name)
        self.cpu = cpu or CPUSpec()
        self.gpus = list(gpus)
        self.nic = nic or NICSpec()
        self.local_disk = LocalDisk(env=env, name=f"{name}-nvme")
        self.tmpfs = TmpFS(env=env, name=f"{name}-tmpfs")
        self.sharedfs = sharedfs
        self._populate_host_os()
        for gpu in self.gpus:
            self.kernel.host_devices.add(gpu.device_node)
        self.kernel.host_devices.add(self.nic.kind)

    def _populate_host_os(self) -> None:
        """Host OS tree on the local disk: the libraries engines bind-mount
        into containers (device drivers, MPI, glibc)."""
        t = self.local_disk.tree
        t.create_file("/etc/passwd", data=b"root:x:0:0:root:/root:/bin/sh\n")
        t.create_file("/etc/nsswitch.conf", data=b"passwd: files\n")
        t.create_file("/usr/lib/libc.so.6", size=2_000_000, mode=0o755)
        # Host MPI stack tuned for the interconnect (§4.1.6 library hookup)
        t.create_file("/opt/cray/libmpi.so.40", size=9_000_000, mode=0o755)
        t.create_file(f"/opt/cray/{self.nic.provider_lib}", size=2_500_000, mode=0o755)
        for gpu in self.gpus:
            t.create_file(
                f"/usr/lib64/lib{gpu.vendor}-ml.so.{gpu.driver_version}",
                size=40_000_000,
                mode=0o755,
            )
            t.create_file(f"/usr/lib64/libcuda.so.{gpu.driver_version}", size=25_000_000, mode=0o755)

    @property
    def has_gpus(self) -> bool:
        return bool(self.gpus)

    def gpu_driver_version(self) -> str | None:
        return self.gpus[0].driver_version if self.gpus else None

    def attach_env(self, env: Environment) -> None:
        self.env = env
        self.local_disk.env = env
        self.tmpfs.env = env

    def __repr__(self) -> str:
        return f"<HostNode {self.name} cores={self.cpu.cores} gpus={len(self.gpus)}>"
