"""The Site: the full adaptive-containerization deployment in one object.

Composes everything the paper's architecture needs — compute nodes with
a chosen kernel profile, a shared filesystem, a WLM, a per-node engine
fleet, a site registry (optionally proxying an upstream), and the
decision machinery — so downstream users can stand up a whole site in a
few lines (see ``examples/``).
"""

from __future__ import annotations

import typing as _t

from repro.cluster.hardware import GPUDevice
from repro.cluster.network import Interconnect
from repro.cluster.node import HostNode
from repro.core.requirements import SiteRequirements
from repro.core.selection import rank_engines
from repro.engines.base import ContainerEngine
from repro.fs.backends import SharedFS
from repro.oci.builder import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.oci.image import OCIImage
from repro.registry.distribution import OCIDistributionRegistry
from repro.registry.proxy import PullThroughProxy
from repro.sim import Environment
from repro.wlm.slurm import SlurmController


class Site:
    """A deployed HPC site with containers end to end."""

    def __init__(
        self,
        env: Environment,
        requirements: SiteRequirements | None = None,
        n_nodes: int = 4,
        gpus_per_node: int = 0,
        gpu_vendor: str = "nvidia",
        engine_cls: type[ContainerEngine] | None = None,
        upstream_registry: OCIDistributionRegistry | None = None,
    ):
        self.env = env
        self.requirements = requirements or SiteRequirements()
        if engine_cls is None:
            ranked = rank_engines(self.requirements)
            if not ranked[0][1].compliant:
                raise RuntimeError(
                    f"no engine satisfies {self.requirements.name}'s requirements; "
                    "pass engine_cls explicitly to override"
                )
            engine_cls = ranked[0][0]
        self.engine_cls = engine_cls

        self.sharedfs = SharedFS(env=env)
        self.network = Interconnect()
        self.hosts = [
            HostNode(
                name=f"nid{i:04}",
                kernel_config=self.requirements.kernel,
                gpus=[
                    GPUDevice(vendor=gpu_vendor, model="sim-gpu", index=j)
                    for j in range(gpus_per_node)
                ],
                sharedfs=self.sharedfs,
                env=env,
            )
            for i in range(n_nodes)
        ]
        self.wlm = SlurmController(env, self.hosts)
        self.engines: dict[str, ContainerEngine] = {
            h.name: engine_cls(h) for h in self.hosts
        }
        self.registry = OCIDistributionRegistry(name=f"{self.requirements.name}-registry")
        self.proxy: PullThroughProxy | None = (
            PullThroughProxy(upstream_registry) if upstream_registry is not None else None
        )
        self.builder = Builder(BaseImageCatalog())

    # -- image lifecycle -------------------------------------------------------------
    def publish(self, repository: str, tag: str, dockerfile: str,
                context=None) -> OCIImage:
        """Build on the site's build host and push to the site registry."""
        image = self.builder.build_dockerfile(dockerfile, context=context)
        self.registry.push_image(repository, tag, image)
        return image

    def engine_on(self, node_name: str) -> ContainerEngine:
        return self.engines[node_name]

    # -- workflow / job execution -------------------------------------------------------
    def run_workflow(self, workflow):
        """Submit a `repro.core.Workflow` onto this site's WLM."""
        return workflow.run_on_wlm(self.env, self.wlm, self.engines, self.registry)

    def decision_report(self):
        from repro.core.decision import DecisionReport

        return DecisionReport(self.requirements)

    def __repr__(self) -> str:
        return (
            f"<Site {self.requirements.name}: {len(self.hosts)} nodes, "
            f"engine={self.engine_cls.info.name}>"
        )
