"""Adaptive containerization: the paper's synthesis.

Turns the survey into executable decision support: §3.2's HPC
requirements as a typed model, feature matrices introspected from the
live engine/registry implementations, renderers that regenerate the
paper's Tables 1–5, selection logic producing a per-site decision
document, the container optimizer sketched in the outlook (§7), and a
workflow layer exercising the whole stack.
"""

from repro.core.requirements import HPCRequirement, SiteRequirements
from repro.core.features import (
    ComplianceReport,
    engine_compliance,
    engine_feature_row,
    registry_feature_row,
)
from repro.core.tables import (
    render_table,
    table1_engines,
    table2_formats,
    table3_integrations,
    table4_registries,
    table5_registry_features,
)
from repro.core.selection import (
    rank_engines,
    rank_registries,
    rank_scenarios,
    select_stack,
)
from repro.core.decision import DecisionReport
from repro.core.optimizer import ContainerOptimizer, ImageVariant, RuntimePlan
from repro.core.workflows import Workflow, WorkflowError, WorkflowStep
from repro.core.modules import generate_module_file, ModuleError
from repro.core.repackage import RepackageReport, repackage_for_hpc
from repro.core.ci import ContainerCI, RegressionCheck

__all__ = [
    "ComplianceReport",
    "ContainerCI",
    "ContainerOptimizer",
    "RegressionCheck",
    "RepackageReport",
    "repackage_for_hpc",
    "DecisionReport",
    "HPCRequirement",
    "ImageVariant",
    "ModuleError",
    "RuntimePlan",
    "SiteRequirements",
    "Workflow",
    "WorkflowError",
    "WorkflowStep",
    "engine_compliance",
    "engine_feature_row",
    "generate_module_file",
    "rank_engines",
    "rank_registries",
    "rank_scenarios",
    "registry_feature_row",
    "render_table",
    "select_stack",
    "table1_engines",
    "table2_formats",
    "table3_integrations",
    "table4_registries",
    "table5_registry_features",
]
