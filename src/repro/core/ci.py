"""CI/CD automation for container maintenance (§2).

"The drawback includes the containers not profiting from security,
bugfix, or performance updates performed on the host operating system.
This mandates the use of Continuous Integration/Continuous Delivery
(CI/CD) systems for container update automation ... An efficient
formulation of regression tests can for example be done with a software
package like ReFrame."

:class:`ContainerCI` tracks image recipes, rebuilds when the recipe or
its base image changes, runs ReFrame-style regression checks against the
freshly built image, and only then pushes (and optionally signs) it.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.fs.tree import FileTree
from repro.oci.builder import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.oci.digest import digest_str
from repro.oci.image import OCIImage
from repro.registry.distribution import OCIDistributionRegistry
from repro.signing.cosign import CosignClient
from repro.signing.keys import KeyPair


class CIError(RuntimeError):
    pass


@dataclasses.dataclass
class RegressionCheck:
    """A ReFrame-style check: a predicate over the built image's rootfs."""

    name: str
    fn: _t.Callable[[FileTree, OCIImage], bool]

    def run(self, image: OCIImage) -> bool:
        return bool(self.fn(image.flatten(), image))


@dataclasses.dataclass
class TrackedImage:
    repository: str
    tag: str
    dockerfile: str
    base_name: str
    checks: list[RegressionCheck]
    last_built_digest: str | None = None
    last_input_fingerprint: str | None = None
    history: list[dict] = dataclasses.field(default_factory=list)


class ContainerCI:
    """Rebuild-on-change pipeline with regression gating."""

    def __init__(
        self,
        registry: OCIDistributionRegistry,
        catalog: BaseImageCatalog | None = None,
        signing_key: KeyPair | None = None,
        cosign: CosignClient | None = None,
    ):
        self.catalog = catalog or BaseImageCatalog()
        self.builder = Builder(self.catalog)
        self.registry = registry
        self.signing_key = signing_key
        self.cosign = cosign
        self._tracked: dict[tuple[str, str], TrackedImage] = {}

    def track(self, repository: str, tag: str, dockerfile: str,
              checks: _t.Sequence[RegressionCheck] = ()) -> TrackedImage:
        base_name = dockerfile.strip().splitlines()[0].split(None, 1)[1].strip()
        tracked = TrackedImage(
            repository=repository, tag=tag, dockerfile=dockerfile,
            base_name=base_name, checks=list(checks),
        )
        self._tracked[(repository, tag)] = tracked
        return tracked

    def _fingerprint(self, tracked: TrackedImage) -> str:
        """Input state: the recipe text plus the *current* base image
        digest — a rebuilt/patched base changes the fingerprint."""
        base = self.catalog.get(tracked.base_name)
        return digest_str(f"{tracked.dockerfile}|{base.digest}")

    def run_pipeline(self, now: float = 0.0) -> list[dict]:
        """One CI pass over every tracked image; returns build reports."""
        reports = []
        for tracked in self._tracked.values():
            reports.append(self._process(tracked, now))
        return reports

    def _process(self, tracked: TrackedImage, now: float) -> dict:
        fingerprint = self._fingerprint(tracked)
        if fingerprint == tracked.last_input_fingerprint:
            report = {"image": f"{tracked.repository}:{tracked.tag}",
                      "action": "up-to-date", "time": now}
            tracked.history.append(report)
            return report
        image = self.builder.build_dockerfile(tracked.dockerfile)
        failed = [check.name for check in tracked.checks if not check.run(image)]
        if failed:
            report = {"image": f"{tracked.repository}:{tracked.tag}",
                      "action": "blocked", "failed_checks": failed, "time": now}
            tracked.history.append(report)
            return report
        self.registry.push_image(tracked.repository, tracked.tag, image)
        if self.signing_key is not None and self.cosign is not None:
            self.cosign.sign(self.signing_key, image.digest)
        tracked.last_built_digest = image.digest
        tracked.last_input_fingerprint = fingerprint
        report = {"image": f"{tracked.repository}:{tracked.tag}",
                  "action": "rebuilt", "digest": image.digest,
                  "checks_passed": len(tracked.checks), "time": now}
        tracked.history.append(report)
        return report

    def update_recipe(self, repository: str, tag: str, dockerfile: str) -> None:
        tracked = self._tracked.get((repository, tag))
        if tracked is None:
            raise CIError(f"not tracked: {repository}:{tag}")
        tracked.dockerfile = dockerfile
        tracked.base_name = dockerfile.strip().splitlines()[0].split(None, 1)[1].strip()
