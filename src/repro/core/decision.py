"""Decision documents: the survey's purpose, rendered per site.

"We categorized the most prominent cloud and, especially, HPC container
solutions ..., providing a decision document for supercomputer operation
centers." (§7)
"""

from __future__ import annotations

import typing as _t

from repro.core.requirements import SiteRequirements
from repro.core.selection import select_stack
from repro.core.tables import render_table, table1_engines, table4_registries


class DecisionReport:
    """Markdown decision document for one site."""

    def __init__(self, site: SiteRequirements):
        self.site = site
        self.stack = select_stack(site)

    def engine_section(self) -> str:
        lines = [f"## Container engine selection for {self.site.name}", ""]
        for cls, report in self.stack["engine_ranking"]:
            status = "PASS" if report.compliant else "FAIL"
            lines.append(f"- **{cls.info.name}** [{status}] score={report.score():.1f}")
            for req, why in sorted(report.violated.items(), key=lambda kv: kv[0].name):
                lines.append(f"    - violates *{req.value}*: {why}")
        chosen = self.stack["engine"]
        lines.append("")
        lines.append(
            f"**Recommendation:** {chosen.info.name}" if chosen else
            "**Recommendation:** no engine satisfies all hard requirements; "
            "relax requirements or deploy multiple engines"
        )
        return "\n".join(lines)

    def registry_section(self) -> str:
        lines = [f"## Registry selection for {self.site.name}", ""]
        for cls, score, violations in self.stack["registry_ranking"]:
            status = "PASS" if not violations else "FAIL"
            lines.append(f"- **{cls.traits.name}** [{status}] score={score:.1f}")
            for violation in violations:
                lines.append(f"    - {violation}")
        chosen = self.stack["registry"]
        lines.append("")
        lines.append(
            f"**Recommendation:** {chosen.traits.name}" if chosen else
            "**Recommendation:** none fully suitable"
        )
        return "\n".join(lines)

    def scenario_section(self) -> str:
        ranking = self.stack["scenario_ranking"]
        if not ranking:
            return "## Kubernetes integration\n\nNot required by this site."
        lines = ["## Kubernetes integration scenario", ""]
        for cls, score, violations in ranking:
            lines.append(f"- **{cls.name}** ({cls.section}) score={score:.1f}")
            for violation in violations:
                lines.append(f"    - {violation}")
        lines.append("")
        lines.append(f"**Recommendation:** {ranking[0][0].name} ({ranking[0][0].section})")
        return "\n".join(lines)

    def render(self, include_tables: bool = False) -> str:
        parts = [
            f"# Adaptive containerization decision document — {self.site.name}",
            "",
            f"Kernel: {self.site.kernel.version}, unprivileged userns: "
            f"{self.site.kernel.unprivileged_userns}, setuid allowed: "
            f"{self.site.kernel.allow_setuid_binaries}, cgroup v{self.site.kernel.cgroup_version}",
            "",
            "Hard requirements:",
            *[f"- {req.value}" for req in sorted(self.site.required, key=lambda r: r.name)],
            "",
            self.engine_section(),
            "",
            self.registry_section(),
            "",
            self.scenario_section(),
        ]
        if include_tables:
            parts += ["", render_table(table1_engines(), "### Table 1 (engines)"),
                      render_table(table4_registries(), "### Table 4 (registries)")]
        return "\n".join(parts)
