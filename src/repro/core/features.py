"""Feature introspection and requirement compliance.

Feature rows are read from the live engine/registry objects (the same
capability records their implementations are built on and their tests
exercise), so the rendered tables cannot drift from the behaviour.
Compliance additionally *probes*: it instantiates the engine against the
site's kernel configuration and observes whether it refuses.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.node import HostNode
from repro.core.requirements import HPCRequirement, SiteRequirements
from repro.engines.base import ContainerEngine, EngineError
from repro.registry.registries import RegistryProduct


# --------------------------------------------------------------- feature rows
def engine_feature_row(engine_cls: type[ContainerEngine]) -> dict[str, object]:
    info = engine_cls.info
    caps = engine_cls.capabilities
    return {
        "engine": info.name,
        "version": info.version,
        "champion": info.champion,
        "affiliation": info.affiliation,
        "runtime": info.default_runtime,
        "language": info.implementation_language,
        "rootless": "/".join(caps.rootless),
        "rootless_fs": ", ".join(caps.rootless_fs),
        "monitor": caps.monitor or "no",
        "oci_hooks": caps.oci_hooks,
        "oci_container": caps.oci_container,
        "transparent_conversion": caps.transparent_conversion,
        "native_caching": caps.native_caching,
        "native_sharing": caps.native_sharing,
        "namespacing": caps.namespacing,
        "signature_verification": ", ".join(caps.signature_verification) or "-",
        "encryption": caps.encryption,
        "gpu": caps.gpu,
        "accelerators": caps.accelerators,
        "library_hookup": caps.library_hookup,
        "wlm_integration": caps.wlm_integration,
        "build_tool": caps.build_tool,
        "module_integration": info.module_integration,
        "docs_user": info.docs_user,
        "docs_admin": info.docs_admin,
        "docs_source": info.docs_source,
        "contributors": info.contributors,
    }


def registry_feature_row(product_cls: type[RegistryProduct]) -> dict[str, object]:
    t = product_cls.traits
    return {
        "registry": t.name,
        "version": t.version,
        "champion": t.champion,
        "affiliation": t.affiliation,
        "focus": t.focus,
        "protocols": ", ".join(t.protocols),
        "artifacts": sorted(product_cls.artifact_media_types),
        "user_defined_artifacts": product_cls.user_defined_artifacts,
        "proxying": t.proxying,
        "mirroring": ", ".join(t.mirroring) or "no",
        "storage": ", ".join(t.storage_backends),
        "auth": ", ".join(t.auth_provider_names),
        "squashing": t.image_squashing,
        "formats": ", ".join(t.image_formats),
        "multi_tenancy": t.multi_tenancy,
        "quota": t.quota,
        "signing": t.signing,
        "deployment": ", ".join(t.deployment),
        "build_integration": t.build_integration,
    }


# --------------------------------------------------------------- compliance
@dataclasses.dataclass
class ComplianceReport:
    subject: str
    satisfied: set[HPCRequirement]
    violated: dict[HPCRequirement, str]
    preferred_hits: set[HPCRequirement]

    @property
    def compliant(self) -> bool:
        return not self.violated

    def score(self) -> float:
        return len(self.satisfied) + 0.5 * len(self.preferred_hits) - 10 * len(self.violated)


def _engine_requirement_checks(
    engine_cls: type[ContainerEngine], site: SiteRequirements
) -> dict[HPCRequirement, str | None]:
    """Requirement -> None (ok) or a violation message."""
    caps = engine_cls.capabilities
    checks: dict[HPCRequirement, str | None] = {}

    def set_check(req: HPCRequirement, ok: bool, why: str) -> None:
        checks[req] = None if ok else why

    set_check(
        HPCRequirement.ROOTLESS_EXECUTION,
        bool(caps.rootless) and not (caps.requires_setuid and site.forbids_setuid()),
        "no rootless path available under this site's setuid policy",
    )
    set_check(
        HPCRequirement.NO_ROOT_DAEMON,
        caps.daemonless,
        f"{engine_cls.info.name} needs a per-machine root daemon",
    )
    set_check(
        HPCRequirement.NO_SETUID,
        not caps.requires_setuid,
        "engine depends on a setuid helper",
    )
    set_check(
        HPCRequirement.SHARED_FS_FRIENDLY,
        caps.transparent_conversion or "Dir" in caps.rootless_fs,
        "no flattened-image path: many-small-file load hits the shared FS",
    )
    set_check(
        HPCRequirement.SINGLE_UID_MAPPING,
        caps.namespacing != "full",
        "full namespacing maps uids the cluster FS does not know",
    )
    set_check(
        HPCRequirement.KERNEL_IMAGE_PROTECTION,
        not caps.requires_setuid or engine_cls.info.name in ("shifter", "sarus"),
        "setuid kernel mounts of user-manipulable images",
    )
    set_check(
        HPCRequirement.WEAK_ISOLATION,
        caps.namespacing != "full",
        "always creates network/IPC namespaces",
    )
    gpu_ok = caps.gpu in ("yes", "hooks", "nvidia-only")
    if site.gpu_vendor and site.gpu_vendor != "nvidia" and caps.gpu == "nvidia-only":
        gpu_ok = False
    set_check(HPCRequirement.GPU_ENABLEMENT, gpu_ok, f"gpu support is {caps.gpu!r}")
    set_check(
        HPCRequirement.ACCELERATOR_HOOKS,
        caps.accelerators in ("hooks", "custom-hooks", "hooks-or-patch"),
        f"accelerator support is {caps.accelerators!r}",
    )
    set_check(
        HPCRequirement.MPI_HOOKUP,
        caps.library_hookup in ("yes", "hooks", "mpich"),
        f"library hookup is {caps.library_hookup!r}",
    )
    set_check(
        HPCRequirement.WLM_INTEGRATION,
        caps.wlm_integration in ("spank", "partial-hooks"),
        "no WLM integration",
    )
    set_check(
        HPCRequirement.SIGNATURE_VERIFICATION,
        bool(caps.signature_verification),
        "no signature verification",
    )
    set_check(HPCRequirement.ENCRYPTED_CONTAINERS, caps.encryption, "no encryption support")
    set_check(HPCRequirement.BUILD_ON_SITE, caps.build_tool, "no build tool")
    set_check(
        HPCRequirement.MODULE_INTEGRATION,
        "shpc" in engine_cls.info.module_integration,
        "no module-system integration",
    )
    set_check(
        HPCRequirement.OCI_COMPATIBILITY,
        caps.oci_container == "yes",
        "partial OCI compatibility: vanilla containers may need repackaging",
    )
    return checks


def engine_compliance(
    engine_cls: type[ContainerEngine], site: SiteRequirements
) -> ComplianceReport:
    """Static capability checks + a live instantiation probe on a node
    configured with the site's kernel."""
    checks = _engine_requirement_checks(engine_cls, site)
    satisfied = {req for req, violation in checks.items() if violation is None}
    violated = {
        req: msg
        for req, msg in checks.items()
        if msg is not None and req in site.required
    }
    # Live probe: does the engine even deploy on this kernel?
    try:
        engine_cls(HostNode(name="probe", kernel_config=site.kernel))
    except EngineError as exc:
        violated[HPCRequirement.ROOTLESS_EXECUTION] = f"deploy probe failed: {exc}"
        satisfied.discard(HPCRequirement.ROOTLESS_EXECUTION)
    preferred_hits = satisfied & site.preferred
    return ComplianceReport(
        subject=engine_cls.info.name,
        satisfied=satisfied & (site.required | site.preferred),
        violated=violated,
        preferred_hits=preferred_hits,
    )
