"""The adaptive container optimizer — the paper's closing challenge.

§7: "What remains ... is the challenge of optimizing containers,
selecting the most fitting optimized container and generat[ing] optimal
runtime parameters for the respective target hardware in an automated
fashion."

Given the image variants a project publishes (one per microarchitecture
level / MPI flavor / driver generation), the optimizer picks the best
variant that is *compatible* with the target node and emits a runtime
plan: engine flags, rootfs strategy, binds, and devices.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.hardware import microarch_compatible, microarch_index
from repro.cluster.node import HostNode
from repro.core.requirements import SiteRequirements
from repro.engines.base import ContainerEngine
from repro.engines.hookup import ABIError, check_driver_abi, check_mpi_abi
from repro.oci.image import OCIImage


class OptimizerError(RuntimeError):
    pass


@dataclasses.dataclass(frozen=True)
class ImageVariant:
    """One published build of the same application."""

    ref: str
    image: OCIImage
    microarch: str = "x86-64-v2"
    mpi_flavor: str | None = None
    cuda_driver: str | None = None

    def runtime_speedup(self, host_level: str) -> float:
        """Relative compute throughput from vector-ISA match: each level
        the image exploits (and the host has) buys ~12%."""
        return 1.0 + 0.12 * microarch_index(self.microarch)


@dataclasses.dataclass
class RuntimePlan:
    variant: ImageVariant
    engine_name: str
    rootfs_strategy: str               # "squash-kernel", "squashfuse", "dir", "overlay"
    bind_mounts: list[str]
    devices: list[str]
    env: dict[str, str]
    warnings: list[str]
    expected_speedup: float


class ContainerOptimizer:
    """Select variant + generate runtime parameters for a target node."""

    def __init__(self, site: SiteRequirements):
        self.site = site

    # -- variant selection ------------------------------------------------------
    def compatible_variants(
        self, variants: _t.Sequence[ImageVariant], node: HostNode
    ) -> list[ImageVariant]:
        out = []
        for variant in variants:
            if not microarch_compatible(variant.microarch, node.cpu.microarch):
                continue
            try:
                if variant.mpi_flavor is not None:
                    check_mpi_abi(self.site.mpi_flavor, variant.mpi_flavor)
                if variant.cuda_driver is not None and node.gpus:
                    check_driver_abi(node.gpus[0].driver_version, variant.cuda_driver)
            except ABIError:
                continue
            if variant.cuda_driver is not None and not node.gpus:
                continue
            out.append(variant)
        return out

    def select_variant(
        self, variants: _t.Sequence[ImageVariant], node: HostNode
    ) -> ImageVariant:
        candidates = self.compatible_variants(variants, node)
        if not candidates:
            raise OptimizerError(
                f"no variant is compatible with {node.name} "
                f"({node.cpu.microarch}, gpus={len(node.gpus)})"
            )
        # Highest compatible microarch level wins; GPU-enabled beats not,
        # when the node has GPUs.
        def key(v: ImageVariant) -> tuple:
            return (
                microarch_index(v.microarch),
                1 if (v.cuda_driver is not None and node.gpus) else 0,
                1 if v.mpi_flavor is not None else 0,
            )

        return max(candidates, key=key)

    # -- runtime plan ------------------------------------------------------------------
    def plan(
        self,
        variants: _t.Sequence[ImageVariant],
        node: HostNode,
        engine: ContainerEngine,
    ) -> RuntimePlan:
        variant = self.select_variant(variants, node)
        warnings: list[str] = []
        caps = engine.capabilities

        if caps.transparent_conversion and node.kernel.config.allow_setuid_binaries \
                and caps.rootless_fs and caps.rootless_fs[0] == "suid":
            rootfs = "squash-kernel"
        elif caps.transparent_conversion or "SquashFUSE" in caps.rootless_fs:
            rootfs = "squashfuse"
            warnings.append("FUSE data path: expect ~10x lower random-read IOPS (§4.1.2)")
        elif "Dir" in caps.rootless_fs:
            rootfs = "dir"
            warnings.append("node-local extraction on every start (no cache)")
        else:
            rootfs = "overlay"
            warnings.append("layered rootfs on shared FS: small-file metadata load (§4.1.4)")

        binds: list[str] = []
        devices: list[str] = []
        env: dict[str, str] = {}
        if variant.mpi_flavor is not None:
            binds.append("/opt/cray")
            env["REPRO_MPI_FLAVOR"] = variant.mpi_flavor
        if variant.cuda_driver is not None and node.gpus:
            binds.append("/usr/lib64")
            devices.extend(gpu.device_node for gpu in node.gpus)
            env["REPRO_CUDA_DRIVER"] = variant.cuda_driver
        env["REPRO_TARGET_MICROARCH"] = variant.microarch

        return RuntimePlan(
            variant=variant,
            engine_name=engine.info.name,
            rootfs_strategy=rootfs,
            bind_mounts=binds,
            devices=devices,
            env=env,
            warnings=warnings,
            expected_speedup=variant.runtime_speedup(node.cpu.microarch),
        )
