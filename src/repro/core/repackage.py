"""Repackaging vanilla cloud containers for HPC engines (§4.1.3).

"HPC container solutions ... break some of the features a container
expects to be present.  The most obvious of these are the lack of an
isolated network namespace which permits the binding of services to
arbitrary ports, or the availability of different user IDs ... Thus
vanilla containers may have to be repackaged or modified to run on an
HPC container system."

:func:`repackage_for_hpc` analyses an image against a target engine,
applies the mechanical fixes (drop service ports, rewrite multi-uid
ownership to the invoking uid, inject passwd/nsswitch stubs), and
reports what could and could not be fixed automatically.
"""

from __future__ import annotations

import dataclasses

from repro.engines.base import ContainerEngine
from repro.oci.image import ImageConfig, OCIImage
from repro.oci.layer import Layer, diff_trees


@dataclasses.dataclass
class RepackageReport:
    original_digest: str
    repackaged: OCIImage
    fixes: list[str]
    unfixable: list[str]

    @property
    def clean(self) -> bool:
        return not self.unfixable


def repackage_for_hpc(
    image: OCIImage,
    engine_cls: type[ContainerEngine],
    invoking_uid: int = 1000,
) -> RepackageReport:
    """Adapt a cloud-native image to an HPC engine's execution model."""
    caps = engine_cls.capabilities
    fixes: list[str] = []
    unfixable: list[str] = []

    config = dataclasses.replace(image.config)
    config.env = dict(image.config.env)
    config.labels = dict(image.config.labels)
    tree = image.flatten()
    original_tree = image.flatten()

    if caps.namespacing == "full":
        # nothing to do: the engine provides the cloud-native environment
        return RepackageReport(image.digest, image, ["no changes needed"], [])

    # 1. service ports: no isolated network namespace exists
    if config.exposed_ports:
        fixes.append(
            f"dropped EXPOSE {list(config.exposed_ports)}: no network namespace; "
            "services would bind host ports"
        )
        config.exposed_ports = ()

    # 2. multi-uid expectations: only the invoking uid is mapped
    if config.required_uids:
        for uid in config.required_uids:
            # Snapshot first: the tree-level chown copies up shared nodes
            # (the flatten result is a CoW clone), which would otherwise
            # race the listing we are iterating.
            to_rewrite = [path for path, node in tree.files() if node.uid == uid]
            for path in to_rewrite:
                tree.chown(path, invoking_uid, invoking_uid)
        fixes.append(
            f"rewrote ownership of uids {list(config.required_uids)} to the "
            f"invoking uid {invoking_uid} (single-uid mapping, §3.2)"
        )
        config.required_uids = ()
    if config.user not in ("root", "0", str(invoking_uid)):
        fixes.append(
            f"USER {config.user} ignored: the process runs as the invoking uid"
        )
        config.user = str(invoking_uid)

    # 3. identity files: libc wants passwd/nsswitch even for a single uid
    if not tree.exists("/etc/passwd"):
        tree.create_file(
            "/etc/passwd",
            data=f"user:x:{invoking_uid}:{invoking_uid}::/:/bin/sh\n".encode(),
        )
        fixes.append("injected /etc/passwd stub for the invoking uid")
    if not tree.exists("/etc/nsswitch.conf"):
        tree.create_file("/etc/nsswitch.conf", data=b"passwd: files\n")
        fixes.append("injected /etc/nsswitch.conf (files-only lookups)")

    # 4. things no repackaging can fix
    if config.labels.get("com.repro.needs-privileged") == "true":
        unfixable.append("image requires privileged mode: impossible rootless")
    if config.labels.get("com.repro.needs-ipc-namespace") == "true":
        unfixable.append(
            "image requires a private IPC namespace; the engine shares the host's"
        )

    delta = diff_trees(original_tree, tree, created_by="hpc repackaging")
    layers = list(image.layers)
    if delta.num_files or delta.tree.num_files():
        layers.append(delta)
    repackaged = OCIImage(config, layers)
    return RepackageReport(image.digest, repackaged, fixes, unfixable)
