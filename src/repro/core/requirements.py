"""HPC site requirements (§3.2) as a typed model."""

from __future__ import annotations

import dataclasses
import enum

from repro.kernel.config import KernelConfig


class HPCRequirement(enum.Enum):
    """The §3.2 requirement catalogue."""

    ROOTLESS_EXECUTION = "rootless container execution"
    NO_ROOT_DAEMON = "no root/root-like daemons on compute nodes"
    NO_SETUID = "no setuid binaries on compute nodes"
    SHARED_FS_FRIENDLY = "single-file images to spare the shared filesystem"
    SINGLE_UID_MAPPING = "container files owned by the invoking user"
    KERNEL_IMAGE_PROTECTION = "users must not feed images to kernel drivers"
    WEAK_ISOLATION = "no network/IPC namespaces (HPC communication intact)"
    GPU_ENABLEMENT = "GPU device and driver-library access"
    ACCELERATOR_HOOKS = "non-GPU accelerator enablement via hooks"
    MPI_HOOKUP = "host MPI library hookup with ABI checking"
    WLM_INTEGRATION = "transparent container launch from the WLM"
    SIGNATURE_VERIFICATION = "image signature verification"
    ENCRYPTED_CONTAINERS = "encrypted container support"
    BUILD_ON_SITE = "users can build images on site"
    MODULE_INTEGRATION = "containers exposed as environment modules"
    OCI_COMPATIBILITY = "vanilla OCI containers run unmodified"
    K8S_WORKFLOWS = "Kubernetes-based workflow support"
    AIRGAPPED_REGISTRY = "on-premise registry with proxy/mirror"
    MULTI_TENANCY = "per-project registry tenancy and quotas"


@dataclasses.dataclass
class SiteRequirements:
    """What one supercomputing centre needs and permits."""

    name: str = "site"
    kernel: KernelConfig = dataclasses.field(default_factory=KernelConfig.modern_hpc)
    required: frozenset[HPCRequirement] = frozenset()
    #: nice-to-haves: count toward ranking, do not disqualify
    preferred: frozenset[HPCRequirement] = frozenset()
    gpu_vendor: str | None = None
    mpi_flavor: str = "cray-mpich"

    def forbids_setuid(self) -> bool:
        return (
            HPCRequirement.NO_SETUID in self.required
            or not self.kernel.allow_setuid_binaries
        )

    # -- canonical site profiles -------------------------------------------------
    @classmethod
    def conservative_center(cls) -> "SiteRequirements":
        """Legacy kernel, setuid accepted, Slurm-centric, no cloud tooling."""
        return cls(
            name="conservative-center",
            kernel=KernelConfig.legacy_hpc(),
            required=frozenset(
                {
                    HPCRequirement.NO_ROOT_DAEMON,
                    HPCRequirement.SINGLE_UID_MAPPING,
                    HPCRequirement.SHARED_FS_FRIENDLY,
                    HPCRequirement.WLM_INTEGRATION,
                    HPCRequirement.MPI_HOOKUP,
                }
            ),
            preferred=frozenset({HPCRequirement.GPU_ENABLEMENT}),
        )

    @classmethod
    def security_hardened_center(cls) -> "SiteRequirements":
        """No setuid anywhere; kernel protected from user images."""
        return cls(
            name="security-hardened-center",
            kernel=KernelConfig.hardened(),
            required=frozenset(
                {
                    HPCRequirement.ROOTLESS_EXECUTION,
                    HPCRequirement.NO_ROOT_DAEMON,
                    HPCRequirement.NO_SETUID,
                    HPCRequirement.KERNEL_IMAGE_PROTECTION,
                    HPCRequirement.SINGLE_UID_MAPPING,
                }
            ),
            preferred=frozenset(
                {HPCRequirement.SIGNATURE_VERIFICATION, HPCRequirement.SHARED_FS_FRIENDLY}
            ),
        )

    @classmethod
    def cloud_converged_center(cls) -> "SiteRequirements":
        """Modern kernel, Kubernetes workflows, heavy GPU + data science."""
        return cls(
            name="cloud-converged-center",
            kernel=KernelConfig.modern_hpc(),
            required=frozenset(
                {
                    HPCRequirement.ROOTLESS_EXECUTION,
                    HPCRequirement.NO_ROOT_DAEMON,
                    HPCRequirement.OCI_COMPATIBILITY,
                    HPCRequirement.GPU_ENABLEMENT,
                    HPCRequirement.K8S_WORKFLOWS,
                    HPCRequirement.AIRGAPPED_REGISTRY,
                    HPCRequirement.MULTI_TENANCY,
                }
            ),
            preferred=frozenset(
                {
                    HPCRequirement.SIGNATURE_VERIFICATION,
                    HPCRequirement.BUILD_ON_SITE,
                    HPCRequirement.ENCRYPTED_CONTAINERS,
                }
            ),
            gpu_vendor="nvidia",
        )
