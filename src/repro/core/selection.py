"""Engine / registry / scenario selection against site requirements."""

from __future__ import annotations

import typing as _t

from repro.core.features import ComplianceReport, engine_compliance
from repro.core.requirements import HPCRequirement, SiteRequirements
from repro.engines import ALL_ENGINES
from repro.engines.base import ContainerEngine
from repro.registry.registries import ALL_REGISTRIES, RegistryProduct
from repro.scenarios.base import IntegrationScenario
from repro.scenarios.evaluate import ALL_SCENARIOS


def rank_engines(
    site: SiteRequirements,
    candidates: _t.Sequence[type[ContainerEngine]] = ALL_ENGINES,
) -> list[tuple[type[ContainerEngine], ComplianceReport]]:
    """Compliant engines first, by descending score; then the rest."""
    reports = [(cls, engine_compliance(cls, site)) for cls in candidates]
    return sorted(
        reports,
        key=lambda pair: (not pair[1].compliant, -pair[1].score(), pair[0].info.name),
    )


def _registry_score(product_cls: type[RegistryProduct], site: SiteRequirements) -> tuple[float, list[str]]:
    t = product_cls.traits
    score = 0.0
    violations: list[str] = []
    if HPCRequirement.AIRGAPPED_REGISTRY in site.required:
        if t.proxying == "none":
            violations.append("no proxying: cannot shield NATed clusters from rate limits")
        elif t.proxying == "auto":
            score += 2
        else:
            score += 0.5
        if not t.mirroring:
            violations.append("no mirroring: cannot preserve upstream content locally")
        else:
            score += 1
    if HPCRequirement.MULTI_TENANCY in site.required:
        if t.multi_tenancy == "no":
            violations.append("no multi-tenancy")
        else:
            score += 1
        if t.quota != "per-project":
            violations.append("no per-project quotas")
        else:
            score += 1
    if HPCRequirement.SIGNATURE_VERIFICATION in (site.required | site.preferred):
        score += 1 if t.signing else 0
        if not t.signing and HPCRequirement.SIGNATURE_VERIFICATION in site.required:
            violations.append("cannot store/verify signatures")
    # Single-developer Library-API registries carry maintenance risk (§5.1.1).
    if not t.supports_oci:
        score -= 1
    if t.focus != "Registry":
        score -= 0.5  # CI/CD-integrated registries have limited feature sets
    return score, violations


def rank_registries(
    site: SiteRequirements,
    candidates: _t.Sequence[type[RegistryProduct]] = ALL_REGISTRIES,
) -> list[tuple[type[RegistryProduct], float, list[str]]]:
    scored = []
    for cls in candidates:
        score, violations = _registry_score(cls, site)
        scored.append((cls, score, violations))
    return sorted(scored, key=lambda x: (bool(x[2]), -x[1], x[0].traits.name))


def rank_scenarios(
    site: SiteRequirements,
    candidates: _t.Sequence[type[IntegrationScenario]] = ALL_SCENARIOS,
) -> list[tuple[type[IntegrationScenario], float, list[str]]]:
    """Scenario ranking per §6.6's criteria (static properties; the
    scenario bench provides the measured numbers)."""
    results = []
    for cls in candidates:
        score = 0.0
        violations: list[str] = []
        # accounting-in-WLM is the §6 headline requirement
        accounting = cls.name in (
            "kubernetes-in-wlm", "bridge-operator", "knoc-virtual-kubelet",
            "kubelet-in-allocation",
        )
        if accounting:
            score += 2
        else:
            violations.append("pod work invisible to WLM accounting")
        if cls.workflow_transparency:
            score += 2
        else:
            violations.append("requires workflow changes")
        if cls.standard_pod_environment:
            score += 1
        if cls.name == "kubernetes-in-wlm":
            violations.append("per-workflow cluster bootstrap (long startup)")
        if cls.name == "on-demand-reallocation":
            violations.append("slow, disturbing node re-partitioning")
        results.append((cls, score, violations))
    return sorted(results, key=lambda x: (-x[1], x[0].name))


def select_stack(site: SiteRequirements) -> dict[str, object]:
    """The full adaptive-containerization pick for one site."""
    engines = rank_engines(site)
    registries = rank_registries(site)
    needs_k8s = HPCRequirement.K8S_WORKFLOWS in (site.required | site.preferred)
    scenarios = rank_scenarios(site) if needs_k8s else []
    return {
        "site": site.name,
        "engine": engines[0][0] if engines[0][1].compliant else None,
        "engine_ranking": engines,
        "registry": registries[0][0] if not registries[0][2] else None,
        "registry_ranking": registries,
        "scenario": scenarios[0][0] if scenarios else None,
        "scenario_ranking": scenarios,
    }
