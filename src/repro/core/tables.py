"""Regenerate the paper's Tables 1–5 from the live implementations."""

from __future__ import annotations

import typing as _t

from repro.core.features import engine_feature_row, registry_feature_row
from repro.engines import ALL_ENGINES
from repro.registry.registries import ALL_REGISTRIES


def _subset(rows: list[dict[str, object]], columns: list[str]) -> list[dict[str, object]]:
    return [{c: row[c] for c in columns} for row in rows]


def _engine_rows() -> list[dict[str, object]]:
    return [engine_feature_row(cls) for cls in ALL_ENGINES]


def _registry_rows() -> list[dict[str, object]]:
    return [registry_feature_row(cls) for cls in ALL_REGISTRIES]


def table1_engines() -> list[dict[str, object]]:
    """Table 1: engine overview, rootless techniques, OCI compatibility."""
    return _subset(
        _engine_rows(),
        [
            "engine", "version", "champion", "affiliation", "runtime", "language",
            "rootless", "rootless_fs", "monitor", "oci_hooks", "oci_container",
        ],
    )


def table2_formats() -> list[dict[str, object]]:
    """Table 2: image formats, conversion, caching, sharing, signing."""
    return _subset(
        _engine_rows(),
        [
            "engine", "transparent_conversion", "native_caching", "native_sharing",
            "namespacing", "signature_verification", "encryption",
        ],
    )


def table3_integrations() -> list[dict[str, object]]:
    """Table 3: GPU/accelerator/library/WLM/module integration + community."""
    return _subset(
        _engine_rows(),
        [
            "engine", "gpu", "accelerators", "library_hookup", "wlm_integration",
            "build_tool", "module_integration", "docs_user", "docs_admin",
            "docs_source", "contributors",
        ],
    )


def table4_registries() -> list[dict[str, object]]:
    """Table 4: registry overview, protocols, proxying, storage, auth."""
    return _subset(
        _registry_rows(),
        [
            "registry", "version", "champion", "affiliation", "focus", "protocols",
            "artifacts", "user_defined_artifacts", "proxying", "mirroring",
            "storage", "auth",
        ],
    )


def table5_registry_features() -> list[dict[str, object]]:
    """Table 5: squashing, formats, tenancy, quota, signing, deployment."""
    return _subset(
        _registry_rows(),
        [
            "registry", "squashing", "formats", "multi_tenancy", "quota",
            "signing", "deployment", "build_integration",
        ],
    )


def render_table(rows: list[dict[str, object]], title: str = "") -> str:
    """Plain-text table renderer (for benches and decision documents)."""
    if not rows:
        return f"{title}\n(empty)\n"
    columns = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(str(r[c])) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(" | ".join(str(row[c]).ljust(widths[c]) for c in columns))
    return "\n".join(lines) + "\n"
