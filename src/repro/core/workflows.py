"""Container workflows: dependency DAGs of containerized steps.

§2's motivating use case — bioinformatics/data-science "complex data
processing pipelines" whose steps have "sometimes competing build and
runtime environment requirements", each wrapped in its own container.
Steps run on a WLM via any engine, or as Kubernetes pods via a scenario.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.engines.base import ContainerEngine
from repro.oci.image import ImageReference
from repro.registry.distribution import OCIDistributionRegistry
from repro.sim import Environment
from repro.wlm.jobs import JobSpec
from repro.wlm.slurm import SlurmController


class WorkflowError(RuntimeError):
    pass


@dataclasses.dataclass
class WorkflowStep:
    name: str
    image: str
    duration: float = 60.0
    cores: int = 4
    gpus: int = 0
    after: tuple[str, ...] = ()
    #: filled during execution
    job_id: int | None = None
    started_at: float | None = None
    finished_at: float | None = None


class Workflow:
    """A DAG of containerized steps (a Nextflow/Snakemake stand-in)."""

    def __init__(self, name: str, steps: _t.Sequence[WorkflowStep], user_uid: int = 1000):
        self.name = name
        self.steps = {s.name: s for s in steps}
        self.user_uid = user_uid
        if len(self.steps) != len(steps):
            raise WorkflowError("duplicate step names")
        for step in steps:
            for dep in step.after:
                if dep not in self.steps:
                    raise WorkflowError(f"step {step.name!r} depends on unknown {dep!r}")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.steps)
        for step in self.steps.values():
            for dep in step.after:
                graph.add_edge(dep, step.name)
        if not nx.is_directed_acyclic_graph(graph):
            raise WorkflowError(f"workflow {self.name!r} has a dependency cycle")
        self._graph = graph

    def topological_batches(self) -> list[list[str]]:
        """Steps grouped by dependency depth (each batch parallelizable)."""
        import networkx as nx

        return [sorted(gen) for gen in nx.topological_generations(self._graph)]

    # -- execution on a WLM ---------------------------------------------------------
    def run_on_wlm(
        self,
        env: Environment,
        wlm: SlurmController,
        engines: dict[str, ContainerEngine],
        registry: OCIDistributionRegistry,
    ):
        """Submit the DAG respecting dependencies; returns the sim process
        (its value is the makespan)."""

        def _driver():
            start = env.now
            for batch in self.topological_batches():
                jobs = []
                for step_name in batch:
                    step = self.steps[step_name]
                    jobs.append((step, self._submit_step(env, wlm, engines, registry, step)))
                # barrier: wait for the whole batch
                for step, job in jobs:
                    while not job.state.is_terminal:
                        yield env.timeout(1.0)
                    if job.exit_code != 0:
                        raise WorkflowError(f"step {step.name!r} failed ({job.state.value})")
                    step.finished_at = job.end_time
            return env.now - start

        return env.process(_driver(), name=f"workflow-{self.name}")

    # -- execution on Kubernetes (via a §6 scenario's API server) ----------------------
    def run_on_k8s(self, env: Environment, apiserver, namespace: str = "default",
                   submit_fn=None):
        """Submit the DAG as pods against a Kubernetes API server (e.g. a
        §6.5 scenario's K3s); dependencies gate each batch on the previous
        batch's pod completion.  ``submit_fn(pod)`` overrides plain
        apiserver creation (scenarios inject selectors there)."""
        from repro.k8s.objects import ContainerSpec, ObjectMeta, Pod, PodPhase, PodSpec, ResourceRequests

        def _driver():
            start = env.now
            for batch in self.topological_batches():
                pods = []
                for step_name in batch:
                    step = self.steps[step_name]
                    pod = Pod(
                        metadata=ObjectMeta(name=f"{self.name}-{step.name}", namespace=namespace),
                        spec=PodSpec(
                            containers=[ContainerSpec(
                                name=step.name, image=step.image,
                                resources=ResourceRequests(cpu=step.cores, gpu=step.gpus),
                            )],
                            user_uid=self.user_uid,
                            duration=step.duration,
                        ),
                    )
                    if submit_fn is not None:
                        submit_fn(pod)
                    else:
                        apiserver.create("Pod", pod)
                    pods.append((step, pod))
                for step, pod in pods:
                    while pod.phase not in (PodPhase.SUCCEEDED, PodPhase.FAILED):
                        yield env.timeout(1.0)
                    if pod.phase is PodPhase.FAILED:
                        raise WorkflowError(f"step {step.name!r} failed: {pod.message}")
                    step.started_at = pod.start_time
                    step.finished_at = pod.end_time
            return env.now - start

        return env.process(_driver(), name=f"workflow-{self.name}-k8s")

    def _submit_step(self, env, wlm, engines, registry, step: WorkflowStep):
        ref = ImageReference.parse(step.image)

        def on_start(node, job, user_proc):
            engine = engines[node.name]
            pulled = engine.pull(ref.repository, ref.tag, registry, now=env.now)
            result = engine.run(pulled, user_proc)
            step.started_at = env.now
            job._wf_result = result  # type: ignore[attr-defined]

        def on_end(job):
            result = getattr(job, "_wf_result", None)
            if result is not None and result.container.state.value == "running":
                engines[job.allocated_nodes[0]].runtime.finish(result.container)

        job = wlm.submit(
            JobSpec(
                name=f"{self.name}.{step.name}",
                user_uid=self.user_uid,
                nodes=1,
                cores_per_node=step.cores,
                gpus_per_node=step.gpus,
                duration=step.duration,
                exclusive=False,
                on_start=on_start,
                on_end=on_end,
            )
        )
        job.comment = f"workflow:{self.name}/{step.name}"
        step.job_id = job.job_id
        return job
