"""Container engines: the nine solutions of the paper's Tables 1–3.

Every engine implements the same :class:`~repro.engines.base.ContainerEngine`
interface over the simulated kernel, but uses exactly the mechanisms the
paper attributes to it — setuid helpers vs user namespaces, kernel vs
FUSE filesystem drivers, per-machine daemons vs per-container monitors,
transparent format conversion and caching, hooks, signing, encryption,
GPU enablement, and WLM integration.
"""

from repro.engines.base import (
    ContainerEngine,
    EngineCapabilities,
    EngineError,
    EngineInfo,
    PulledImage,
    RunResult,
)
from repro.engines.monitor import ConmonMonitor, DockerDaemon
from repro.engines.fakeroot import (
    FakerootError,
    LDPreloadFakeroot,
    PtraceFakeroot,
    SubuidFakeroot,
)
from repro.engines.hookup import (
    ABIError,
    check_driver_abi,
    make_gpu_hook,
    make_mpi_hook,
    make_wlm_device_hook,
)
from repro.engines.docker import DockerEngine
from repro.engines.podman import PodmanEngine, PodmanHPCEngine
from repro.engines.shifter import ShifterEngine
from repro.engines.sarus import SarusEngine
from repro.engines.charliecloud import CharliecloudEngine
from repro.engines.singularity import ApptainerEngine, SingularityCEEngine
from repro.engines.enroot import EnrootEngine

#: all engines in the paper's table order
ALL_ENGINES = (
    DockerEngine,
    PodmanEngine,
    PodmanHPCEngine,
    ShifterEngine,
    SarusEngine,
    CharliecloudEngine,
    ApptainerEngine,
    SingularityCEEngine,
    EnrootEngine,
)

__all__ = [
    "ABIError",
    "ALL_ENGINES",
    "ApptainerEngine",
    "CharliecloudEngine",
    "ConmonMonitor",
    "ContainerEngine",
    "DockerDaemon",
    "DockerEngine",
    "EngineCapabilities",
    "EngineError",
    "EngineInfo",
    "EnrootEngine",
    "FakerootError",
    "LDPreloadFakeroot",
    "PodmanEngine",
    "PodmanHPCEngine",
    "PtraceFakeroot",
    "PulledImage",
    "RunResult",
    "SarusEngine",
    "ShifterEngine",
    "SingularityCEEngine",
    "SubuidFakeroot",
    "check_driver_abi",
    "make_gpu_hook",
    "make_mpi_hook",
    "make_wlm_device_hook",
]
