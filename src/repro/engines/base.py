"""Common engine machinery: capability descriptors, pull/cache plumbing,
and the run template shared by all nine engines."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.node import HostNode
from repro.faults.injector import injector as _faults
from repro.faults.retry import RetryExhausted, RetryPolicy
from repro.fs.drivers import MountedView
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.kernel.process import SimProcess
from repro.oci.bundle import Bundle, NamespaceRequest, RuntimeSpec
from repro.oci.hooks import HookRegistry
from repro.oci.image import OCIImage
from repro.oci.layer import Layer
from repro.oci.runtime import Container, CrunRuntime, OCIRuntime, RuncRuntime
from repro.oci.sif import SIFImage
from repro.registry.distribution import OCIDistributionRegistry


class EngineError(RuntimeError):
    pass


@dataclasses.dataclass(frozen=True)
class EngineInfo:
    """Literature metadata from Tables 1 and 3 (facts about the real
    projects as surveyed in mid-2023; not derived from behaviour)."""

    name: str
    version: str
    champion: str
    affiliation: str
    default_runtime: str            # "runc", "crun", or a custom name
    implementation_language: str
    contributors: int
    docs_user: str                  # "+", "++", "+++", "N/A"
    docs_admin: str
    docs_source: str
    module_integration: str         # "shpc", "(shpc)", "shpc-announced", "no"


@dataclasses.dataclass(frozen=True)
class EngineCapabilities:
    """Behavioural feature flags (Tables 1–3).  Each flag is exercised by
    the engine implementation and its tests — nothing is declared that
    the code does not do."""

    rootless: tuple[str, ...]                 # "UserNS", "fakeroot"
    rootless_fs: tuple[str, ...]              # "suid", "fuse-overlayfs", "SquashFUSE", "Dir", "fakeroot"
    monitor: str | None                       # "per-machine (dockerd)", "per-container (conmon)", None
    oci_hooks: str                            # "yes", "no", "manual", "custom"
    oci_container: str                        # "yes", "partial"
    transparent_conversion: bool
    native_caching: bool
    native_sharing: bool
    namespacing: str                          # "full", "user+mount", "full/user+mount"
    signature_verification: tuple[str, ...]   # "notary", "gpg", "sigstore"
    encryption: bool
    gpu: str                                  # "yes", "no", "hooks", "manual", "nvidia-only"
    accelerators: str                         # "hooks", "no", "manual", "custom-hooks", "hooks-or-patch"
    library_hookup: str                       # "hooks", "yes", "mpich", "manual"
    wlm_integration: str                      # "no", "spank", "partial-hooks"
    build_tool: bool
    daemonless: bool
    requires_setuid: bool


@dataclasses.dataclass
class PulledImage:
    """A locally available image plus how it got here."""

    source_ref: str
    image: OCIImage | SIFImage
    pull_cost: float = 0.0
    from_cache: bool = False

    @property
    def is_sif(self) -> bool:
        return isinstance(self.image, SIFImage)


@dataclasses.dataclass
class RunResult:
    container: Container
    engine_name: str
    timings: dict[str, float] = dataclasses.field(default_factory=dict)
    warnings: list[str] = dataclasses.field(default_factory=list)

    @property
    def startup_seconds(self) -> float:
        return sum(self.timings.values())

    def warn(self, message: str) -> None:
        self.warnings.append(message)


_RUNTIMES: dict[str, type[OCIRuntime]] = {"runc": RuncRuntime, "crun": CrunRuntime}


class _CustomRuntime(OCIRuntime):
    """Stand-in for engines with their own embedded runtime (Shifter,
    Charliecloud, enroot)."""

    implementation_language = "C"
    startup_overhead = 0.012

    def __init__(self, kernel, name: str):
        super().__init__(kernel)
        self.name = name


class ContainerEngine:
    """Template-method base: subclasses supply ``_prepare_rootfs`` and
    their capability/metadata records."""

    info: EngineInfo
    capabilities: EngineCapabilities
    #: engine CLI/daemon dispatch overhead per invocation (seconds)
    invocation_overhead = 0.010
    #: deterministic backoff for transient registry failures during pull
    #: (jitter-free: the same failure sequence always costs the same)
    pull_retry = RetryPolicy(
        max_attempts=5, base_delay=0.5, multiplier=2.0, max_delay=30.0, deadline=300.0
    )

    def __init__(self, node: HostNode):
        self.node = node
        self.kernel = node.kernel
        runtime_name = self.info.default_runtime
        runtime_cls = _RUNTIMES.get(runtime_name)
        self.runtime: OCIRuntime = (
            runtime_cls(self.kernel)
            if runtime_cls
            else _CustomRuntime(self.kernel, runtime_name)
        )
        #: OCI layer cache (content-addressed, local graph storage)
        self.layer_cache: dict[str, Layer] = {}
        #: native-format cache: image digest -> (converted object, owner uid)
        self._native_cache: dict[str, tuple[object, int]] = {}
        #: site-admin-installed hooks (GPU, MPI, WLM devices)
        self.site_hooks = HookRegistry()
        #: single-flight table: (repository, tag) -> (start, end, result)
        #: of the most recent pull, so a pull requested while one is
        #: still in flight joins it instead of re-downloading
        self._inflight_pulls: dict[
            tuple[str, str], tuple[float, float, PulledImage]
        ] = {}
        self.stats = {
            "pulls": 0,
            "coalesced_pulls": 0,
            "cache_hits": 0,
            "conversions": 0,
            "runs": 0,
        }

    # ------------------------------------------------------------------- pull
    def pull(
        self,
        repository: str,
        tag: str,
        registry: OCIDistributionRegistry,
        token: str | None = None,
        now: float = 0.0,
        ip: str = "10.0.0.1",
    ) -> PulledImage:
        """Pull an OCI image, skipping layers already in the local cache.

        Transient failures (:class:`~repro.registry.RegistryUnavailable`
        — 429s and timeouts — and :class:`~repro.registry.StorageError`,
        e.g. a full pull-through-proxy store) are retried under
        :attr:`pull_retry`: deterministic exponential backoff, each
        attempt's wasted cost and backoff delay folded into the returned
        ``pull_cost`` and into the effective ``now`` of the next attempt
        (so a fault window that ends mid-backoff is escaped).  When the
        policy gives up, a single aggregated
        :class:`~repro.faults.RetryExhausted` surfaces the attempt
        count, the elapsed virtual time, and the last cause — never the
        bare final exception.  Permanent errors (unknown image, auth)
        raise :class:`~repro.registry.RegistryError` immediately.

        Pulls are *single-flight* per node: if the same ``repository:tag``
        is requested while a strictly earlier pull of it is still in
        flight (``now`` falls inside the open interval of the earlier
        pull's window), the caller joins that download — its cost is
        exactly the remaining time of the in-flight pull, and no
        registry traffic is issued.
        """
        from repro.registry.distribution import RegistryUnavailable
        from repro.registry.storage import StorageError

        self.stats["pulls"] += 1
        ref = (repository, tag)
        inflight = self._inflight_pulls.get(ref)
        if inflight is not None and inflight[0] < now < inflight[1]:
            _start, end, result = inflight
            remaining = end - now
            self.stats["coalesced_pulls"] += 1
            if _trace.tracer.enabled:
                _trace.complete(
                    "engine.pull",
                    remaining,
                    engine=self.info.name,
                    ref=f"{repository}:{tag}",
                    coalesced=True,
                )
            if _metrics.registry.enabled:
                _metrics.inc("engine.pulls_coalesced", engine=self.info.name)
                _metrics.observe(
                    "engine.pull_seconds", remaining, engine=self.info.name
                )
            return dataclasses.replace(result, pull_cost=remaining)
        policy = self.pull_retry
        cost = 0.0
        attempts = 0
        while True:
            attempts += 1
            try:
                image, attempt_cost = registry.pull_image(
                    repository,
                    tag,
                    token=token,
                    ip=ip,
                    now=now + cost,
                    have_digests=set(self.layer_cache),
                )
                cost += attempt_cost
                break
            except (RegistryUnavailable, StorageError) as exc:
                cost += getattr(exc, "cost", 0.0)
                if policy.gives_up(attempts, cost):
                    raise RetryExhausted("registry", attempts, cost, exc) from exc
                delay = policy.delay(attempts - 1)
                cost += delay
                _faults.note_retry("registry")
                if _metrics.registry.enabled:
                    _metrics.inc(
                        "retry.attempts", subsystem="registry", engine=self.info.name
                    )
                if _trace.tracer.enabled:
                    _trace.tracer.instant(
                        "engine.pull_retry",
                        engine=self.info.name,
                        attempt=attempts,
                        backoff=delay,
                    )
        for layer in image.layers:
            self.layer_cache[layer.digest] = layer
        if _trace.tracer.enabled:
            _trace.complete(
                "engine.pull", cost, engine=self.info.name, ref=f"{repository}:{tag}"
            )
        if _metrics.registry.enabled:
            _metrics.inc("engine.pulls", engine=self.info.name)
            _metrics.observe("engine.pull_seconds", cost, engine=self.info.name)
        pulled = PulledImage(
            source_ref=f"{repository}:{tag}", image=image, pull_cost=cost
        )
        self._inflight_pulls[ref] = (now, now + cost, pulled)
        return pulled

    # ------------------------------------------------------------------- cache
    def _cache_lookup(self, digest: str, user_uid: int) -> object | None:
        """Native-format cache lookup honouring the sharing capability:
        without native sharing, a conversion cached by one user is
        invisible to another."""
        if not self.capabilities.native_caching:
            return None
        hit = self._native_cache.get(digest)
        if hit is None:
            return None
        converted, owner_uid = hit
        if owner_uid != user_uid and not self.capabilities.native_sharing and owner_uid != 0:
            return None
        self.stats["cache_hits"] += 1
        if _metrics.registry.enabled:
            _metrics.inc("engine.cache_hits", engine=self.info.name)
        return converted

    def _cache_store(self, digest: str, converted: object, owner_uid: int) -> None:
        if self.capabilities.native_caching:
            self._native_cache[digest] = (converted, owner_uid)

    # ------------------------------------------------------------------- run
    def run(
        self,
        pulled: PulledImage | OCIImage | SIFImage,
        user: SimProcess,
        command: tuple[str, ...] | None = None,
        devices: tuple[str, ...] = (),
        extra_hooks: HookRegistry | None = None,
        cgroup_path: str | None = None,
    ) -> RunResult:
        """Create and start a container (the engine's ``run`` verb)."""
        if not isinstance(pulled, PulledImage):
            pulled = PulledImage(source_ref="local", image=pulled)
        tracer = _trace.tracer
        if not tracer.enabled and not _metrics.registry.enabled:
            return self._run(pulled, user, command, devices, extra_hooks, cgroup_path)
        with tracer.span("engine.run", engine=self.info.name, ref=pulled.source_ref):
            start = tracer.now()
            result = self._run(pulled, user, command, devices, extra_hooks, cgroup_path)
            if tracer.enabled:
                # Phase breakdown: the analytic timing dict replayed as
                # sequential slices from the span start (pull → convert →
                # mount → monitor → runtime), so Perfetto shows where the
                # startup's virtual time goes.
                at = start
                for phase, cost in result.timings.items():
                    if cost:
                        tracer.complete_at(
                            f"engine.phase.{phase}", at, cost, engine=self.info.name
                        )
                        at += cost
        if _metrics.registry.enabled:
            _metrics.inc("engine.runs", engine=self.info.name)
            _metrics.observe(
                "engine.startup_seconds", result.startup_seconds, engine=self.info.name
            )
            for phase, cost in result.timings.items():
                _metrics.inc(
                    "engine.phase_seconds", cost, engine=self.info.name, phase=phase
                )
        return result

    def _run(
        self,
        pulled: PulledImage,
        user: SimProcess,
        command: tuple[str, ...] | None = None,
        devices: tuple[str, ...] = (),
        extra_hooks: HookRegistry | None = None,
        cgroup_path: str | None = None,
    ) -> RunResult:
        self.stats["runs"] += 1
        result = RunResult(container=None, engine_name=self.info.name)  # type: ignore[arg-type]
        result.timings["pull"] = pulled.pull_cost
        result.timings["engine"] = self.invocation_overhead

        self._pre_run_checks(pulled, user, result)

        rootfs = self._prepare_rootfs(pulled, user, result)
        spec = self._make_spec(pulled, command, user)
        spec.devices = tuple(set(spec.devices) | set(devices))
        spec.cgroup_path = cgroup_path
        bundle = Bundle(rootfs=rootfs, spec=spec, origin=self.info.name)

        hooks = self.site_hooks
        if extra_hooks is not None:
            hooks = hooks.merged_with(extra_hooks)
        if len(hooks) and self.capabilities.oci_hooks == "no":
            raise EngineError(
                f"{self.info.name} has no hook framework; extend via its "
                "scripted components instead (§4.1.3)"
            )

        result.timings["monitor"] = self._monitor_overhead(user)
        result.timings["runtime"] = self.runtime.startup_cost()

        # Cleanup guarantee (§3.2 "no lingering processes"): a fault
        # anywhere between create and start must leave no container
        # record, no running process, and no mounts behind — the engine
        # kills and deletes the half-started container before the error
        # propagates.
        owner = self._container_owner(user)
        container = None
        try:
            container = self.runtime.create(bundle, owner=owner, extra_hooks=hooks)
            self.runtime.start(container)
        except BaseException:
            if container is not None:
                self._abort_container(container)
            raise
        result.container = container
        return result

    def _abort_container(self, container: Container) -> None:
        """Best-effort teardown of a container whose start failed."""
        from repro.oci.runtime import ContainerState

        try:
            if container.state is ContainerState.RUNNING:
                self.runtime.kill(container)
            if container.state is not ContainerState.DELETED:
                self.runtime.delete(container)
        except Exception:
            # poststop hooks may be as broken as whatever aborted the
            # start; the record is dropped regardless
            self.runtime.containers.pop(container.id, None)
            container.state = ContainerState.DELETED
        if _metrics.registry.enabled:
            _metrics.inc("engine.aborted_containers", engine=self.info.name)

    def abort_all(self) -> int:
        """Force-stop every non-terminal container (node-crash cleanup).

        Returns how many containers were aborted.  Used by the kubelet's
        crash path so a dead node leaves no lingering containers or
        mounts behind (§3.2).
        """
        from repro.oci.runtime import ContainerState

        n = 0
        for container in list(self.runtime.containers.values()):
            if container.state not in (ContainerState.STOPPED, ContainerState.DELETED):
                self._abort_container(container)
                n += 1
        return n

    # -- template pieces subclasses override ------------------------------------
    def _pre_run_checks(self, pulled: PulledImage, user: SimProcess, result: RunResult) -> None:
        """Daemon present? signature policy? — engine-specific."""

    def _prepare_rootfs(
        self, pulled: PulledImage, user: SimProcess, result: RunResult
    ) -> MountedView:
        raise NotImplementedError

    def _namespace_request(self) -> NamespaceRequest:
        if self.capabilities.namespacing == "full":
            return NamespaceRequest.full()
        return NamespaceRequest.hpc_minimal()

    def _make_spec(
        self,
        pulled: PulledImage,
        command: tuple[str, ...] | None,
        user: SimProcess,
    ) -> RuntimeSpec:
        config = pulled.image.config
        spec = RuntimeSpec.from_image_config(config, namespaces=self._namespace_request())
        if command is not None:
            spec.args = command
        # HPC engines map the single invoking uid (§3.2); the container
        # user is therefore the job user, not whatever the image says.
        if self.capabilities.namespacing != "full":
            spec.user = str(user.creds.uid)
        return spec

    def _monitor_overhead(self, user: SimProcess) -> float:
        return 0.0

    def _container_owner(self, user: SimProcess) -> SimProcess:
        """Which process creates the container (user vs root daemon)."""
        return user

    # -------------------------------------------------------- squash mounting
    def _install_suid_helper(self):
        """The engine's setuid-root mount helper on the node (installed
        by the site admin at deployment time)."""
        path = f"/usr/libexec/{self.info.name}-mount"
        tree = self.node.local_disk.tree
        if not tree.exists(path):
            tree.create_file(path, size=60_000, uid=0, gid=0, mode=0o4755)
        return tree.get(path)

    def _squash_rootfs(
        self,
        squash,
        user: SimProcess,
        result: RunResult,
        prefer_kernel_driver: bool,
        strict_provenance: bool = True,
    ) -> MountedView:
        """Mount a squash image as an unprivileged user.

        Kernel-driver path: a setuid-root helper mounts it (fast IOPS) —
        refused for user-manipulable images when ``strict_provenance``
        (§4.1.2), and unavailable where site policy bans setuid.
        Fallback: SquashFUSE (userspace parser, slower but safe).
        """
        import dataclasses as _dc

        from repro.fs.drivers import BindDriver, mount_squash

        kernel_ok = (
            prefer_kernel_driver
            and self.kernel.config.allow_setuid_binaries
        )
        if kernel_ok and strict_provenance and squash.is_user_manipulable(user.creds.uid):
            raise EngineError(
                "refusing to feed a user-manipulable image to the in-kernel "
                "SquashFS driver (§4.1.2); rebuild via the system cache"
            )
        if kernel_ok:
            if squash.is_user_manipulable(user.creds.uid):
                result.warn(
                    "user-supplied image mounted via the in-kernel driver: "
                    "kernel exposed to crafted filesystem data (§4.1.2)"
                )
            helper_bin = self._install_suid_helper()
            helper = self.kernel.exec_setuid(user, helper_bin, argv=(f"{self.info.name}-mount",))
            staged = mount_squash(squash, fuse=False)
            self.kernel.mount(helper, staged, f"/var/{self.info.name}/mnt/{squash.image_id}")
            result.timings.setdefault("mount", 0.0)
            result.timings["mount"] += 0.002
            # Hand the runtime a bind view of the staged mount: binding is
            # permitted inside the user namespace, remounting squash is not.
            return MountedView(
                BindDriver, [squash.tree], staged.cost_model, writable=False
            )
        # FUSE fallback (or FUSE-first engines).
        result.timings.setdefault("mount", 0.0)
        result.timings["mount"] += 0.004
        return mount_squash(squash, fuse=True)

    # ----------------------------------------------------------- interactive
    def exec_into(
        self,
        container: Container,
        user: SimProcess,
        argv: tuple[str, ...] = ("sh",),
    ) -> SimProcess:
        """`engine exec`: join a running container's namespaces (§4.1.6
        interactive access).  Only works when the kernel grants the caller
        capabilities over the container's user namespace — i.e. for the
        user who owns the (rootless) container, or root."""
        from repro.kernel.namespaces import NamespaceKind
        from repro.oci.runtime import ContainerState

        if container.state is not ContainerState.RUNNING:
            raise EngineError(f"container is not running ({container.state.value})")
        assert container.proc is not None
        target = container.proc
        proc = self.kernel.spawn(parent=user, argv=argv)
        self.kernel.setns(proc, target.userns)
        for kind, ns in target.namespaces.items():
            if kind is not NamespaceKind.USER and ns is not self.kernel.initial_namespaces.get(kind):
                self.kernel.setns(proc, ns)
        proc.mount_table = target.mount_table
        proc.root = target.root
        container.log(f"exec: pid {proc.pid} joined as uid {proc.creds.uid}")
        return proc

    # ------------------------------------------------------------------- misc
    def supports_image(self, image: OCIImage | SIFImage) -> bool:
        if isinstance(image, SIFImage):
            return "SIF" in getattr(self, "native_formats", ("OCI",))
        return True

    def oci_compat_gaps(self, image: OCIImage) -> list[str]:
        """Why a vanilla cloud container may misbehave here (§4.1.3)."""
        gaps: list[str] = []
        if self.capabilities.namespacing != "full":
            if image.config.exposed_ports:
                gaps.append(
                    "image exposes service ports but no isolated network "
                    "namespace is created"
                )
            if image.config.required_uids:
                gaps.append(
                    "image expects multiple uids but only the invoking uid is mapped"
                )
        return gaps

    def __repr__(self) -> str:
        return f"<{type(self).__name__} on {self.node.name}>"
