"""Charliecloud (LANL): fully unprivileged containers.

No setuid anywhere: user namespaces only, rootfs as an extracted
directory (node-local) or a SquashFUSE mount.  No transparent conversion
or caching — ``ch-convert`` is explicit.  No hook framework; GPU and
library enablement are manual bind mounts (Tables 1–3, ref [24])."""

from __future__ import annotations

from repro.cluster.node import HostNode
from repro.engines.base import (
    ContainerEngine,
    EngineCapabilities,
    EngineError,
    EngineInfo,
    PulledImage,
    RunResult,
)
from repro.fs.drivers import MountedView, mount_bind
from repro.kernel.process import SimProcess
from repro.oci.bundle import BindMountSpec
from repro.oci.image import OCIImage
from repro.oci.squash import extract_cost, oci_to_squash


class CharliecloudEngine(ContainerEngine):
    info = EngineInfo(
        name="charliecloud",
        version="v0.33",
        champion="LANL",
        affiliation="-",
        default_runtime="charliecloud",
        implementation_language="C",
        contributors=31,
        docs_user="+++",
        docs_admin="+",
        docs_source="++",
        module_integration="no",
    )
    capabilities = EngineCapabilities(
        rootless=("UserNS",),
        rootless_fs=("Dir", "SquashFUSE"),
        monitor=None,
        oci_hooks="no",
        oci_container="partial",
        transparent_conversion=False,
        native_caching=False,
        native_sharing=False,
        namespacing="user+mount",
        signature_verification=(),
        encryption=False,
        gpu="manual",
        accelerators="manual",
        library_hookup="manual",
        wlm_integration="no",
        build_tool=False,
        daemonless=True,
        requires_setuid=False,
    )

    def __init__(self, node: HostNode, storage: str = "dir"):
        super().__init__(node)
        if storage not in ("dir", "squashfuse"):
            raise EngineError(f"charliecloud storage must be 'dir' or 'squashfuse', got {storage!r}")
        self.storage = storage
        self._manual_binds: list[BindMountSpec] = []

    def _prepare_rootfs(self, pulled: PulledImage, user: SimProcess, result: RunResult) -> MountedView:
        image = pulled.image
        if not isinstance(image, OCIImage):
            raise EngineError("charliecloud runs (converted) OCI images only")
        if self.storage == "dir":
            # ch-convert to a node-local directory: extraction cost every
            # time (no transparent cache), but native-speed IO afterwards
            # and no filesystem drivers at all (§4.1.2 workaround).
            tree = image.flatten()
            result.timings["extract"] = extract_cost(image)
            self.node.tmpfs.tree.attach(f"/ch/{image.digest[:19]}", tree.root)
            return mount_bind(tree, self.node.tmpfs.cost_model)
        # squashfuse path: user converts explicitly (ch-convert), so the
        # image is user-built — fine, the parser stays in userspace.
        squash, cost = oci_to_squash(image, built_by_uid=user.creds.uid)
        result.timings["convert"] = cost
        return self._squash_rootfs(squash, user, result, prefer_kernel_driver=False)

    def manual_bind(self, source_path: str, target_path: str) -> None:
        """`ch-run -b`: the manual GPU/library enablement route."""
        if not self.node.local_disk.tree.exists(source_path):
            raise EngineError(f"no such host path: {source_path}")
        self._manual_binds.append(
            BindMountSpec(
                source_tree=self.node.local_disk.tree,
                source_path=source_path,
                target_path=target_path,
            )
        )

    def _make_spec(self, pulled, command, user):
        spec = super()._make_spec(pulled, command, user)
        spec.bind_mounts.extend(self._manual_binds)
        return spec
