"""Docker: the cloud-industry baseline (Tables 1–3).

Per-machine root daemon (dockerd), full namespace isolation, overlay
rootfs from the layer store, Notary content trust, no transparent HPC
format conversion — included "as a baseline comparison and for the sake
of completeness" (§4).
"""

from __future__ import annotations

from repro.cluster.node import HostNode
from repro.engines.base import (
    ContainerEngine,
    EngineCapabilities,
    EngineError,
    EngineInfo,
    PulledImage,
    RunResult,
)
from repro.engines.monitor import DockerDaemon
from repro.fs.drivers import MountedView, mount_overlay
from repro.kernel.process import SimProcess
from repro.oci.builder import Builder
from repro.oci.image import OCIImage
from repro.signing.notary import NotaryService


class DockerEngine(ContainerEngine):
    info = EngineInfo(
        name="docker",
        version="v24.0.5",
        champion="Docker",
        affiliation="Docker",
        default_runtime="runc",
        implementation_language="Go",
        contributors=486,
        docs_user="+++",
        docs_admin="+",
        docs_source="+",
        module_integration="shpc",
    )
    capabilities = EngineCapabilities(
        rootless=("UserNS",),
        rootless_fs=("fuse-overlayfs",),
        monitor="per-machine (dockerd)",
        oci_hooks="yes",
        oci_container="yes",
        transparent_conversion=False,
        native_caching=False,
        native_sharing=False,
        namespacing="full",
        signature_verification=("notary",),
        encryption=False,
        gpu="hooks",
        accelerators="hooks",
        library_hookup="hooks",
        wlm_integration="no",
        build_tool=True,
        daemonless=False,
        requires_setuid=False,
    )

    def __init__(self, node: HostNode, content_trust: NotaryService | None = None):
        super().__init__(node)
        self.daemon = DockerDaemon(self.kernel)
        self.content_trust = content_trust
        self.builder = Builder()

    # -- daemon ----------------------------------------------------------------
    def start_daemon(self) -> None:
        self.daemon.start()

    def _pre_run_checks(self, pulled: PulledImage, user: SimProcess, result: RunResult) -> None:
        if not self.daemon.running:
            raise EngineError("dockerd is not running on this node")
        result.warn(
            "per-machine root daemon on a compute node: jitter, memory, and "
            "attack-surface cost (§3.2)"
        )
        if isinstance(pulled.image, OCIImage) and self.content_trust is not None:
            # DOCKER_CONTENT_TRUST: refuse unsigned tags.
            repo, _, tag = pulled.source_ref.partition(":")
            if not self.content_trust.verify_target(repo, tag or "latest", pulled.image.digest):
                raise EngineError(f"content trust: no valid signature for {pulled.source_ref}")

    def _container_owner(self, user: SimProcess) -> SimProcess:
        # Containers are children of the root daemon — the accounting
        # problem WLM integration scenarios have to solve (§6).
        assert self.daemon.proc is not None
        return self.daemon.proc

    def _monitor_overhead(self, user: SimProcess) -> float:
        return self.daemon.rpc_latency

    def _prepare_rootfs(self, pulled: PulledImage, user: SimProcess, result: RunResult) -> MountedView:
        image = pulled.image
        if not isinstance(image, OCIImage):
            raise EngineError(
                "docker runs plain OCI images only (no SIF support; encrypted "
                "images need extensions, Table 2)"
            )
        # Root daemon on a modern kernel: in-kernel overlay over the local
        # graph storage.
        layers = [layer.tree for layer in image.layers]
        result.timings["mount"] = 0.002
        return mount_overlay(layers, self.node.local_disk.cost_model, fuse=False, writable=True)

    def build(self, dockerfile: str, context=None) -> OCIImage:
        return self.builder.build_dockerfile(dockerfile, context=context)
