"""ENROOT (NVIDIA): chroot-with-extra-steps for GPU clusters.

Explicit import/create workflow (no transparent conversion), rootfs as
an unpacked directory, custom (non-OCI) hook scripts, NVIDIA-only GPU
support, Slurm integration via the pyxis SPANK plugin (Tables 1–3)."""

from __future__ import annotations

from repro.cluster.node import HostNode
from repro.engines.base import (
    ContainerEngine,
    EngineCapabilities,
    EngineError,
    EngineInfo,
    PulledImage,
    RunResult,
)
from repro.engines.hookup import make_gpu_hook
from repro.fs.drivers import MountedView, mount_bind
from repro.kernel.process import SimProcess
from repro.oci.image import OCIImage
from repro.oci.squash import extract_cost


class EnrootEngine(ContainerEngine):
    info = EngineInfo(
        name="enroot",
        version="v3.4.1",
        champion="Nvidia",
        affiliation="Nvidia",
        default_runtime="enroot",
        implementation_language="C, Bash",
        contributors=9,
        docs_user="N/A",
        docs_admin="N/A",
        docs_source="+",
        module_integration="no",
    )
    capabilities = EngineCapabilities(
        rootless=("UserNS",),
        rootless_fs=("Dir",),
        monitor=None,
        oci_hooks="custom",
        oci_container="partial",
        transparent_conversion=False,
        native_caching=False,
        native_sharing=False,
        namespacing="user+mount",
        signature_verification=(),
        encryption=False,
        gpu="nvidia-only",
        accelerators="custom-hooks",
        library_hookup="custom-hooks",
        wlm_integration="spank",
        build_tool=False,
        daemonless=True,
        requires_setuid=False,
    )

    def __init__(self, node: HostNode):
        super().__init__(node)
        #: explicitly imported images: name -> flattened tree + source
        self._imported: dict[str, tuple[OCIImage, object]] = {}

    # -- explicit workflow: enroot import + enroot create ---------------------------
    def import_image(self, name: str, image: OCIImage) -> float:
        """`enroot import`: flatten into a local .sqsh — explicit, not
        transparent, and not cached across re-imports (Table 2)."""
        tree = image.flatten()
        self._imported[name] = (image, tree)
        return extract_cost(image)

    def _prepare_rootfs(self, pulled: PulledImage, user: SimProcess, result: RunResult) -> MountedView:
        image = pulled.image
        if not isinstance(image, OCIImage):
            raise EngineError("enroot runs (imported) OCI images only")
        for name, (img, tree) in self._imported.items():
            if img.digest == image.digest:
                result.timings["extract"] = 0.001  # enroot create from .sqsh
                return mount_bind(tree, self.node.tmpfs.cost_model)
        raise EngineError(
            "image not imported; run import_image() first (enroot has no "
            "transparent conversion)"
        )

    def enable_gpu(self) -> None:
        """The libnvidia-container hook — NVIDIA devices only (Table 3)."""
        if not self.node.has_gpus:
            raise EngineError(f"node {self.node.name} has no GPUs")
        if any(gpu.vendor != "nvidia" for gpu in self.node.gpus):
            raise EngineError("enroot GPU support is NVIDIA-only (Table 3)")
        self.site_hooks.register(make_gpu_hook(self.node, strict_abi=False))
