"""Fakeroot mechanisms (§4.1.2).

Three ways to *pretend* to be root for image builds without being root:

- **LD_PRELOAD**: interpose libc calls — free, but "fails with static
  binaries" (the loader never runs).
- **ptrace**: intercept syscalls of the child — works on anything, but
  "introduces a significant performance penalty and the user requires
  access to the CAP_SYS_PTRACE capability".
- **subuid ranges** (namespace-based): a real uid range mapped via the
  newuidmap setuid helper — full multi-uid illusion at native speed,
  but needs /etc/subuid configuration.
"""

from __future__ import annotations

from repro.fs.tree import FileTree
from repro.kernel.credentials import Capability
from repro.kernel.errors import EPERM
from repro.kernel.namespaces import IdMapping, NamespaceKind
from repro.kernel.process import SimProcess
from repro.kernel.syscalls import Kernel
from repro.oci.shell import run_commands


class FakerootError(RuntimeError):
    pass


class _FakerootBase:
    name = "fakeroot"
    #: multiplicative slowdown on syscall-heavy work
    overhead_factor = 1.0

    def __init__(self, kernel: Kernel):
        self.kernel = kernel

    def build(self, user: SimProcess, script: str, baseline_cost: float = 1.0) -> tuple[FileTree, float]:
        """Run a build script appearing as root; returns (tree, cost)."""
        raise NotImplementedError


class LDPreloadFakeroot(_FakerootBase):
    """libfakeroot via LD_PRELOAD."""

    name = "ld_preload"
    overhead_factor = 1.15

    def build(self, user: SimProcess, script: str, baseline_cost: float = 1.0,
              uses_static_binaries: bool = False) -> tuple[FileTree, float]:
        if uses_static_binaries:
            raise FakerootError(
                "LD_PRELOAD fakeroot cannot interpose static binaries (§4.1.2)"
            )
        tree = FileTree()
        run_commands(tree, script, uid=0)  # files appear root-owned
        return tree, baseline_cost * self.overhead_factor


class PtraceFakeroot(_FakerootBase):
    """fakeroot-ng style syscall interception."""

    name = "ptrace"
    overhead_factor = 5.0

    def build(self, user: SimProcess, script: str, baseline_cost: float = 1.0,
              uses_static_binaries: bool = False) -> tuple[FileTree, float]:
        # The supervisor ptraces the build process: same-uid attach.
        supervisor = self.kernel.spawn(parent=user, argv=("fakeroot-ng",))
        build_proc = self.kernel.spawn(parent=user, argv=("sh", "-c", "build"))
        self.kernel.ptrace_attach(supervisor, build_proc)
        tree = FileTree()
        run_commands(tree, script, uid=0)
        return tree, baseline_cost * self.overhead_factor


class SubuidFakeroot(_FakerootBase):
    """Namespace fakeroot: subuid ranges written by newuidmap.

    Needs a privileged helper (CAP_SETUID in the parent namespace) and a
    configured /etc/subuid range for the user.
    """

    name = "subuid"
    overhead_factor = 1.0

    def __init__(self, kernel: Kernel, subuid_ranges: dict[int, tuple[int, int]] | None = None):
        super().__init__(kernel)
        #: uid -> (range start, count) from /etc/subuid
        self.subuid_ranges = subuid_ranges or {}

    def enter(self, user: SimProcess) -> SimProcess:
        """Put ``user``'s build process into a multi-uid userns."""
        entry = self.subuid_ranges.get(user.creds.uid)
        if entry is None:
            raise FakerootError(
                f"no /etc/subuid range for uid {user.creds.uid}"
            )
        start, count = entry
        build_proc = self.kernel.spawn(parent=user, argv=("build",))
        self.kernel.unshare(build_proc, [NamespaceKind.USER, NamespaceKind.MNT])
        helper = self.kernel.spawn(parent=self.kernel.init, argv=("newuidmap",))
        self.kernel.write_uid_map(
            build_proc.userns,
            [IdMapping(inside=0, outside=user.creds.uid),
             IdMapping(inside=1, outside=start, count=count)],
            writer=helper,
        )
        return build_proc

    def build(self, user: SimProcess, script: str, baseline_cost: float = 1.0,
              uses_static_binaries: bool = False) -> tuple[FileTree, float]:
        build_proc = self.enter(user)
        assert build_proc.userns.maps_multiple_uids()
        tree = FileTree()
        run_commands(tree, script, uid=0)
        return tree, baseline_cost * self.overhead_factor
