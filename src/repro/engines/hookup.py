"""GPU / accelerator / host-library enablement hooks (§4.1.6).

"Host library access can be enabled by bind-mounting host directories
into the container namespace, providing extra device nodes, or granting
extra capabilities ... When a container gains access to host libraries,
it requires a matching ABI, as a mismatch may introduce subtle errors.
Some solutions like Sarus therefore contain explicit ABI compatibility
checks."
"""

from __future__ import annotations

import typing as _t

from repro.cluster.node import HostNode
from repro.oci.bundle import BindMountSpec
from repro.oci.hooks import Hook, HookError, HookPoint


class ABIError(HookError):
    """Host library / container ABI mismatch."""


def check_driver_abi(host_driver_version: str, container_expects: str | None) -> None:
    """Major-version ABI check between host driver and container stack.

    ``container_expects`` comes from the image label
    ``com.repro.cuda_driver`` (None = no declared requirement: allowed,
    but this is exactly the silent-mismatch risk the paper warns about).
    """
    if container_expects is None:
        return
    host_major = host_driver_version.split(".", 1)[0]
    want_major = container_expects.split(".", 1)[0]
    if host_major != want_major:
        raise ABIError(
            f"container built against driver {container_expects}, host has "
            f"{host_driver_version}: ABI mismatch"
        )


def check_mpi_abi(host_flavor: str, container_flavor: str | None) -> None:
    """MPI library hookup needs matching ABIs; MPICH-ABI and OpenMPI are
    not interchangeable."""
    if container_flavor is None:
        return
    mpich_family = {"mpich", "cray-mpich", "intel-mpi", "mvapich"}
    host_is_mpich = host_flavor in mpich_family
    container_is_mpich = container_flavor in mpich_family
    if host_is_mpich != container_is_mpich:
        raise ABIError(
            f"host MPI {host_flavor!r} and container MPI {container_flavor!r} "
            "have incompatible ABIs"
        )


def make_gpu_hook(node: HostNode, strict_abi: bool = True) -> Hook:
    """An OCI createContainer hook exposing the node's GPUs.

    Bind-mounts the host driver libraries and exposes the device nodes;
    with ``strict_abi`` it refuses on driver-major mismatch (the Sarus
    behaviour)."""

    def gpu_hook(context: dict) -> None:
        if not node.gpus:
            raise HookError("gpu hook: node has no GPUs")
        container = context["container"]
        kernel = context["kernel"]
        proc = context["proc"]
        owner = context["owner"]
        image_config = container.bundle.spec  # env-based declaration below
        expects = container.bundle.spec.env.get("REPRO_CUDA_DRIVER")
        if strict_abi:
            check_driver_abi(node.gpus[0].driver_version, expects)
        # driver libraries from the host OS tree
        from repro.fs.tree import FileTree
        from repro.oci.runtime import OCIRuntime

        view = OCIRuntime._bind_view(node.local_disk.tree, "/usr/lib64")
        kernel.mount(proc, view, "/usr/lib64")
        container.mounts["/usr/lib64"] = view
        for gpu in node.gpus:
            kernel.expose_device(proc, gpu.device_node, by=owner)
        container.log(f"gpu hook: exposed {len(node.gpus)} GPU(s)")

    return Hook(name="gpu-enable", point=HookPoint.CREATE_CONTAINER, fn=gpu_hook, priority=30)


def make_mpi_hook(node: HostNode, host_flavor: str = "cray-mpich",
                  mpich_only: bool = False) -> Hook:
    """Bind the host MPI stack over the container's (§4.1.6 hookup).

    ``mpich_only`` models Shifter, whose hookup supports only MPICH-ABI
    containers (Table 3)."""

    def mpi_hook(context: dict) -> None:
        container = context["container"]
        kernel = context["kernel"]
        proc = context["proc"]
        flavor = container.bundle.spec.env.get("REPRO_MPI_FLAVOR")
        if mpich_only and flavor is not None and flavor not in (
            "mpich", "cray-mpich", "intel-mpi", "mvapich"
        ):
            raise ABIError(f"this engine's MPI hookup supports MPICH ABI only, image has {flavor!r}")
        check_mpi_abi(host_flavor, flavor)
        from repro.oci.runtime import OCIRuntime

        view = OCIRuntime._bind_view(node.local_disk.tree, "/opt/cray")
        kernel.mount(proc, view, "/opt/mpi-host")
        container.mounts["/opt/mpi-host"] = view
        container.log("mpi hook: host MPI bound at /opt/mpi-host")

    return Hook(name="mpi-hookup", point=HookPoint.CREATE_CONTAINER, fn=mpi_hook, priority=35)


def make_wlm_device_hook(granted_devices: _t.Iterable[str]) -> Hook:
    """WLM integration hook: pass the allocation's device grants down to
    the container owner (the WLM "controls device access rights, which
    must be passed along to the container engine", §4.1.6)."""

    devices = tuple(granted_devices)

    def wlm_hook(context: dict) -> None:
        kernel = context["kernel"]
        owner = context["owner"]
        for device in devices:
            kernel.grant_device(owner, device)
        context["container"].log(f"wlm hook: granted {devices}")

    return Hook(name="wlm-devices", point=HookPoint.CREATE_RUNTIME, fn=wlm_hook, priority=10)
