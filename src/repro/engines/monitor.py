"""Container monitors: per-machine daemons vs per-container monitors.

§3.2: "Spinning up a daemon on each compute node to control what is most
often a single container process is wasteful and may introduce extra
jitter, and increases the attack surface"; "a monitoring process ... must
run as the same user starting the process."
"""

from __future__ import annotations

from repro.kernel.process import SimProcess
from repro.kernel.syscalls import Kernel
from repro.obs import metrics as _metrics


class DockerDaemon:
    """A per-machine root daemon (dockerd).

    Runs as root in the initial namespaces; every container request is an
    RPC to it, and containers are its children — which is exactly why WLM
    accounting and per-user attribution break (§4.1.6), and why HPC sites
    reject the model.
    """

    #: RPC round trip from CLI to daemon
    rpc_latency = 4e-3
    #: resident memory per daemon — wasted on every compute node
    resident_memory = 150 * 2**20
    #: OS jitter the daemon introduces (fraction of a core consumed)
    background_cpu_fraction = 0.002

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.proc: SimProcess | None = None

    def start(self) -> SimProcess:
        if self.proc is None:
            # dockerd must be root: it manages storage drivers and netns.
            self.proc = self.kernel.spawn(parent=self.kernel.init, argv=("dockerd",))
            if _metrics.registry.enabled:
                # §3.2's jitter claim, made checkable: a per-machine root
                # daemon consumes a nonzero core fraction at steady state.
                _metrics.set_gauge(
                    "monitor.background_cpu_fraction",
                    self.background_cpu_fraction,
                    monitor="dockerd",
                )
                _metrics.set_gauge(
                    "monitor.resident_memory_bytes",
                    self.resident_memory,
                    monitor="dockerd",
                )
        return self.proc

    @property
    def running(self) -> bool:
        return self.proc is not None

    @property
    def runs_as_root(self) -> bool:
        return self.proc is not None and self.proc.creds.is_root


class ConmonMonitor:
    """A per-container monitor (conmon), spawned by the engine as the
    *same user* that starts the container — the HPC-acceptable model."""

    #: one-off spawn cost per container
    spawn_cost = 1.5e-3
    resident_memory = 2 * 2**20
    #: a per-container monitor sleeps between container exits: no
    #: steady-state OS jitter, unlike the per-machine daemon (§3.2)
    background_cpu_fraction = 0.0

    def __init__(self, kernel: Kernel, user: SimProcess):
        self.kernel = kernel
        self.proc = kernel.spawn(parent=user, argv=("conmon",))
        assert self.proc.creds.uid == user.creds.uid
        if _metrics.registry.enabled:
            _metrics.set_gauge(
                "monitor.background_cpu_fraction",
                self.background_cpu_fraction,
                monitor="conmon",
            )
            _metrics.set_gauge(
                "monitor.resident_memory_bytes",
                self.resident_memory,
                monitor="conmon",
            )

    @property
    def runs_as_user(self) -> bool:
        return not self.proc.creds.is_root
