"""Podman and Podman-HPC.

Podman: daemonless, per-container conmon monitor, rootless via user
namespaces with fuse-overlayfs, GPG/sigstore verification, encrypted
container support, SIF execution support (§4.1.4).

Podman-HPC (NERSC): a thin wrapper adding the HPC tricks — transparent
squash conversion with caching, SquashFUSE+fuse-overlayfs rootfs, GPU
enablement, and MPI library hookup (Tables 1–3).
"""

from __future__ import annotations

from repro.cluster.node import HostNode
from repro.engines.base import (
    ContainerEngine,
    EngineCapabilities,
    EngineError,
    EngineInfo,
    PulledImage,
    RunResult,
)
from repro.engines.hookup import make_gpu_hook, make_mpi_hook
from repro.engines.monitor import ConmonMonitor
from repro.fs.drivers import MountedView, mount_overlay, mount_squash
from repro.fs.tree import FileTree
from repro.kernel.process import SimProcess
from repro.oci.builder import Builder
from repro.oci.image import OCIImage
from repro.oci.sif import SIFImage
from repro.oci.squash import oci_to_squash
from repro.signing.gpg import GPGKeyring
from repro.signing.keys import KeyPair, SignatureError


class PodmanEngine(ContainerEngine):
    info = EngineInfo(
        name="podman",
        version="v4.6.1",
        champion="RedHat/IBM",
        affiliation="Kubernetes",
        default_runtime="crun",
        implementation_language="Go",
        contributors=461,
        docs_user="+",
        docs_admin="N/A",
        docs_source="++",
        module_integration="shpc",
    )
    capabilities = EngineCapabilities(
        rootless=("UserNS",),
        rootless_fs=("fuse-overlayfs",),
        monitor="per-container (conmon)",
        oci_hooks="yes",
        oci_container="yes",
        transparent_conversion=False,
        native_caching=False,
        native_sharing=False,
        namespacing="full",
        signature_verification=("gpg", "sigstore"),
        encryption=True,
        gpu="hooks",
        accelerators="hooks",
        library_hookup="hooks",
        wlm_integration="no",
        build_tool=True,
        daemonless=True,
        requires_setuid=False,
    )

    def __init__(self, node: HostNode, keyring: GPGKeyring | None = None):
        super().__init__(node)
        self.keyring = keyring
        self.builder = Builder()
        self.monitors: list[ConmonMonitor] = []

    def _monitor_overhead(self, user: SimProcess) -> float:
        monitor = ConmonMonitor(self.kernel, user)
        self.monitors.append(monitor)
        return monitor.spawn_cost

    def _prepare_rootfs(self, pulled: PulledImage, user: SimProcess, result: RunResult) -> MountedView:
        image = pulled.image
        if isinstance(image, SIFImage):
            # Podman runs SIF directly (§4.1.4), rootless via SquashFUSE.
            tree = image.readable_tree()  # raises if still encrypted
            result.timings["mount"] = 0.003
            return mount_squash(image.squash, fuse=True)
        assert isinstance(image, OCIImage)
        layers = [layer.tree for layer in image.layers]
        result.timings["mount"] = 0.003
        # Rootless default data path: fuse-overlayfs (Table 1).
        return mount_overlay(layers, self.node.local_disk.cost_model, fuse=True, writable=True)

    # -- encryption (ocicrypt / SIF) -----------------------------------------------
    def run(self, pulled, user, decryption_key: KeyPair | None = None, **kwargs):
        from repro.oci.encryption import EncryptedOCIImage

        image = pulled.image if isinstance(pulled, PulledImage) else pulled
        if isinstance(image, SIFImage) and image.encrypted:
            if decryption_key is None:
                raise EngineError("image is encrypted; supply decryption_key")
            image.decrypt(decryption_key)
        elif isinstance(image, EncryptedOCIImage):
            # ocicrypt: decrypt layers at run time (Table 2: encryption yes)
            if decryption_key is None:
                raise EngineError("image is ocicrypt-encrypted; supply decryption_key")
            plain = image.decrypt(decryption_key)
            if isinstance(pulled, PulledImage):
                pulled = PulledImage(source_ref=pulled.source_ref, image=plain,
                                     pull_cost=pulled.pull_cost)
            else:
                pulled = plain
        return super().run(pulled, user, **kwargs)

    # -- signing -----------------------------------------------------------------------
    def verify_image(self, image: OCIImage, signature) -> str:
        if self.keyring is None:
            raise EngineError("no keyring configured (podman image trust)")
        return self.keyring.verify_detached(image.digest.encode(), signature)

    def build(self, dockerfile: str, context=None) -> OCIImage:
        return self.builder.build_dockerfile(dockerfile, context=context)


class PodmanHPCEngine(PodmanEngine):
    info = EngineInfo(
        name="podman-hpc",
        version="v1.0.2",
        champion="NERSC",
        affiliation="-",
        default_runtime="crun",
        implementation_language="Python, C",
        contributors=3,
        docs_user="N/A",
        docs_admin="N/A",
        docs_source="(+)",
        module_integration="(shpc)",
    )
    capabilities = EngineCapabilities(
        rootless=("UserNS",),
        rootless_fs=("SquashFUSE", "fuse-overlayfs"),
        monitor="per-container (conmon)",
        oci_hooks="yes",
        oci_container="yes",
        transparent_conversion=True,
        native_caching=True,
        native_sharing=False,
        namespacing="full/user+mount",
        signature_verification=("gpg", "sigstore"),
        encryption=True,
        gpu="yes",
        accelerators="hooks-or-patch",
        library_hookup="yes",
        wlm_integration="no",
        build_tool=True,
        daemonless=True,
        requires_setuid=False,
    )

    def _namespace_request(self):
        from repro.oci.bundle import NamespaceRequest

        # "full/user and mount NS": HPC-minimal by default on compute nodes.
        return NamespaceRequest.hpc_minimal()

    def _prepare_rootfs(self, pulled: PulledImage, user: SimProcess, result: RunResult) -> MountedView:
        image = pulled.image
        if isinstance(image, SIFImage):
            return super()._prepare_rootfs(pulled, user, result)
        assert isinstance(image, OCIImage)
        # Transparent conversion to a single squash file, cached per user
        # (intercepting layer unpacking, §4.1.9).
        squash = self._cache_lookup(image.digest, user.creds.uid)
        if squash is None:
            squash, cost = oci_to_squash(image, built_by_uid=user.creds.uid)
            self._cache_store(image.digest, squash, user.creds.uid)
            self.stats["conversions"] += 1
            result.timings["convert"] = cost
        result.timings["mount"] = 0.004
        # SquashFUSE base + fuse-overlay writable upper (Table 1).
        base = mount_squash(squash, fuse=True)
        return mount_overlay(
            [base.layers[0]], base.cost_model, fuse=True, writable=True
        )

    # -- built-in HPC enablement (no external hooks needed) ---------------------------
    def enable_gpu(self) -> None:
        if not self.node.has_gpus:
            raise EngineError(f"node {self.node.name} has no GPUs")
        self.site_hooks.register(make_gpu_hook(self.node, strict_abi=False))

    def enable_mpi(self) -> None:
        self.site_hooks.register(make_mpi_hook(self.node))
