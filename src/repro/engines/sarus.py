"""Sarus (CSCS): OCI-compliant HPC engine.

Transparent conversion to squash images in a root-owned, *shared* store,
setuid kernel-driver mounts, full OCI hook support (GPU via hooks with
explicit ABI checks), runc underneath (Tables 1–3, ref [23])."""

from __future__ import annotations

from repro.cluster.node import HostNode
from repro.engines.base import (
    ContainerEngine,
    EngineCapabilities,
    EngineError,
    EngineInfo,
    PulledImage,
    RunResult,
)
from repro.engines.hookup import make_gpu_hook, make_mpi_hook
from repro.fs.drivers import MountedView
from repro.kernel.process import SimProcess
from repro.oci.image import OCIImage
from repro.oci.squash import oci_to_squash


class SarusEngine(ContainerEngine):
    info = EngineInfo(
        name="sarus",
        version="v1.6.0",
        champion="CSCS",
        affiliation="-",
        default_runtime="runc",
        implementation_language="C++",
        contributors=6,
        docs_user="++",
        docs_admin="++",
        docs_source="+",
        module_integration="shpc-announced",
    )
    capabilities = EngineCapabilities(
        rootless=("UserNS",),
        rootless_fs=("suid",),
        monitor=None,
        oci_hooks="yes",
        oci_container="partial",
        transparent_conversion=True,
        native_caching=True,
        native_sharing=True,
        namespacing="user+mount",
        signature_verification=(),
        encryption=False,
        gpu="yes",
        accelerators="hooks",
        library_hookup="yes",
        wlm_integration="partial-hooks",
        build_tool=False,
        daemonless=True,
        requires_setuid=True,
    )

    def __init__(self, node: HostNode):
        super().__init__(node)
        if not self.kernel.config.allow_setuid_binaries:
            raise EngineError(
                "sarus requires its setuid mount helper; site policy forbids it"
            )

    def _prepare_rootfs(self, pulled: PulledImage, user: SimProcess, result: RunResult) -> MountedView:
        image = pulled.image
        if not isinstance(image, OCIImage):
            raise EngineError("sarus runs (converted) OCI images only")
        squash = self._cache_lookup(image.digest, user.creds.uid)
        if squash is None:
            # Central root-owned store: conversion shared between users
            # (Table 2: native format sharing "yes").
            squash, cost = oci_to_squash(image, built_by_uid=0)
            self._cache_store(image.digest, squash, 0)
            self.stats["conversions"] += 1
            result.timings["convert"] = cost
        return self._squash_rootfs(squash, user, result, prefer_kernel_driver=True)

    # -- built-in hooks with explicit ABI checks (§4.1.6) -------------------------
    def enable_gpu(self) -> None:
        if not self.node.has_gpus:
            raise EngineError(f"node {self.node.name} has no GPUs")
        self.site_hooks.register(make_gpu_hook(self.node, strict_abi=True))

    def enable_mpi(self, host_flavor: str = "cray-mpich") -> None:
        self.site_hooks.register(make_mpi_hook(self.node, host_flavor=host_flavor))
