"""Shifter (NERSC): the original HPC container runtime.

Image-gateway service converts OCI images to flat filesystem images in a
root-owned cache; a setuid helper mounts them via the in-kernel driver.
No OCI hook support (scripted extension instead), MPICH-only library
hookup, Slurm integration via a SPANK plugin (Tables 1–3).
"""

from __future__ import annotations

from repro.cluster.node import HostNode
from repro.engines.base import (
    ContainerEngine,
    EngineCapabilities,
    EngineError,
    EngineInfo,
    PulledImage,
    RunResult,
)
from repro.engines.hookup import check_mpi_abi, ABIError
from repro.fs.drivers import MountedView
from repro.kernel.process import SimProcess
from repro.oci.bundle import BindMountSpec
from repro.oci.image import OCIImage
from repro.oci.squash import oci_to_squash


class ShifterEngine(ContainerEngine):
    info = EngineInfo(
        name="shifter",
        version="git-0784ae5",
        champion="NERSC",
        affiliation="-",
        default_runtime="shifter",
        implementation_language="C",
        contributors=17,
        docs_user="+",
        docs_admin="+",
        docs_source="++",
        module_integration="shpc-announced",
    )
    capabilities = EngineCapabilities(
        rootless=("UserNS",),
        rootless_fs=("suid",),
        monitor=None,
        oci_hooks="no",
        oci_container="partial",
        transparent_conversion=True,
        native_caching=True,
        native_sharing=False,
        namespacing="user+mount",
        signature_verification=(),
        encryption=False,
        gpu="no",
        accelerators="no",
        library_hookup="mpich",
        wlm_integration="spank",
        build_tool=False,
        daemonless=True,
        requires_setuid=True,
    )

    def __init__(self, node: HostNode):
        super().__init__(node)
        if not self.kernel.config.allow_setuid_binaries:
            raise EngineError(
                "shifter requires its setuid helper; site policy forbids "
                "setuid binaries on compute nodes"
            )
        self._mpi_enabled = False

    def _prepare_rootfs(self, pulled: PulledImage, user: SimProcess, result: RunResult) -> MountedView:
        image = pulled.image
        if not isinstance(image, OCIImage):
            raise EngineError("shifter runs (converted) OCI images only")
        squash = self._cache_lookup(image.digest, user.creds.uid)
        if squash is None:
            # The image gateway converts as a system service: the cache is
            # root-owned, which is what makes the kernel driver safe.
            squash, cost = oci_to_squash(image, built_by_uid=0)
            self._cache_store(image.digest, squash, 0)
            self.stats["conversions"] += 1
            result.timings["convert"] = cost
        return self._squash_rootfs(squash, user, result, prefer_kernel_driver=True)

    def enable_mpi(self) -> None:
        """udiRoot MPICH hookup (the only library hookup Shifter has)."""
        self._mpi_enabled = True

    def _make_spec(self, pulled, command, user):
        spec = super()._make_spec(pulled, command, user)
        if self._mpi_enabled:
            flavor = spec.env.get("REPRO_MPI_FLAVOR")
            if flavor is not None and flavor not in ("mpich", "cray-mpich", "intel-mpi", "mvapich"):
                raise ABIError(
                    f"shifter's library hookup supports MPICH ABI only, image has {flavor!r}"
                )
            check_mpi_abi("cray-mpich", flavor)
            spec.bind_mounts.append(
                BindMountSpec(
                    source_tree=self.node.local_disk.tree,
                    source_path="/opt/cray",
                    target_path="/opt/udiImage/mpi",
                )
            )
        return spec
