"""The Singularity family: Apptainer and SingularityCE.

Native flat SIF images with transparent OCI conversion and shareable
caches, GPG signing embedded in the SIF, encryption via the kernel
driver (suid path only), setuid *or* fully rootless operation, fakeroot
builds via subuid ranges, built-in GPU enablement (`--nv`), and
manual/root-only hook installation (Tables 1–3, §4.1.1).
"""

from __future__ import annotations

import dataclasses

from repro.cluster.node import HostNode
from repro.engines.base import (
    ContainerEngine,
    EngineCapabilities,
    EngineError,
    EngineInfo,
    PulledImage,
    RunResult,
)
from repro.engines.fakeroot import SubuidFakeroot
from repro.fs.drivers import MountedView
from repro.kernel.process import SimProcess
from repro.oci.builder import Builder
from repro.oci.bundle import BindMountSpec
from repro.oci.image import OCIImage
from repro.oci.sif import SIFImage
from repro.oci.squash import extract_cost
from repro.registry.distribution import OCIDistributionRegistry
from repro.signing.gpg import GPGKeyring
from repro.signing.keys import KeyPair


class _SingularityBase(ContainerEngine):
    """Shared behaviour of Apptainer and SingularityCE."""

    #: operate via the setuid starter (kernel squash driver) when the site
    #: allows it; rootless mode falls back to SquashFUSE
    suid_mode = True

    def __init__(self, node: HostNode, keyring: GPGKeyring | None = None,
                 subuid_ranges: dict[int, tuple[int, int]] | None = None):
        super().__init__(node)
        self.keyring = keyring
        self.builder = Builder()
        self.fakeroot = SubuidFakeroot(self.kernel, subuid_ranges or {})
        self._hooks_enabled_by_root = False

    # -- pull: transparent OCI -> SIF conversion, cached & shareable -----------------
    def pull(self, repository: str, tag: str, registry: OCIDistributionRegistry,
             token: str | None = None, now: float = 0.0, ip: str = "10.0.0.1",
             user_uid: int = 1000) -> PulledImage:
        self.stats["pulls"] += 1
        oci, cost = registry.pull_image(
            repository, tag, token=token, ip=ip, now=now, have_digests=set(self.layer_cache)
        )
        cached = self._cache_lookup(oci.digest, user_uid)
        if cached is not None:
            return PulledImage(source_ref=f"{repository}:{tag}", image=cached,
                               pull_cost=0.0, from_cache=True)
        for layer in oci.layers:
            self.layer_cache[layer.digest] = layer
        sif = SIFImage(oci.flatten(), dataclasses.replace(oci.config),
                       definition=f"bootstrap: docker\nfrom: {repository}:{tag}",
                       built_by_uid=user_uid)
        convert_cost = extract_cost(oci) + sif.squash.pack_cost()
        self._cache_store(oci.digest, sif, user_uid)
        self.stats["conversions"] += 1
        return PulledImage(source_ref=f"{repository}:{tag}", image=sif,
                           pull_cost=cost + convert_cost)

    # -- build ------------------------------------------------------------------------
    def build(self, definition: str, user: SimProcess | None = None,
              fakeroot: bool = False) -> SIFImage:
        uid = user.creds.uid if user is not None else 0
        if fakeroot:
            assert user is not None
            self.fakeroot.enter(user)  # raises without a subuid range
        return self.builder.build_definition(definition, build_uid=uid)

    # -- run ---------------------------------------------------------------------------
    def run(self, pulled, user, decryption_key: KeyPair | None = None, **kwargs):
        image = pulled.image if isinstance(pulled, PulledImage) else pulled
        if isinstance(image, SIFImage) and image.encrypted:
            if not (self.suid_mode and self.kernel.config.allow_setuid_binaries):
                raise EngineError(
                    "encrypted SIF needs the kernel driver (setuid starter); "
                    "unavailable in rootless mode (Table 2)"
                )
            if decryption_key is None:
                raise EngineError("image is encrypted; supply decryption_key")
            image.decrypt(decryption_key)
        return super().run(pulled, user, **kwargs)

    def _prepare_rootfs(self, pulled: PulledImage, user: SimProcess, result: RunResult) -> MountedView:
        image = pulled.image
        if isinstance(image, OCIImage):
            # `singularity run docker://...` without pull: convert on the fly.
            sif = SIFImage(image.flatten(), dataclasses.replace(image.config),
                           built_by_uid=user.creds.uid)
            result.timings["convert"] = extract_cost(image) + sif.squash.pack_cost()
            image = sif
        assert isinstance(image, SIFImage)
        if self.verify_policy_keyring is not None:
            self._enforce_signature_policy(image, result)
        # The celebrated compromise: the setuid starter will happily mount
        # a user-built SIF via the kernel driver ("if one is willing to
        # compromise on security", §7) — strict_provenance=False + warning.
        return self._squash_rootfs(
            image.squash, user, result,
            prefer_kernel_driver=self.suid_mode,
            strict_provenance=False,
        )

    # -- signing ------------------------------------------------------------------------
    verify_policy_keyring: GPGKeyring | None = None

    def sign(self, image: SIFImage, key: KeyPair):
        return image.sign(key)

    def verify(self, image: SIFImage, key: KeyPair) -> bool:
        return image.verify(key)

    def _enforce_signature_policy(self, image: SIFImage, result: RunResult) -> None:
        if not image.signatures:
            if image.definition.startswith("bootstrap: docker"):
                # imported OCI content: signatures are NOT verified (§4.1.5)
                result.warn(
                    "image imported from OCI: no SIF signature to verify (§4.1.5)"
                )
                return
            raise EngineError("signature policy: unsigned SIF rejected")

    # -- GPU: built-in --nv flag (no hooks involved) ------------------------------------------
    _gpu_requested = False

    def enable_gpu(self) -> None:
        if not self.node.has_gpus:
            raise EngineError(f"node {self.node.name} has no GPUs")
        self._gpu_requested = True

    def _make_spec(self, pulled, command, user):
        spec = super()._make_spec(pulled, command, user)
        if self._gpu_requested:
            spec.bind_mounts.append(
                BindMountSpec(
                    source_tree=self.node.local_disk.tree,
                    source_path="/usr/lib64",
                    target_path="/.singularity.d/libs",
                )
            )
            spec.devices = tuple(
                set(spec.devices) | {gpu.device_node for gpu in self.node.gpus}
            )
        return spec

    # -- hooks: "manually, requires root" (Table 1) ------------------------------------------
    def enable_hooks(self, by: SimProcess) -> None:
        if not by.creds.is_root:
            raise EngineError("installing hooks requires root (Table 1: 'manually, requires root')")
        self._hooks_enabled_by_root = True

    def _pre_run_checks(self, pulled, user, result):
        if len(self.site_hooks) and not self._hooks_enabled_by_root:
            raise EngineError("hooks present but not enabled by root")


class ApptainerEngine(_SingularityBase):
    info = EngineInfo(
        name="apptainer",
        version="v1.2.2",
        champion="LLNL, CIQ",
        affiliation="Linux Foundation",
        default_runtime="runc",
        implementation_language="Go",
        contributors=148,
        docs_user="++",
        docs_admin="+",
        docs_source="+",
        module_integration="shpc",
    )
    capabilities = EngineCapabilities(
        rootless=("UserNS", "fakeroot"),
        rootless_fs=("suid", "fakeroot", "SquashFUSE"),
        monitor="per-container (conmon)",
        oci_hooks="manual",
        oci_container="partial",
        transparent_conversion=True,
        native_caching=True,
        native_sharing=True,
        namespacing="user+mount",
        signature_verification=("gpg",),
        encryption=True,
        gpu="yes",
        accelerators="no",
        library_hookup="manual",
        wlm_integration="no",
        build_tool=True,
        daemonless=True,
        requires_setuid=False,  # suid optional since the non-setuid rework [28]
    )


class SingularityCEEngine(_SingularityBase):
    info = EngineInfo(
        name="singularity-ce",
        version="v3.11.4",
        champion="Sylabs",
        affiliation="-",
        default_runtime="crun",
        implementation_language="Go",
        contributors=130,
        docs_user="++",
        docs_admin="N/A",
        docs_source="+",
        module_integration="shpc",
    )
    capabilities = EngineCapabilities(
        rootless=("UserNS", "fakeroot"),
        rootless_fs=("suid", "fakeroot", "SquashFUSE"),
        monitor="per-container (conmon)",
        oci_hooks="manual",
        oci_container="partial",
        transparent_conversion=True,
        native_caching=True,
        native_sharing=True,
        namespacing="user+mount",
        signature_verification=("gpg",),
        encryption=True,
        gpu="yes",
        accelerators="no",
        library_hookup="manual",
        wlm_integration="no",
        build_tool=True,
        daemonless=True,
        requires_setuid=False,
    )
