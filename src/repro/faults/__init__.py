"""Deterministic fault injection over the simulated stack.

The paper's §3.2 requirements and §4.1.2 security discussion assert how
HPC container stacks must behave when things go wrong — registries
throttle, shared filesystems degrade, nodes die, FUSE daemons vanish,
hooks fail.  This package makes those failure scenarios first-class and
*deterministic*: a seeded :class:`FaultPlan` schedules faults in virtual
time, the process-wide :data:`injector` delivers them at named injection
points wired through ``repro.registry``, ``repro.fs``, ``repro.engines``,
``repro.wlm``, and ``repro.k8s``, and explicit recovery policies
(:class:`RetryPolicy` backoff, Slurm requeue, kubelet failure
propagation, engine cleanup guarantees) absorb them.  Same seed, same
plan → byte-identical traces and outcomes.

See ``ARCHITECTURE.md`` for the layer map and ``EXPERIMENTS.md`` ("Failure
semantics") for the per-fault recovery contracts and repro commands.
"""

from repro.faults.injector import FaultInjector, injector
from repro.faults.plan import KIND_POINTS, FaultEvent, FaultKind, FaultPlan
from repro.faults.retry import RetryExhausted, RetryPolicy

#: exports resolved lazily: chaos/leaks import the scenario and runtime
#: layers, which themselves consult the injector — a module-level import
#: here would close that cycle during package initialization.
_LAZY = {
    "ChaosReport": "repro.faults.chaos",
    "run_chaos": "repro.faults.chaos",
    "run_slo": "repro.faults.chaos",
    "container_leaks": "repro.faults.leaks",
    "find_leaks": "repro.faults.leaks",
    "kubelet_leaks": "repro.faults.leaks",
    "mount_leaks": "repro.faults.leaks",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "ChaosReport",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "KIND_POINTS",
    "RetryExhausted",
    "RetryPolicy",
    "container_leaks",
    "find_leaks",
    "injector",
    "kubelet_leaks",
    "mount_leaks",
    "run_chaos",
    "run_slo",
]
