"""Chaos runs: one scenario executed under a fault plan.

:func:`run_chaos` is the library entry point behind
``python -m repro chaos``: it arms the process-wide injector with a
plan, provisions and drives a §6 scenario exactly like
:func:`repro.scenarios.evaluate.run_scenario`, then disarms and reports
what the faults did — injections by kind, retries, job requeues, pod
outcomes, and the leak audit.  Everything in the report is a pure
function of ``(scenario, plan, seed)``, so two runs agree byte for byte.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.faults.injector import injector
from repro.faults.leaks import find_leaks
from repro.faults.plan import FaultPlan
from repro.obs import metrics as _metrics
from repro.obs import timeseries as _timeseries
from repro.obs import trace as _trace
from repro.scenarios.base import WORKFLOW_IMAGE, IntegrationScenario, ScenarioMetrics
from repro.sim import Environment
from repro.workload.generators import PodBatchGenerator

if _t.TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.slo import SloEvaluation, SloRuleSet


@dataclasses.dataclass
class ChaosReport:
    """What a fault plan did to one scenario run."""

    scenario: str
    seed: int
    n_events: int
    injected: dict[str, int]
    retries: dict[str, int]
    jobs_requeued: int
    pods_submitted: int
    pods_completed: int
    pods_failed: int
    leaks: list[str]
    end_time: float
    #: SLO alerts that fired over the sampled series (0 when the
    #: time-series recorder was off for the run)
    alerts_fired: int = 0
    #: fault kind -> virtual seconds from first injection to the first
    #: alert fire at/after it; None = injected but never detected
    detection: dict[str, float | None] = dataclasses.field(default_factory=dict)
    #: the full SLO evaluation (alerts + breach windows) for scorecard
    #: builders; excluded from equality and serialization
    evaluation: "SloEvaluation | None" = dataclasses.field(
        default=None, repr=False, compare=False
    )

    @property
    def clean(self) -> bool:
        return not self.leaks

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready dict with schema-stable key order.

        Top-level keys follow the field declaration order above (plus
        the derived ``clean``); the ``injected``/``retries`` maps are
        emitted sorted by kind so two equal reports serialize to
        byte-identical JSON regardless of injection order.
        """
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "plan_events": self.n_events,
            "injected": dict(sorted(self.injected.items())),
            "retries": dict(sorted(self.retries.items())),
            "jobs_requeued": self.jobs_requeued,
            "pods_submitted": self.pods_submitted,
            "pods_completed": self.pods_completed,
            "pods_failed": self.pods_failed,
            "leaks": list(self.leaks),
            "end_time": self.end_time,
            "alerts_fired": self.alerts_fired,
            "detection": dict(sorted(self.detection.items())),
            "clean": self.clean,
        }

    def render(self) -> str:
        lines = [
            f"chaos: {self.scenario} seed={self.seed} "
            f"plan={self.n_events} event(s), ended at t={self.end_time:.1f}s",
        ]
        if self.injected:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items()))
            lines.append(f"  faults injected: {parts}")
        else:
            lines.append("  faults injected: none")
        if self.retries:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.retries.items()))
            lines.append(f"  retry attempts:  {parts}")
        lines.append(f"  jobs requeued:   {self.jobs_requeued}")
        lines.append(
            f"  pods:            {self.pods_completed} completed, "
            f"{self.pods_failed} failed, {self.pods_submitted} submitted"
        )
        if self.detection:
            parts = ", ".join(
                f"{k}={v:.6g}s" if v is not None else f"{k}=undetected"
                for k, v in sorted(self.detection.items())
            )
            lines.append(f"  alerts fired:    {self.alerts_fired}")
            lines.append(f"  detection:       {parts}")
        if self.leaks:
            lines.append(f"  LEAKS ({len(self.leaks)}):")
            lines.extend(f"    - {leak}" for leak in self.leaks)
        else:
            lines.append("  leaks:           none (no lingering containers/mounts)")
        return "\n".join(lines)


def chaos_report_document(
    reports: _t.Sequence[ChaosReport], scenario: str
) -> dict[str, object]:
    """The ``--out report.json`` document: per-seed reports + aggregate.

    Works for a single run (one report) and for seed sweeps alike; key
    order is schema-stable (fixed top-level order, sorted fault kinds,
    reports in seed order as given), so serial and sharded sweeps — and
    repeated runs — serialize byte-identically.
    """
    injected: dict[str, int] = {}
    retries: dict[str, int] = {}
    for report in reports:
        for kind, count in report.injected.items():
            injected[kind] = injected.get(kind, 0) + count
        for kind, count in report.retries.items():
            retries[kind] = retries.get(kind, 0) + count
    # detection roll-up: of the runs a kind was injected in, how many
    # produced an alert at/after it, and the mean latency of those
    detection: dict[str, object] = {}
    for kind in sorted({k for r in reports for k in r.detection}):
        latencies = [
            r.detection[kind] for r in reports if r.detection.get(kind) is not None
        ]
        detection[kind] = {
            "detected": len(latencies),
            "of": sum(1 for r in reports if kind in r.detection),
            "mean_latency": (
                round(sum(latencies) / len(latencies), 6) if latencies else None
            ),
        }
    return {
        "schema": "repro-chaos-report/2",
        "scenario": scenario,
        "seeds": [report.seed for report in reports],
        "reports": [report.to_dict() for report in reports],
        "aggregate": {
            "runs": len(reports),
            "injected": dict(sorted(injected.items())),
            "retries": dict(sorted(retries.items())),
            "jobs_requeued": sum(r.jobs_requeued for r in reports),
            "pods_submitted": sum(r.pods_submitted for r in reports),
            "pods_completed": sum(r.pods_completed for r in reports),
            "pods_failed": sum(r.pods_failed for r in reports),
            "leaks": sum(len(r.leaks) for r in reports),
            "alerts_fired": sum(r.alerts_fired for r in reports),
            "detection": detection,
            "clean": all(r.clean for r in reports),
        },
    }


def _count_requeues(scenario: object) -> int:
    wlm = getattr(scenario, "wlm", None)
    if wlm is None:
        return 0
    jobs = getattr(wlm, "_jobs", {})
    return sum(getattr(job, "requeue_count", 0) for job in jobs.values())


def run_chaos(
    scenario_cls: type[IntegrationScenario],
    plan: FaultPlan,
    n_nodes: int = 4,
    n_pods: int = 8,
    seed: int = 0,
    horizon: float = 4000.0,
    slo: "SloRuleSet | None" = None,
) -> tuple[ScenarioMetrics, ChaosReport]:
    """Provision, submit the standard pod batch, run to the horizon —
    all under ``plan`` — then audit and report.

    The injector is armed for the whole scenario lifetime (faults may
    hit provisioning too) and always disarmed on the way out, even if
    the scenario run raises.

    When the :mod:`repro.obs.timeseries` recorder is enabled, a sampler
    process ticks through the run, the ``slo`` rules (default:
    :func:`~repro.obs.slo.default_chaos_rules`) are evaluated over the
    sampled series, alert fire/resolve instants land in the trace, and
    the report gains per-fault-kind detection latency.
    """
    env = Environment()
    injector.arm(plan, env)
    rec = _timeseries.recorder
    if rec.enabled:
        _timeseries.install_sampler(env, _metrics.registry)
    try:
        scenario = scenario_cls(env, n_nodes=n_nodes, seed=seed)
        ready = scenario.provision()
        env.run(until=ready)
        generator = PodBatchGenerator(WORKFLOW_IMAGE, seed=seed)
        pods = generator.batch(n_pods)
        scenario.submit(pods)
        env.run(until=horizon)
        if hasattr(scenario, "teardown"):
            scenario.teardown()
            env.run(until=horizon + 100)
        metrics = scenario.metrics()
        from repro.k8s.objects import PodPhase

        failed = sum(1 for p in scenario.pods if p.phase is PodPhase.FAILED)
        report = ChaosReport(
            scenario=scenario.name,
            seed=seed,
            n_events=len(plan),
            injected=dict(injector.injected_counts),
            retries=dict(injector.retry_counts),
            jobs_requeued=_count_requeues(scenario),
            pods_submitted=metrics.pods_submitted,
            pods_completed=metrics.pods_completed,
            pods_failed=failed,
            leaks=find_leaks(scenario),
            end_time=env.now,
        )
        if rec.enabled:
            from repro.obs import slo as _slo

            rec.sample_due(env.now, _metrics.registry)
            rules = slo if slo is not None else _slo.default_chaos_rules()
            evaluation = _slo.evaluate(rules, rec, env.now)
            if _trace.tracer.enabled:
                for alert in evaluation.alerts:
                    _trace.tracer.instant_at(
                        "slo.alert",
                        alert.at,
                        rule=alert.rule,
                        series=alert.series,
                        state=alert.state,
                    )
            report.alerts_fired = evaluation.fires
            report.detection = _slo.detection_latencies(
                dict(injector.injected_at), evaluation
            )
            report.evaluation = evaluation
        return metrics, report
    finally:
        injector.disarm()


def run_slo(
    scenario_cls: type[IntegrationScenario],
    plan: FaultPlan,
    rules: "SloRuleSet | None" = None,
    n_nodes: int = 4,
    n_pods: int = 8,
    seed: int = 0,
    horizon: float = 4000.0,
    sample_interval: float = 5.0,
) -> tuple[ScenarioMetrics, ChaosReport, object]:
    """A chaos run scored against SLO rules: the ``python -m repro slo``
    entry point.

    Enables the time-series recorder at ``sample_interval`` (resetting
    it), runs :func:`run_chaos` under ``rules`` (default:
    :func:`~repro.obs.slo.default_chaos_rules`), and builds the
    :class:`~repro.obs.slo.ScorecardReport` from the evaluation.  The
    recorder is left enabled so callers can export the sampled series;
    they own disabling it.
    """
    from repro.obs import slo as _slo

    ruleset = rules if rules is not None else _slo.default_chaos_rules()
    _timeseries.recorder.enable(interval=sample_interval)
    metrics, report = run_chaos(
        scenario_cls,
        plan,
        n_nodes=n_nodes,
        n_pods=n_pods,
        seed=seed,
        horizon=horizon,
        slo=ruleset,
    )
    evaluation = report.evaluation
    assert evaluation is not None  # recorder was enabled, so run_chaos evaluated
    scorecard = _slo.ScorecardReport.build(
        scenario=report.scenario,
        ruleset=ruleset,
        evaluation=evaluation,
        rec=_timeseries.recorder,
        registry=_metrics.registry,
        seed=seed,
        detection=report.detection,
    )
    return metrics, report, scorecard
