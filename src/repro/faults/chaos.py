"""Chaos runs: one scenario executed under a fault plan.

:func:`run_chaos` is the library entry point behind
``python -m repro chaos``: it arms the process-wide injector with a
plan, provisions and drives a §6 scenario exactly like
:func:`repro.scenarios.evaluate.run_scenario`, then disarms and reports
what the faults did — injections by kind, retries, job requeues, pod
outcomes, and the leak audit.  Everything in the report is a pure
function of ``(scenario, plan, seed)``, so two runs agree byte for byte.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.faults.injector import injector
from repro.faults.leaks import find_leaks
from repro.faults.plan import FaultPlan
from repro.scenarios.base import WORKFLOW_IMAGE, IntegrationScenario, ScenarioMetrics
from repro.sim import Environment
from repro.workload.generators import PodBatchGenerator


@dataclasses.dataclass
class ChaosReport:
    """What a fault plan did to one scenario run."""

    scenario: str
    seed: int
    n_events: int
    injected: dict[str, int]
    retries: dict[str, int]
    jobs_requeued: int
    pods_submitted: int
    pods_completed: int
    pods_failed: int
    leaks: list[str]
    end_time: float

    @property
    def clean(self) -> bool:
        return not self.leaks

    def render(self) -> str:
        lines = [
            f"chaos: {self.scenario} seed={self.seed} "
            f"plan={self.n_events} event(s), ended at t={self.end_time:.1f}s",
        ]
        if self.injected:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items()))
            lines.append(f"  faults injected: {parts}")
        else:
            lines.append("  faults injected: none")
        if self.retries:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.retries.items()))
            lines.append(f"  retry attempts:  {parts}")
        lines.append(f"  jobs requeued:   {self.jobs_requeued}")
        lines.append(
            f"  pods:            {self.pods_completed} completed, "
            f"{self.pods_failed} failed, {self.pods_submitted} submitted"
        )
        if self.leaks:
            lines.append(f"  LEAKS ({len(self.leaks)}):")
            lines.extend(f"    - {leak}" for leak in self.leaks)
        else:
            lines.append("  leaks:           none (no lingering containers/mounts)")
        return "\n".join(lines)


def _count_requeues(scenario: object) -> int:
    wlm = getattr(scenario, "wlm", None)
    if wlm is None:
        return 0
    jobs = getattr(wlm, "_jobs", {})
    return sum(getattr(job, "requeue_count", 0) for job in jobs.values())


def run_chaos(
    scenario_cls: type[IntegrationScenario],
    plan: FaultPlan,
    n_nodes: int = 4,
    n_pods: int = 8,
    seed: int = 0,
    horizon: float = 4000.0,
) -> tuple[ScenarioMetrics, ChaosReport]:
    """Provision, submit the standard pod batch, run to the horizon —
    all under ``plan`` — then audit and report.

    The injector is armed for the whole scenario lifetime (faults may
    hit provisioning too) and always disarmed on the way out, even if
    the scenario run raises.
    """
    env = Environment()
    injector.arm(plan, env)
    try:
        scenario = scenario_cls(env, n_nodes=n_nodes, seed=seed)
        ready = scenario.provision()
        env.run(until=ready)
        generator = PodBatchGenerator(WORKFLOW_IMAGE, seed=seed)
        pods = generator.batch(n_pods)
        scenario.submit(pods)
        env.run(until=horizon)
        if hasattr(scenario, "teardown"):
            scenario.teardown()
            env.run(until=horizon + 100)
        metrics = scenario.metrics()
        from repro.k8s.objects import PodPhase

        failed = sum(1 for p in scenario.pods if p.phase is PodPhase.FAILED)
        report = ChaosReport(
            scenario=scenario.name,
            seed=seed,
            n_events=len(plan),
            injected=dict(injector.injected_counts),
            retries=dict(injector.retry_counts),
            jobs_requeued=_count_requeues(scenario),
            pods_submitted=metrics.pods_submitted,
            pods_completed=metrics.pods_completed,
            pods_failed=failed,
            leaks=find_leaks(scenario),
            end_time=env.now,
        )
        return metrics, report
    finally:
        injector.disarm()
