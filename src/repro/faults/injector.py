"""The process-wide fault injector.

Subsystems ask the injector — at *named injection points* — whether a
fault is active right now; the armed :class:`~repro.faults.plan.FaultPlan`
answers purely as a function of virtual time.  Two delivery styles:

**pull** (window faults)
    Call sites query :meth:`FaultInjector.active` with their point name
    (``"registry.pull"``, ``"fs.mds"``, ``"fs.fuse"``,
    ``"engine.hooks"``) and perturb themselves: raise a transient error,
    multiply a cost, stall until recovery.  The query is keyed on the
    current virtual time, so an analytic retry loop that accounts time
    forward (``now + cost_so_far``) naturally escapes the window once
    its backoff has "slept" past it.

**push** (state transitions)
    Node crashes must *do* something to standing components.  Interested
    parties (the WLM controller, kubelets) register a handler for the
    ``"wlm.node"`` point while the injector is armed; a driver process
    walks the plan and invokes handlers at each event's begin
    (``"crash"``) and end (``"restore"``) edges.

Like :mod:`repro.obs`, the injector is **off by default and one
predicate check cheap when disabled**: every call site guards with
``if injector.enabled:`` before touching anything else, so a normal
(non-chaos) run pays a single attribute load per potential injection.

Every injection emits ``faults.injected{kind=...}`` on the metrics
registry and a ``fault.injected`` trace instant (when those layers are
enabled), plus an always-on private count used by chaos reports.
"""

from __future__ import annotations

import typing as _t

from repro.faults.plan import PUSH_KINDS as _PUSH_KINDS
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment

#: handler(event, phase) with phase in {"crash", "restore"}
PushHandler = _t.Callable[[FaultEvent, str], None]


class FaultInjector:
    """Holds the armed plan and serves injection-point queries."""

    def __init__(self) -> None:
        self.enabled = False
        self._plan: FaultPlan | None = None
        self._env: "Environment | None" = None
        #: point name -> window events, precomputed at arm time
        self._windows: dict[str, list[FaultEvent]] = {}
        #: point name -> push handlers (registered by live components)
        self._handlers: dict[str, list[PushHandler]] = {}
        #: kind.value -> times a fault actually perturbed an operation
        self.injected_counts: dict[str, int] = {}
        #: kind.value -> virtual time of the *first* injection (what SLO
        #: detection latency is measured against)
        self.injected_at: dict[str, float] = {}
        #: subsystem -> retry attempts recorded while armed
        self.retry_counts: dict[str, int] = {}

    # -- lifecycle ---------------------------------------------------------
    def arm(self, plan: FaultPlan, env: "Environment") -> None:
        """Activate ``plan`` against ``env``'s virtual clock.

        Push events get a driver process in ``env``; pull events are
        indexed by point for O(few) lookup.  Arming resets all counts.
        """
        self.disarm()
        self.enabled = True
        self._plan = plan
        self._env = env
        for event in plan:
            if event.kind not in _PUSH_KINDS:
                self._windows.setdefault(event.point, []).append(event)
        push = plan.push_events()
        if push:
            env.process(self._drive(push), name="fault-driver")

    def disarm(self) -> None:
        self.enabled = False
        self._plan = None
        self._env = None
        self._windows.clear()
        self._handlers.clear()
        self.injected_counts = {}
        self.injected_at = {}
        self.retry_counts = {}

    # -- pull side ---------------------------------------------------------
    def active(
        self, point: str, at: float | None = None, target: str | None = None
    ) -> FaultEvent | None:
        """The fault active at ``point`` for virtual time ``at`` (default:
        the armed environment's current time), or ``None``.

        A non-None return *is* an injection: the caller is expected to
        act on it, so the counters/metrics/trace marks are emitted here.
        """
        if not self.enabled:
            return None
        events = self._windows.get(point)
        if not events:
            return None
        if at is None:
            at = self._env.now if self._env is not None else 0.0
        for event in events:
            if event.active_at(at) and event.matches(target):
                self._record(event, at)
                return event
        return None

    def note_retry(self, subsystem: str) -> None:
        """Count one retry attempt for chaos reports (armed runs only)."""
        if self.enabled:
            self.retry_counts[subsystem] = self.retry_counts.get(subsystem, 0) + 1

    # -- push side ---------------------------------------------------------
    def record_push(self, event: FaultEvent, at: float) -> None:
        """Record one push-fault injection delivered *outside* the driver
        process.

        Engines that batch time (the fleet pump) cannot ride the driver:
        it would wake at exact fault times and perturb their event
        schedule, breaking fast-vs-naive equivalence.  They consume the
        plan's push events as an edge stream of their own and call this
        at each crash edge, so ``injected_counts`` / ``injected_at`` (and
        the metrics/trace marks) stay identical to driver delivery."""
        if self.enabled:
            self._record(event, at)

    def register(self, point: str, handler: PushHandler) -> None:
        """Subscribe a live component to push faults at ``point`` (no-op
        unless armed — call sites guard on :attr:`enabled` anyway)."""
        if self.enabled:
            self._handlers.setdefault(point, []).append(handler)

    def unregister(self, point: str, handler: PushHandler) -> None:
        handlers = self._handlers.get(point)
        if handlers is not None and handler in handlers:
            handlers.remove(handler)

    def _drive(self, events: list[FaultEvent]):
        """Driver process: deliver begin/end edges in virtual-time order."""
        edges: list[tuple[float, int, FaultEvent, str]] = []
        for i, event in enumerate(events):
            edges.append((event.at, i, event, "crash"))
            if event.duration > 0:
                edges.append((event.until, i, event, "restore"))
        edges.sort(key=lambda e: (e[0], e[1]))
        env = self._env
        assert env is not None
        for when, _i, event, phase in edges:
            if when > env.now:
                yield env.timeout_until(when)
            if not self.enabled:
                return
            if phase == "crash":
                self._record(event, env.now)
            elif _trace.tracer.enabled:
                _trace.tracer.instant(
                    "fault.cleared", kind=event.kind.value, target=event.target
                )
            for handler in list(self._handlers.get(event.point, ())):
                handler(event, phase)

    # -- accounting --------------------------------------------------------
    def _record(self, event: FaultEvent, at: float | None = None) -> None:
        kind = event.kind.value
        self.injected_counts[kind] = self.injected_counts.get(kind, 0) + 1
        if kind not in self.injected_at:
            if at is None:
                at = self._env.now if self._env is not None else event.at
            self.injected_at[kind] = at
        if _metrics.registry.enabled:
            _metrics.inc("faults.injected", kind=kind)
        if _trace.tracer.enabled:
            _trace.tracer.instant("fault.injected", kind=kind, target=event.target)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "armed" if self.enabled else "off"
        n = len(self._plan) if self._plan is not None else 0
        return f"<FaultInjector {state} events={n}>"


#: The process-wide injector every injection point consults.
injector = FaultInjector()
