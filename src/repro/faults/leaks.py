"""Leak detection: the executable form of §3.2's "no lingering processes".

After a chaos run reaches quiescence, every container ever created must
be in a terminal state (``STOPPED``/``DELETED``), no kubelet may still
hold an active-pod record for a pod that is terminal, and no mount may
remain attached to a non-terminal container.  :func:`find_leaks` walks a
scenario (or any bag of engines/kubelets) and returns human-readable
descriptions of every violation — an empty list is the pass criterion
chaos reports and the hypothesis property test assert on.
"""

from __future__ import annotations

import typing as _t

from repro.oci.runtime import ContainerState

#: container states that are acceptable once a run has wound down
TERMINAL_CONTAINER_STATES = frozenset(
    {ContainerState.STOPPED, ContainerState.DELETED}
)


def container_leaks(engines: _t.Iterable[object]) -> list[str]:
    """Containers stuck in a non-terminal state across ``engines``."""
    leaks: list[str] = []
    for engine in engines:
        runtime = getattr(engine, "runtime", engine)
        containers = getattr(runtime, "containers", {})
        for cid, container in sorted(containers.items()):
            if container.state not in TERMINAL_CONTAINER_STATES:
                name = getattr(getattr(engine, "info", None), "name", type(engine).__name__)
                leaks.append(
                    f"container {cid} on {name} still {container.state.value}"
                )
    return leaks


def mount_leaks(engines: _t.Iterable[object]) -> list[str]:
    """Mounts still attached to non-terminal containers."""
    leaks: list[str] = []
    for engine in engines:
        runtime = getattr(engine, "runtime", engine)
        containers = getattr(runtime, "containers", {})
        for cid, container in sorted(containers.items()):
            if container.state in TERMINAL_CONTAINER_STATES:
                continue
            n_mounts = 1 + len(container.mounts)  # rootfs + binds
            leaks.append(f"{n_mounts} mount(s) held by live container {cid}")
    return leaks


def kubelet_leaks(kubelets: _t.Iterable[object]) -> list[str]:
    """Active-pod records kubelets kept for pods that already ended."""
    from repro.k8s.objects import PodPhase

    leaks: list[str] = []
    for kubelet in kubelets:
        active = getattr(kubelet, "_active_pods", {})
        for uid, pod in sorted(active.items()):
            if pod.phase in (PodPhase.SUCCEEDED, PodPhase.FAILED):
                leaks.append(
                    f"kubelet {kubelet.node_name} still tracks finished pod "
                    f"{pod.metadata.name}"
                )
    return leaks


def find_leaks(scenario: object) -> list[str]:
    """All leak classes for one scenario object (or anything exposing
    ``engines`` — a mapping or sequence — and optionally ``kubelets``).

    Objects that model resources the engine/kubelet walk cannot see
    (e.g. :class:`~repro.workload.fleet.FleetShardEngine`'s pooled
    slots and capacity ledger) instead expose their own audit via a
    ``leak_descriptions()`` method, which takes precedence.
    """
    leak_fn = getattr(scenario, "leak_descriptions", None)
    if callable(leak_fn):
        return list(leak_fn())
    engines = getattr(scenario, "engines", ())
    if isinstance(engines, dict):
        engines = [engines[k] for k in sorted(engines)]
    kubelets = [
        *getattr(scenario, "kubelets", ()),
        # agents retired by a requeue must be just as clean
        *getattr(scenario, "retired_kubelets", ()),
    ]
    return [
        *container_leaks(engines),
        *mount_leaks(engines),
        *kubelet_leaks(kubelets),
    ]
