"""Fault plans: seeded, virtual-time schedules of injected events.

A :class:`FaultPlan` is the *only* source of nondeterminism-looking
behaviour in a chaos run — and it is not nondeterministic at all: plans
are either loaded from JSON or generated from an explicit seed with
:class:`~repro.sim.rng.DeterministicRNG`, so the same seed always
produces the same schedule and therefore (because injection is purely a
function of virtual time and the plan) byte-identical traces.

Each :class:`FaultEvent` opens at virtual time ``at`` and — for
window-style faults — stays active for ``duration`` seconds.  The
injection-point name each kind maps to is fixed (see
:data:`KIND_POINTS`); subsystems query the armed injector by point name
and never need to know the full kind taxonomy.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import typing as _t

from repro.sim.rng import DeterministicRNG


class FaultKind(enum.Enum):
    """The fault taxonomy §3.2's resilience requirements imply."""

    #: a compute node dies (power/kernel panic) and reboots ``duration``
    #: seconds later; ``target`` is the node name
    NODE_CRASH = "node_crash"
    #: registry answers 429 Too Many Requests for the window
    REGISTRY_429 = "registry_429"
    #: registry requests hang and time out for the window
    REGISTRY_TIMEOUT = "registry_timeout"
    #: registry blob streaming slowed by ``factor`` for the window
    REGISTRY_SLOW_BLOB = "registry_slow_blob"
    #: shared-FS metadata server degraded: metadata RPCs cost ``factor``×
    MDS_DEGRADED = "mds_degraded"
    #: shared-FS metadata server down: metadata RPCs stall until recovery
    MDS_OUTAGE = "mds_outage"
    #: FUSE daemon dies: userspace mounts fail for the window
    FUSE_DEATH = "fuse_death"
    #: OCI lifecycle hooks fail for the window (bad GPU driver, broken
    #: site plugin)
    HOOK_FAILURE = "hook_failure"


#: fault kind -> injection-point name subsystems query
KIND_POINTS: dict[FaultKind, str] = {
    FaultKind.NODE_CRASH: "wlm.node",
    FaultKind.REGISTRY_429: "registry.pull",
    FaultKind.REGISTRY_TIMEOUT: "registry.pull",
    FaultKind.REGISTRY_SLOW_BLOB: "registry.pull",
    FaultKind.MDS_DEGRADED: "fs.mds",
    FaultKind.MDS_OUTAGE: "fs.mds",
    FaultKind.FUSE_DEATH: "fs.fuse",
    FaultKind.HOOK_FAILURE: "engine.hooks",
}

#: kinds delivered by the injector's driver process (state transitions
#: pushed into registered handlers) rather than polled at call sites
PUSH_KINDS = frozenset({FaultKind.NODE_CRASH})


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at``/``duration`` are virtual seconds; ``target`` narrows the blast
    radius (a node name for :attr:`FaultKind.NODE_CRASH`, a registry or
    backend name otherwise — ``None`` matches everything); ``factor`` is
    the slowdown multiplier for degradation kinds.
    """

    kind: FaultKind
    at: float
    duration: float = 0.0
    target: str | None = None
    factor: float = 1.0

    @property
    def until(self) -> float:
        return self.at + self.duration

    @property
    def point(self) -> str:
        return KIND_POINTS[self.kind]

    def active_at(self, now: float) -> bool:
        """Window check: instantaneous events are active only at ``at``."""
        if self.duration <= 0.0:
            return now == self.at
        return self.at <= now < self.until

    def matches(self, target: str | None) -> bool:
        return self.target is None or target is None or self.target == target

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {"kind": self.kind.value, "at": self.at}
        if self.duration:
            out["duration"] = self.duration
        if self.target is not None:
            out["target"] = self.target
        if self.factor != 1.0:
            out["factor"] = self.factor
        return out

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FaultEvent":
        return cls(
            kind=FaultKind(data["kind"]),
            at=float(data["at"]),  # type: ignore[arg-type]
            duration=float(data.get("duration", 0.0)),  # type: ignore[arg-type]
            target=_t.cast("str | None", data.get("target")),
            factor=float(data.get("factor", 1.0)),  # type: ignore[arg-type]
        )


class FaultPlan:
    """An ordered schedule of :class:`FaultEvent`\\ s."""

    def __init__(self, events: _t.Iterable[FaultEvent] = (), seed: int | None = None):
        self.events: list[FaultEvent] = sorted(
            events, key=lambda e: (e.at, e.kind.value, e.target or "")
        )
        self.seed = seed

    # -- queries -----------------------------------------------------------
    def for_point(self, point: str) -> list[FaultEvent]:
        return [e for e in self.events if e.point == point]

    def push_events(self) -> list[FaultEvent]:
        return [e for e in self.events if e.kind in PUSH_KINDS]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> _t.Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = {e.kind.value for e in self.events}
        return f"<FaultPlan events={len(self.events)} kinds={sorted(kinds)}>"

    # -- serialization -----------------------------------------------------
    def to_json(self, indent: int | None = 2) -> str:
        doc: dict[str, object] = {"events": [e.to_dict() for e in self.events]}
        if self.seed is not None:
            doc["seed"] = self.seed
        return json.dumps(doc, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        doc = json.loads(text)
        if isinstance(doc, list):  # bare event list is accepted too
            doc = {"events": doc}
        events = [FaultEvent.from_dict(e) for e in doc.get("events", [])]
        return cls(events, seed=doc.get("seed"))

    def to_file(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())

    # -- generation --------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: float = 600.0,
        node_names: _t.Sequence[str] = (),
        kinds: _t.Sequence[FaultKind] | None = None,
        targets: _t.Mapping[FaultKind, _t.Sequence[str]] | None = None,
    ) -> "FaultPlan":
        """A deterministic default plan for chaos runs.

        Draws every schedule parameter from a named sub-stream of
        :class:`DeterministicRNG`, so the plan depends only on the
        arguments — two invocations with the same seed agree event for
        event.  One event per requested kind.

        ``targets`` is the per-kind victim pool: when a kind has a pool,
        the event's ``target`` is drawn from it uniformly.  This is how
        non-scenario node namespaces (the fleet engine's synthetic
        ``fleet-node-NNNNN`` ids, a specific registry name) get targeted
        plans without forking the taxonomy.  ``node_names`` is the
        historical spelling of ``targets[NODE_CRASH]`` and is kept as a
        convenience; an explicit ``targets`` entry wins.  Kinds that
        need a victim but have an empty pool are skipped.
        """
        rng = DeterministicRNG(seed).stream("faultplan")
        pools: dict[FaultKind, _t.Sequence[str]] = {}
        if node_names:
            pools[FaultKind.NODE_CRASH] = node_names
        if targets:
            pools.update(targets)
        if kinds is None:
            kinds = [
                FaultKind.REGISTRY_429,
                FaultKind.MDS_DEGRADED,
                FaultKind.HOOK_FAILURE,
            ]
            if pools.get(FaultKind.NODE_CRASH):
                kinds = [FaultKind.NODE_CRASH, *kinds]
        events: list[FaultEvent] = []
        for kind in kinds:
            at = round(float(rng.uniform(0.05, 0.65)) * horizon, 3)
            duration = round(float(rng.uniform(0.02, 0.12)) * horizon, 3)
            target: str | None = None
            factor = 1.0
            pool = pools.get(kind)
            if pool:
                target = pool[int(rng.integers(0, len(pool)))]
            elif kind is FaultKind.NODE_CRASH:
                continue  # a crash needs a victim; nothing to draw from
            if kind in (FaultKind.MDS_DEGRADED, FaultKind.REGISTRY_SLOW_BLOB):
                factor = round(float(rng.uniform(3.0, 12.0)), 2)
            events.append(
                FaultEvent(kind=kind, at=at, duration=duration, target=target, factor=factor)
            )
        return cls(events, seed=seed)
