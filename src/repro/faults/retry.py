"""Deterministic retry policies with exponential backoff.

Real HPC tooling retries transient failures — registry pulls most of
all — with exponential backoff *plus jitter*.  Jitter exists to
desynchronize independent clients; in a deterministic simulation it
would only destroy reproducibility, so the policies here are explicitly
jitter-free: delay ``i`` is ``base * multiplier**i`` capped at
``max_delay``, a pure function of the attempt index.

:class:`RetryExhausted` is the aggregation contract every retried
operation surfaces on final failure: one exception naming the attempt
count, the time spent, and the last cause (chained via ``__cause__``),
instead of whatever bare error the final attempt happened to raise.
"""

from __future__ import annotations

import dataclasses
import typing as _t


class RetryExhausted(RuntimeError):
    """All attempts of a retried operation failed.

    Attributes:
        subsystem: which retry loop gave up (``"registry"``, ...).
        attempts: how many attempts were made (including the first).
        elapsed: virtual seconds of operation cost + backoff accrued.
        last_cause: the final attempt's exception (also ``__cause__``).
    """

    def __init__(
        self,
        subsystem: str,
        attempts: int,
        elapsed: float,
        last_cause: BaseException,
    ):
        super().__init__(
            f"{subsystem}: giving up after {attempts} attempt"
            f"{'s' if attempts != 1 else ''} over {elapsed:.2f}s; "
            f"last cause: {type(last_cause).__name__}: {last_cause}"
        )
        self.subsystem = subsystem
        self.attempts = attempts
        self.elapsed = elapsed
        self.last_cause = last_cause


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Jitter-free exponential backoff.

    ``deadline`` bounds the *total* accounted time (operation costs plus
    backoff): once it is exceeded no further attempt is made even if
    ``max_attempts`` remain.
    """

    max_attempts: int = 5
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    deadline: float | None = None

    def delay(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (attempts count from 0)."""
        return min(self.base_delay * self.multiplier**attempt, self.max_delay)

    def delays(self) -> _t.Iterator[float]:
        for attempt in range(self.max_attempts - 1):
            yield self.delay(attempt)

    def gives_up(self, attempts_made: int, elapsed: float) -> bool:
        if attempts_made >= self.max_attempts:
            return True
        return self.deadline is not None and elapsed >= self.deadline
