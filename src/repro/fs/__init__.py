"""Simulated filesystems and IO cost models.

This package provides the storage substrate for the containerization
stack:

- :mod:`repro.fs.inode` / :mod:`repro.fs.tree` — in-memory file trees
  with POSIX-ish ownership and permissions,
- :mod:`repro.fs.perf` — calibrated IO cost models (latency, bandwidth,
  IOPS, decompression, FUSE user/kernel crossings),
- :mod:`repro.fs.backends` — node-local disk, tmpfs, and a shared
  cluster filesystem with metadata-server contention,
- :mod:`repro.fs.images` — single-file filesystem images (SquashFS-like),
- :mod:`repro.fs.drivers` — mount drivers (bind, kernel/FUSE OverlayFS,
  kernel SquashFS / SquashFUSE) exposing a mounted union view.

Cost constants are centralized in :mod:`repro.fs.perf`; benchmarks assert
cost *shapes* (ratios, crossovers), never absolute values.
"""

from repro.fs.inode import DirNode, FileNode, SymlinkNode
from repro.fs.tree import FileTree, FsError
from repro.fs.perf import IOCostModel, PROFILES, ReadOnlyFilesystemError
from repro.fs.backends import LocalDisk, SharedFS, StorageBackend, TmpFS
from repro.fs.images import SquashImage, pack_squash
from repro.fs.drivers import (
    BindDriver,
    FuseOverlayDriver,
    MountDriver,
    MountedView,
    OverlayKernelDriver,
    SquashFuseDriver,
    SquashKernelDriver,
    mount_bind,
    mount_overlay,
    mount_squash,
)

__all__ = [
    "BindDriver",
    "DirNode",
    "FileNode",
    "FileTree",
    "FsError",
    "FuseOverlayDriver",
    "IOCostModel",
    "LocalDisk",
    "MountDriver",
    "MountedView",
    "OverlayKernelDriver",
    "PROFILES",
    "ReadOnlyFilesystemError",
    "SharedFS",
    "SquashFuseDriver",
    "SquashImage",
    "SquashKernelDriver",
    "StorageBackend",
    "SymlinkNode",
    "TmpFS",
    "mount_bind",
    "mount_overlay",
    "mount_squash",
    "pack_squash",
]
