"""Storage backends: node-local disk, tmpfs, shared cluster filesystem.

A backend owns a :class:`~repro.fs.tree.FileTree` and a cost model.  Two
access styles are provided:

- ``est_*`` methods return a plain cost in seconds — used for quick,
  contention-free estimates;
- ``proc_*`` methods are simulation processes (generators) — used inside
  a :class:`~repro.sim.Environment` where contention matters.  For the
  shared filesystem every metadata operation acquires a slot on the
  metadata server (MDS), so a small-file open storm from many compute
  nodes queues exactly as §3.2 of the paper describes.
"""

from __future__ import annotations

import typing as _t

from repro.fs.inode import DirNode, FileNode
from repro.fs.perf import IOCostModel, PROFILES
from repro.fs.tree import FileTree, FsError
from repro.faults.injector import injector as _faults
from repro.faults.plan import FaultKind as _FaultKind
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Environment, Resource


class StorageBackend:
    """A file tree with an IO cost model."""

    #: how many files proc_load_tree folds into one simulated IO burst;
    #: per-file costs are summed analytically, so virtual time is the
    #: same as per-file simulation while the event count drops ~100x.
    io_batch: int = 64

    def __init__(self, name: str, cost_model: IOCostModel, env: Environment | None = None):
        self.name = name
        self.cost_model = cost_model
        self.env = env
        self.tree = FileTree()
        #: running totals used by benchmarks
        self.stats = {"opens": 0, "bytes_read": 0, "bytes_written": 0}

    # -- estimate-style API ---------------------------------------------------
    def est_open(self, path: str) -> float:
        self.tree.get(path)
        self.stats["opens"] += 1
        # Path resolution pays one metadata op per component.
        depth = max(1, len([p for p in path.split("/") if p]))
        return self.cost_model.metadata_cost(depth)

    def est_read_file(self, path: str, random: bool = False) -> float:
        node = self.tree.get(path)
        if not isinstance(node, FileNode):
            raise FsError(f"not a file: {path}")
        self.stats["bytes_read"] += node.size
        if random:
            n_ops = max(1, node.size // 4096)
            return self.cost_model.random_read_cost(n_ops)
        return self.cost_model.sequential_read_cost(node.size)

    def est_write_file(self, path: str, size: int) -> float:
        self.tree.create_file(path, size=size)
        self.stats["bytes_written"] += size
        return self.cost_model.write_cost(size)

    def est_load_tree(self, top: str = "/") -> float:
        """Cost of opening+reading every file under ``top`` (e.g. an
        interpreter importing its standard library at startup).

        The per-file cost sum is memoized in the tree's scan cache (it
        is a pure function of the subtree and the cost model), so many
        nodes loading the same image pay the walk once; the running
        ``stats`` totals are replayed identically from cached counts.
        """
        cache = self.tree.scan_cache(top)
        key = ("est_load", top, self.cost_model)
        entry = cache.get(key)
        if entry is None:
            model = self.cost_model
            files = self.tree.files_list(top)
            total = 0.0
            n_bytes = 0
            for path, node in files:
                depth = max(1, len([p for p in path.split("/") if p]))
                total += model.metadata_cost(depth)
                total += model.sequential_read_cost(node.size)
                n_bytes += node.size
            entry = (total, len(files), n_bytes)
            cache[key] = entry
        total, n_files, n_bytes = entry
        self.stats["opens"] += n_files
        self.stats["bytes_read"] += n_bytes
        if _trace.tracer.enabled:
            _trace.complete(
                "fs.load_tree", total, backend=self.name, files=n_files, bytes=n_bytes
            )
        if _metrics.registry.enabled:
            self._io_metrics(n_files, n_bytes)
        return total

    def _io_metrics(self, n_files: int, n_bytes: int) -> None:
        _metrics.inc("fs.io.files", n_files, backend=self.name, op="read")
        _metrics.inc("fs.io.bytes", n_bytes, backend=self.name, op="read")

    # -- process-style API ------------------------------------------------------
    def _require_env(self) -> Environment:
        if self.env is None:
            raise RuntimeError(f"backend {self.name!r} not attached to an Environment")
        return self.env

    def proc_open(self, path: str) -> _t.Generator:
        env = self._require_env()
        yield env.timeout(self.est_open(path))
        return path

    def proc_read_file(self, path: str, random: bool = False) -> _t.Generator:
        env = self._require_env()
        cost = self.est_read_file(path, random=random)
        yield env.timeout(cost)
        node = self.tree.get(path)
        assert isinstance(node, FileNode)
        return node.size

    def proc_load_tree(self, top: str = "/") -> _t.Generator:
        env = self._require_env()
        batch = max(1, self.io_batch)
        cache = self.tree.scan_cache(top)
        key = ("load_batches", top, batch, self.cost_model)
        batches = cache.get(key)
        if batches is None:
            model = self.cost_model
            files = self.tree.files_list(top)
            batches = []
            for start in range(0, len(files), batch):
                cost = 0.0
                n_files = 0
                n_bytes = 0
                for path, node in files[start : start + batch]:
                    depth = max(1, len([p for p in path.split("/") if p]))
                    cost += model.metadata_cost(depth)
                    cost += model.sequential_read_cost(node.size)
                    n_files += 1
                    n_bytes += node.size
                batches.append((cost, n_files, n_bytes))
            cache[key] = batches
        with _trace.span("fs.load_tree", backend=self.name, top=top):
            for cost, n_files, n_bytes in batches:
                self.stats["opens"] += n_files
                self.stats["bytes_read"] += n_bytes
                if _metrics.registry.enabled:
                    self._io_metrics(n_files, n_bytes)
                    _metrics.observe("fs.io.latency", cost, backend=self.name, op="read")
                yield env.timeout(cost)
        return self.tree.total_size(top)


class LocalDisk(StorageBackend):
    """Node-local NVMe."""

    def __init__(self, env: Environment | None = None, name: str = "local-nvme"):
        super().__init__(name, PROFILES["nvme"], env=env)


class TmpFS(StorageBackend):
    """RAM-backed scratch (e.g. /dev/shm extraction target)."""

    def __init__(self, env: Environment | None = None, name: str = "tmpfs"):
        super().__init__(name, PROFILES["tmpfs"], env=env)


class SharedFS(StorageBackend):
    """Shared cluster filesystem (Lustre/GPFS-like).

    Metadata operations funnel through a fixed-capacity metadata server;
    with many clients doing small-file IO the MDS queue dominates — the
    behaviour that motivates flattening container images (§3.2, §4.1.4).
    """

    def __init__(
        self,
        env: Environment | None = None,
        name: str = "sharedfs",
        mds_capacity: int = 32,
        aggregate_bandwidth: float = 40e9,
    ):
        super().__init__(name, PROFILES["sharedfs_client"], env=env)
        self.mds_capacity = mds_capacity
        self.aggregate_bandwidth = aggregate_bandwidth
        self.mds: Resource | None = Resource(env, capacity=mds_capacity) if env else None
        self._bw: Resource | None = None

    def attach_env(self, env: Environment) -> None:
        self.env = env
        self.mds = Resource(env, capacity=self.mds_capacity)

    def _mds_gate(self) -> _t.Generator:
        """Consult the fault injector before touching the MDS.

        MDS_OUTAGE stalls the caller until the window closes — requests
        queue but nothing errors, modelling a failover blip the way §3.2
        expects clients to ride out.  MDS_DEGRADED returns a latency
        multiplier (>= 1.0) applied to metadata costs for the window.
        """
        env = self._require_env()
        while True:
            fault = _faults.active("fs.mds", at=env.now, target=self.name)
            if fault is None:
                return 1.0
            if fault.kind is _FaultKind.MDS_OUTAGE:
                yield env.timeout_until(fault.until)
                continue
            return max(1.0, fault.factor)

    def proc_open(self, path: str) -> _t.Generator:
        """Open with MDS contention: each path component is one MDS RPC.

        The per-component RPCs are batched into a single MDS slot held
        for their aggregate latency: one request/timeout/release instead
        of ``depth`` of each, with the same total MDS busy time.
        """
        env = self._require_env()
        assert self.mds is not None
        depth = max(1, len([p for p in path.split("/") if p]))
        self.tree.get(path)
        self.stats["opens"] += 1
        factor = 1.0
        if _faults.enabled:
            factor = yield from self._mds_gate()
        queued_at = env.now
        req = self.mds.request()
        yield req
        if _metrics.registry.enabled:
            _metrics.inc("fs.mds.rpcs", depth, backend=self.name)
            _metrics.observe("fs.mds.wait", env.now - queued_at, backend=self.name)
        yield env.timeout(self.cost_model.open_cost() * depth * factor)
        self.mds.release(req)
        return path

    def proc_read_file(self, path: str, random: bool = False) -> _t.Generator:
        env = self._require_env()
        node = self.tree.get(path)
        if not isinstance(node, FileNode):
            raise FsError(f"not a file: {path}")
        self.stats["bytes_read"] += node.size
        if random:
            n_ops = max(1, node.size // 4096)
            cost = self.cost_model.random_read_cost(n_ops)
        else:
            cost = self.cost_model.sequential_read_cost(node.size)
        yield env.timeout(cost)
        return node.size

    def proc_load_tree(self, top: str = "/") -> _t.Generator:
        """Load every file under ``top`` through the MDS, in chunks.

        Files are processed ``io_batch`` at a time: each chunk acquires
        one MDS slot and holds it for the analytic sum of its per-
        component RPC latencies (identical total MDS busy time as
        per-file RPCs), then pays the chunk's aggregate streaming-read
        cost off the MDS.  This collapses the thousands of events a
        small-file storm used to schedule into a handful per client.

        Granularity caveat: completion times are exactly
        batch-size-invariant when concurrent clients either fit within
        ``mds_capacity`` or saturate it in full waves (client count a
        multiple of capacity — the regime of every committed benchmark).
        With a partial last wave, coarse chunks leave MDS slots idle
        that fine-grained RPCs would have load-balanced, so end-to-end
        times can differ between batch sizes by up to the last wave's
        occupancy deficit.

        The per-batch (meta, read) cost pairs are memoized in the tree's
        scan cache — a 64-node open storm of the same directory computes
        them once and replays identical timeouts (and ``stats`` deltas)
        for every client.
        """
        env = self._require_env()
        assert self.mds is not None
        batch = max(1, self.io_batch)
        cache = self.tree.scan_cache(top)
        key = ("mds_batches", top, batch, self.cost_model)
        batches = cache.get(key)
        if batches is None:
            open_cost = self.cost_model.open_cost()
            read_cost = self.cost_model.sequential_read_cost
            files = self.tree.files_list(top)
            batches = []
            for start in range(0, len(files), batch):
                meta = 0.0
                read = 0.0
                n_files = 0
                n_bytes = 0
                for path, node in files[start : start + batch]:
                    depth = max(1, len([p for p in path.split("/") if p]))
                    meta += open_cost * depth
                    read += read_cost(node.size)
                    n_files += 1
                    n_bytes += node.size
                batches.append((meta, read, n_files, n_bytes))
            cache[key] = batches
        total = 0
        with _trace.span("fs.load_tree", backend=self.name, top=top):
            for meta, read, n_files, n_bytes in batches:
                self.stats["opens"] += n_files
                self.stats["bytes_read"] += n_bytes
                total += n_bytes
                factor = 1.0
                if _faults.enabled:
                    factor = yield from self._mds_gate()
                queued_at = env.now
                req = self.mds.request()
                yield req
                if _metrics.registry.enabled:
                    self._io_metrics(n_files, n_bytes)
                    _metrics.inc("fs.mds.batches", backend=self.name)
                    _metrics.observe("fs.mds.wait", env.now - queued_at, backend=self.name)
                with _trace.tracer.span("fs.mds.batch", backend=self.name, files=n_files):
                    yield env.timeout(meta * factor)
                self.mds.release(req)
                yield env.timeout(read)
        return total
