"""Mount drivers and mounted views.

A :class:`MountDriver` describes *how* a filesystem gets mounted — and
therefore which kernel security rules apply (see
:mod:`repro.kernel.syscalls`):

========================  ===========  ==================  =============
driver                    is_fuse      needs block device  runs in
========================  ===========  ==================  =============
bind                      no           no                  kernel
overlay (kernel)          no           no                  kernel
fuse-overlayfs            yes          no                  userspace
squashfs (kernel)         no           **yes**             kernel
squashfuse                yes          no                  userspace
========================  ===========  ==================  =============

The asymmetry in the last two rows is the paper's §4.1.2 story: the
in-kernel SquashFS driver parses raw block-device data, so the kernel is
exposed to maliciously crafted images and unprivileged users must not
reach it; SquashFUSE keeps the parser in userspace at the price of a
user/kernel crossing per operation (≈ an order of magnitude lower random
IOPS).

Mounting produces a :class:`MountedView`: a read (or union-read/write)
facade over one or more file trees with a derived cost model.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.fs.inode import DirNode, FileNode, Node, SymlinkNode, WhiteoutNode
from repro.fs.perf import (
    FUSE_OVERLAY_BW_SCALE,
    FUSE_OVERLAY_PER_OP,
    IOCostModel,
    OVERLAY_KERNEL_PER_LAYER,
    PROFILES,
)
from repro.fs.tree import FileTree, FsError
from repro.fs.images import SquashImage
from repro.faults.injector import injector as _faults
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import profile as _profile


@dataclasses.dataclass(frozen=True)
class MountDriver:
    """Static description of a mount mechanism."""

    name: str
    is_fuse: bool
    requires_block_device: bool
    userspace: bool
    kernel_module: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


BindDriver = MountDriver(
    name="bind", is_fuse=False, requires_block_device=False, userspace=False
)
OverlayKernelDriver = MountDriver(
    name="overlay",
    is_fuse=False,
    requires_block_device=False,
    userspace=False,
    kernel_module="overlay",
)
FuseOverlayDriver = MountDriver(
    name="fuse-overlayfs", is_fuse=True, requires_block_device=False, userspace=True
)
SquashKernelDriver = MountDriver(
    name="squashfs",
    is_fuse=False,
    requires_block_device=True,
    userspace=False,
    kernel_module="squashfs",
)
SquashFuseDriver = MountDriver(
    name="squashfuse", is_fuse=True, requires_block_device=False, userspace=True
)

ALL_DRIVERS = [BindDriver, OverlayKernelDriver, FuseOverlayDriver, SquashKernelDriver, SquashFuseDriver]


class MountedView:
    """A union view over ordered layers (last layer is uppermost).

    ``writable`` layers accept writes (overlay upper dir); read-only views
    (squash mounts) reject them.  Costs are charged against the view's
    derived cost model.
    """

    def __init__(
        self,
        driver: MountDriver,
        layers: _t.Sequence[FileTree],
        cost_model: IOCostModel,
        writable: bool = False,
        upper: FileTree | None = None,
        source_image: SquashImage | None = None,
    ):
        if not layers and upper is None:
            raise FsError("mount requires at least one layer")
        self.driver = driver
        self.layers = list(layers)
        self.cost_model = cost_model
        self.writable = writable
        self.upper = upper if upper is not None else (FileTree() if writable else None)
        self.source_image = source_image
        self.stats = {"opens": 0, "bytes_read": 0, "bytes_written": 0, "copy_ups": 0}
        if _trace.tracer.enabled:
            _trace.tracer.instant(
                "fs.mount", driver=driver.name, layers=len(self.layers),
                writable=writable,
            )
        if _metrics.registry.enabled:
            _metrics.inc("fs.mounts", driver=driver.name)

    # -- union lookup --------------------------------------------------------
    def _all_trees_top_down(self) -> list[FileTree]:
        trees: list[FileTree] = []
        if self.upper is not None:
            trees.append(self.upper)
        trees.extend(reversed(self.layers))
        return trees

    def _union_raw(self, path: str) -> Node | None:
        """Top-down, no-follow lookup of a literal path across layers."""
        for tree in self._all_trees_top_down():
            node = tree.lookup(path, follow_symlinks=False)
            if isinstance(node, WhiteoutNode):
                return None
            if node is not None:
                return node
        return None

    def lookup(self, path: str, _depth: int = 0) -> Node | None:
        """Union lookup resolving symlinks against the *union*, so a link
        in one layer may point at content provided by another layer."""
        if _depth > 40:
            raise FsError(f"too many levels of symbolic links: {path}")
        from repro.fs.tree import split_parts

        parts = split_parts(path)
        if not parts:
            return self._all_trees_top_down()[0].root
        node: Node | None = None
        for i in range(len(parts)):
            prefix = "/" + "/".join(parts[: i + 1])
            node = self._union_raw(prefix)
            if node is None:
                return None
            if isinstance(node, SymlinkNode):
                if node.target.startswith("/"):
                    target = node.target
                else:
                    target = "/" + "/".join(parts[:i] + [node.target])
                rest = parts[i + 1 :]
                full = target + ("/" + "/".join(rest) if rest else "")
                return self.lookup(full, _depth=_depth + 1)
        return node

    def exists(self, path: str) -> bool:
        return self.lookup(path) is not None

    def readdir(self, path: str) -> list[str]:
        names: set[str] = set()
        hidden: set[str] = set()
        found_dir = False
        for tree in self._all_trees_top_down():
            node = tree.lookup(path, follow_symlinks=True)
            if isinstance(node, DirNode):
                found_dir = True
                for name, child in node.children.items():
                    if isinstance(child, WhiteoutNode):
                        hidden.add(name)
                    elif name not in hidden:
                        names.add(name)
        if not found_dir:
            raise FsError(f"no such directory: {path}")
        self.stats["opens"] += 1
        return sorted(names)

    # -- costed operations ----------------------------------------------------
    def open(self, path: str) -> float:
        node = self.lookup(path)
        if node is None:
            raise FsError(f"no such path: {path}")
        self.stats["opens"] += 1
        depth = max(1, len([p for p in path.split("/") if p]))
        return self.cost_model.metadata_cost(depth)

    def read(self, path: str, random: bool = False) -> tuple[float, int]:
        node = self.lookup(path)
        if not isinstance(node, FileNode):
            raise FsError(f"not a file: {path}")
        self.stats["bytes_read"] += node.size
        if random:
            n_ops = max(1, node.size // 4096)
            cost = self.cost_model.random_read_cost(n_ops)
        else:
            cost = self.cost_model.sequential_read_cost(node.size)
        if _metrics.registry.enabled:
            op = "randread" if random else "read"
            _metrics.inc("fs.io.bytes", node.size, driver=self.driver.name, op=op)
            _metrics.observe("fs.io.latency", cost, driver=self.driver.name, op=op)
        return cost, node.size

    def write(self, path: str, data: bytes | None = None, size: int | None = None) -> float:
        if not self.writable or self.upper is None:
            raise FsError(f"read-only mount ({self.driver.name})")
        cost = 0.0
        existing = self.lookup(path)
        if isinstance(existing, FileNode) and self.upper.lookup(path) is None:
            # Copy-up: the overlay must pull the lower file into the upper
            # layer before modifying it.  Feed the profile counter too, so
            # view-level ``stats["copy_ups"]`` and the global
            # ``cow_copy_ups`` roll-up agree on what a copy-up is: any
            # write that had to duplicate shared lower content first.
            cost += self.cost_model.sequential_read_cost(existing.size)
            cost += self.cost_model.write_cost(existing.size)
            self.stats["copy_ups"] += 1
            counters = _profile.counters
            if counters.enabled:
                counters.cow_copy_ups += 1
        n = len(data) if data is not None else int(size or 0)
        self.upper.create_file(path, data=data, size=size)
        self.stats["bytes_written"] += n
        cost += self.cost_model.write_cost(n)
        if _metrics.registry.enabled:
            _metrics.inc("fs.io.bytes", n, driver=self.driver.name, op="write")
            _metrics.observe("fs.io.latency", cost, driver=self.driver.name, op="write")
        return cost

    def remove(self, path: str) -> None:
        if not self.writable or self.upper is None:
            raise FsError(f"read-only mount ({self.driver.name})")
        if self.lookup(path) is None:
            raise FsError(f"no such path: {path}")
        if self.upper.exists(path):
            self.upper.remove(path)
        # Hide any lower-layer entry.
        for tree in self.layers:
            if tree.exists(path):
                self.upper.whiteout(path)
                break

    def load_all(self, top: str = "/") -> float:
        """Cost of walking and reading every file (cold application start)."""
        total = 0.0
        if self.upper is None and len(self.layers) == 1:
            # Single read-only layer (the squash-mount case): every file in
            # the layer is authoritative, so skip the per-path union lookup
            # and charge the same open+read costs directly.  The cost sum is
            # memoized in the layer tree's scan cache — for a frozen image
            # tree the memo lives on the shared node, so every mount of the
            # same image (across nodes and runs) walks it exactly once.
            layer = self.layers[0]
            cache = layer.scan_cache(top)
            key = ("load_all", top, self.cost_model)
            entry = cache.get(key)
            if entry is None:
                model = self.cost_model
                files = layer.files_list(top)
                n_bytes = 0
                for path, node in files:
                    n_bytes += node.size
                    depth = max(1, len([p for p in path.split("/") if p]))
                    total += model.metadata_cost(depth)
                    total += model.sequential_read_cost(node.size)
                entry = (total, len(files), n_bytes)
                cache[key] = entry
            total, n_files, n_bytes = entry
            self.stats["opens"] += n_files
            self.stats["bytes_read"] += n_bytes
            if _trace.tracer.enabled:
                _trace.complete(
                    "fs.load_all", total, driver=self.driver.name,
                    files=n_files, bytes=n_bytes,
                )
            if _metrics.registry.enabled:
                _metrics.inc("fs.io.files", n_files, driver=self.driver.name, op="read")
                _metrics.inc("fs.io.bytes", n_bytes, driver=self.driver.name, op="read")
            return total
        seen: set[str] = set()
        for tree in self._all_trees_top_down():
            for path, node in tree.files(top):
                if path in seen or self.lookup(path) is not node:
                    continue
                seen.add(path)
                total += self.open(path)
                cost, _ = self.read(path)
                total += cost
        if _trace.tracer.enabled:
            _trace.complete(
                "fs.load_all", total, driver=self.driver.name, files=len(seen)
            )
        return total

    def num_files(self) -> int:
        seen: set[str] = set()
        for tree in self._all_trees_top_down():
            for path, node in tree.files():
                if self.lookup(path) is node:
                    seen.add(path)
        return len(seen)


# -- mount constructors ---------------------------------------------------------

def mount_bind(source_tree: FileTree, backend_model: IOCostModel) -> MountedView:
    """Bind-mount an existing tree; costs are the backend's."""
    return MountedView(BindDriver, [source_tree], backend_model, writable=False)


def _check_fuse_alive(driver: MountDriver) -> None:
    """Fault gate for userspace mounts: while an armed plan has a
    ``fuse_death`` window open, starting a FUSE daemon fails — the
    engine's mount raises :class:`FsError` and its cleanup guarantee
    (no half-built container, no stray mounts) takes over."""
    if _faults.enabled:
        fault = _faults.active("fs.fuse")
        if fault is not None:
            raise FsError(
                f"{driver.name}: FUSE daemon died (injected fault until "
                f"t={fault.until:.1f})"
            )


def mount_overlay(
    layers: _t.Sequence[FileTree],
    backend_model: IOCostModel,
    fuse: bool = False,
    writable: bool = True,
) -> MountedView:
    """Union-mount ``layers`` (bottom first) with an optional upper dir."""
    if fuse:
        _check_fuse_alive(FuseOverlayDriver)
        model = backend_model.with_overhead(FUSE_OVERLAY_PER_OP, FUSE_OVERLAY_BW_SCALE)
        model = dataclasses.replace(model, name="fuse-overlayfs")
        driver = FuseOverlayDriver
    else:
        model = backend_model.with_overhead(OVERLAY_KERNEL_PER_LAYER * max(1, len(layers)))
        model = dataclasses.replace(model, name="overlay-kernel")
        driver = OverlayKernelDriver
    return MountedView(driver, layers, model, writable=writable)


def mount_squash(image: SquashImage, fuse: bool) -> MountedView:
    """Mount a single-file image via the kernel driver or SquashFUSE.

    The *permission* decision (may this user use the kernel driver at
    all?) belongs to :meth:`repro.kernel.syscalls.Kernel.mount`; this
    constructor only builds the view and its cost model.
    """
    if fuse:
        _check_fuse_alive(SquashFuseDriver)
    model = PROFILES["squashfuse" if fuse else "squashfs_kernel"]
    driver = SquashFuseDriver if fuse else SquashKernelDriver
    return MountedView(driver, [image.tree], model, writable=False, source_image=image)
