"""Single-file filesystem images (SquashFS-like).

Flattening a container's many-small-file tree into one compressed image
file is the central HPC trick the paper describes (§3.2, §4.1.2): it
trades CPU (decompression) and memory for shared-filesystem metadata
load.  A :class:`SquashImage` records the inner tree, the compressed
on-disk size, and provenance metadata that the kernel model uses for its
security checks (a user-writable or user-supplied image must never reach
the in-kernel driver).
"""

from __future__ import annotations

import hashlib
import itertools

from repro.fs.tree import FileTree
from repro.sim import profile as _profile

_image_counter = itertools.count(1)

#: default compression ratio for typical container content (mixed
#: binaries/text); mksquashfs with zstd commonly lands around here.
DEFAULT_COMPRESSION_RATIO = 0.45

#: mksquashfs throughput (compression side), bytes/second per builder.
PACK_BANDWIDTH = 350e6


class SquashImage:
    """An immutable single-file image wrapping a file tree."""

    def __init__(
        self,
        tree: FileTree,
        compression_ratio: float = DEFAULT_COMPRESSION_RATIO,
        built_by_uid: int = 0,
        writable_by: frozenset[int] = frozenset(),
    ):
        if not 0 < compression_ratio <= 1:
            raise ValueError("compression_ratio must be in (0, 1]")
        self.image_id = next(_image_counter)
        self.tree = tree
        self.uncompressed_size = tree.total_size()
        self.compressed_size = int(self.uncompressed_size * compression_ratio)
        self.num_inner_files = tree.num_files()
        #: uid that produced the image — a setuid mount helper must verify
        #: this is a trusted (root/system) uid before using the kernel driver.
        self.built_by_uid = built_by_uid
        #: uids that can write the image file itself (beyond root).
        self.writable_by = frozenset(writable_by)

    @property
    def digest(self) -> str:
        h = hashlib.sha256()
        h.update(f"squash:{self.image_id}:{self.uncompressed_size}:{self.num_inner_files}".encode())
        return "sha256:" + h.hexdigest()

    def is_user_manipulable(self, uid: int) -> bool:
        """Could ``uid`` have injected or altered this image's bytes?

        True when the user built the image themselves or holds write
        permission on the image file.  The kernel block-device drivers are
        not hardened against malicious images, so the mount layer refuses
        in-kernel mounts of manipulable images for unprivileged users.
        """
        if uid == 0:
            return False
        return self.built_by_uid == uid or uid in self.writable_by

    def pack_cost(self) -> float:
        """CPU seconds spent creating this image (mksquashfs-like)."""
        return self.uncompressed_size / PACK_BANDWIDTH

    def __repr__(self) -> str:
        return (
            f"<SquashImage id={self.image_id} files={self.num_inner_files} "
            f"compressed={self.compressed_size}B by_uid={self.built_by_uid}>"
        )


def tree_content_digest(tree: FileTree) -> str:
    """Content digest over a whole tree: sorted (path, kind, payload,
    perms) rows, the same recipe OCI layers hash.  Bulk (size-only)
    files hash their inode identity, so the digest is stable only for
    the *same* tree object (or trees built from an identical inode
    sequence) — exactly the equality :func:`pack_squash` memoizes on.

    The digest is memoized in the tree's scan cache (dropped on any
    mutation, shared by every tree aliasing a frozen root), so repeat
    packs of an unchanged tree don't pay the walk again.
    """
    cache = tree.scan_cache("/")
    digest = cache.get("tree_content_digest")
    if digest is None:
        h = hashlib.sha256()
        for path, node in sorted(tree.walk("/"), key=lambda pair: pair[0]):
            payload = ""
            if node.kind == "file":
                payload = node.digest()
            elif node.kind == "symlink":
                payload = node.target
            h.update(
                f"{path}\0{node.kind}\0{payload}\0{node.mode:o}:{node.uid}:{node.gid}\n".encode()
            )
        digest = "sha256:" + h.hexdigest()
        cache["tree_content_digest"] = digest
    return digest


#: (tree content digest, ratio, built_by_uid, writable_by) -> image.
#: Packing is content-addressed like the flatten/convert caches in
#: :mod:`repro.oci.squash`: re-packing identical content returns the
#: same immutable image instead of minting a new one, and the repeat
#: counts as a ``flatten_cache_hits`` materialization saved.
_PACK_CACHE: dict[tuple[str, float, int, frozenset[int]], SquashImage] = {}


def clear_pack_cache() -> None:
    """Drop the pack memo (test isolation helper)."""
    _PACK_CACHE.clear()


def pack_squash(
    tree: FileTree,
    compression_ratio: float = DEFAULT_COMPRESSION_RATIO,
    built_by_uid: int = 0,
    writable_by: frozenset[int] = frozenset(),
) -> SquashImage:
    """Pack a file tree into a single-file image (mksquashfs analogue)."""
    key = (
        tree_content_digest(tree),
        compression_ratio,
        built_by_uid,
        frozenset(writable_by),
    )
    cached = _PACK_CACHE.get(key)
    if cached is not None:
        counters = _profile.counters
        if counters.enabled:
            counters.flatten_cache_hits += 1
        return cached
    image = SquashImage(
        tree.clone(),
        compression_ratio=compression_ratio,
        built_by_uid=built_by_uid,
        writable_by=writable_by,
    )
    _PACK_CACHE[key] = image
    return image
