"""Inode types for the in-memory filesystem.

Files may carry literal ``data`` (small config files the simulation
inspects) or only a ``size`` (bulk content such as libraries, where only
the byte count matters for IO costs).  Every node carries POSIX ownership
and a mode so the kernel model can enforce permission rules.

Copy-on-write sharing
---------------------
Cloning a tree no longer deep-copies it.  Instead nodes carry a
``shared`` flag: :meth:`FileTree.clone` freezes the subtree (marks every
node shared, an O(n) walk the *first* time, O(1) once already frozen)
and the clone aliases the same nodes.  A shared node is immutable — the
in-place mutators (:meth:`Node.chown`, :meth:`Node.chmod`,
:meth:`FileNode.write`) raise :class:`FsError` on it — and any mutation
through :class:`~repro.fs.tree.FileTree` first *copies up* the spine
from the root to the touched node via :meth:`Node.copy_shallow`.

Invariant: a shared directory only has shared children (``_freeze`` is
recursive), so freezing can stop at the first already-shared node.  The
converse does not hold: an unshared directory may hold shared children
(that is exactly what a copy-up produces).
"""

from __future__ import annotations

import hashlib
import itertools
import typing as _t

from repro.sim import profile as _profile

_inode_counter = itertools.count(1)


class FsError(OSError):
    """Filesystem-level error (missing path, wrong node type, ...)."""


class Node:
    """Common base for all inode types."""

    kind: str = "node"

    def __init__(self, uid: int = 0, gid: int = 0, mode: int = 0o644):
        self.ino = next(_inode_counter)
        self.uid = uid
        self.gid = gid
        self.mode = mode
        self.mtime = 0.0
        #: set-uid bit shortcut (mode & 0o4000); modelled explicitly because
        #: setuid helpers are central to the engine comparison.
        self.xattrs: dict[str, str] = {}
        #: copy-on-write flag: once True the node is aliased by several
        #: trees and must never be mutated in place again.
        self.shared = False

    @property
    def setuid(self) -> bool:
        return bool(self.mode & 0o4000)

    def _assert_mutable(self) -> None:
        if self.shared:
            raise FsError(
                f"cannot mutate a CoW-shared {self.kind} node in place; "
                "mutate through FileTree (chmod/chown/write) so the spine "
                "is copied up first"
            )

    def chown(self, uid: int, gid: int) -> None:
        self._assert_mutable()
        self.uid = uid
        self.gid = gid

    def chmod(self, mode: int) -> None:
        self._assert_mutable()
        self.mode = mode

    def _freeze(self) -> None:
        self.shared = True

    def _copy_base(self, node: "Node") -> "Node":
        """Carry the POSIX attributes over to a fresh (unshared) copy."""
        node.uid = self.uid
        node.gid = self.gid
        node.mode = self.mode
        node.mtime = self.mtime
        node.xattrs = dict(self.xattrs)
        return node


class FileNode(Node):
    """A regular file: literal bytes, or size-only bulk content."""

    kind = "file"

    def __init__(
        self,
        data: bytes | None = None,
        size: int | None = None,
        uid: int = 0,
        gid: int = 0,
        mode: int = 0o644,
    ):
        super().__init__(uid=uid, gid=gid, mode=mode)
        if data is not None and size is not None and size != len(data):
            raise ValueError("size conflicts with len(data)")
        self.data = data
        self._size = len(data) if data is not None else int(size or 0)
        self._digest_memo: str | None = None

    @property
    def size(self) -> int:
        return self._size

    def write(self, data: bytes) -> None:
        self._assert_mutable()
        self.data = data
        self._size = len(data)
        self._digest_memo = None

    def chown(self, uid: int, gid: int) -> None:
        super().chown(uid, gid)
        self._digest_memo = None

    def chmod(self, mode: int) -> None:
        super().chmod(mode)
        self._digest_memo = None

    def digest(self) -> str:
        """Content digest; size-only files hash their identity + size.

        Memoized: content only changes through :meth:`write` (and the
        identity of a size-only file never changes), both of which drop
        the memo.  ``chmod``/``chown`` also invalidate, although they do
        not feed the hash, so the memo never outlives *any* in-place
        mutation of the node.
        """
        if self._digest_memo is not None:
            counters = _profile.counters
            if counters.enabled:
                counters.digest_cache_hits += 1
            return self._digest_memo
        h = hashlib.sha256()
        if self.data is not None:
            h.update(self.data)
        else:
            h.update(f"bulk:{self.ino}:{self._size}".encode())
        self._digest_memo = h.hexdigest()
        return self._digest_memo

    def clone(self) -> "FileNode":
        self._freeze()
        return self

    def copy_shallow(self) -> "FileNode":
        node = FileNode(data=self.data, size=None if self.data is not None else self._size)
        self._copy_base(node)
        if self.data is not None:
            # Content digests are a pure function of the bytes, so the
            # memo survives the copy; bulk digests hash the inode number
            # and must be recomputed for the fresh node.
            node._digest_memo = self._digest_memo
        return node

    def __repr__(self) -> str:
        return f"<FileNode size={self._size} uid={self.uid} mode={oct(self.mode)}>"


class DirNode(Node):
    """A directory: named children."""

    kind = "dir"

    def __init__(self, uid: int = 0, gid: int = 0, mode: int = 0o755):
        super().__init__(uid=uid, gid=gid, mode=mode)
        self.children: dict[str, Node] = {}

    def _freeze(self) -> None:
        if self.shared:
            return
        self.shared = True
        for child in self.children.values():
            child._freeze()

    def clone(self) -> "DirNode":
        self._freeze()
        return self

    def copy_shallow(self) -> "DirNode":
        node = DirNode()
        self._copy_base(node)
        node.children = dict(self.children)
        return node

    def __repr__(self) -> str:
        return f"<DirNode {len(self.children)} entries>"


class SymlinkNode(Node):
    """A symbolic link to ``target`` (absolute or relative path)."""

    kind = "symlink"

    def __init__(self, target: str, uid: int = 0, gid: int = 0):
        super().__init__(uid=uid, gid=gid, mode=0o777)
        self.target = target

    def clone(self) -> "SymlinkNode":
        self._freeze()
        return self

    def copy_shallow(self) -> "SymlinkNode":
        node = SymlinkNode(self.target)
        self._copy_base(node)
        return node

    def __repr__(self) -> str:
        return f"<SymlinkNode -> {self.target}>"


#: whiteout marker used by overlay layers to hide lower entries (the OCI
#: layer format encodes these as ``.wh.<name>`` files).
class WhiteoutNode(Node):
    kind = "whiteout"

    def clone(self) -> "WhiteoutNode":
        self._freeze()
        return self

    def copy_shallow(self) -> "WhiteoutNode":
        node = WhiteoutNode()
        self._copy_base(node)
        return node

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<WhiteoutNode>"


AnyNode = _t.Union[FileNode, DirNode, SymlinkNode, WhiteoutNode]
