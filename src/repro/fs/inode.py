"""Inode types for the in-memory filesystem.

Files may carry literal ``data`` (small config files the simulation
inspects) or only a ``size`` (bulk content such as libraries, where only
the byte count matters for IO costs).  Every node carries POSIX ownership
and a mode so the kernel model can enforce permission rules.
"""

from __future__ import annotations

import hashlib
import itertools
import typing as _t

_inode_counter = itertools.count(1)


class Node:
    """Common base for all inode types."""

    kind: str = "node"

    def __init__(self, uid: int = 0, gid: int = 0, mode: int = 0o644):
        self.ino = next(_inode_counter)
        self.uid = uid
        self.gid = gid
        self.mode = mode
        self.mtime = 0.0
        #: set-uid bit shortcut (mode & 0o4000); modelled explicitly because
        #: setuid helpers are central to the engine comparison.
        self.xattrs: dict[str, str] = {}

    @property
    def setuid(self) -> bool:
        return bool(self.mode & 0o4000)

    def chown(self, uid: int, gid: int) -> None:
        self.uid = uid
        self.gid = gid

    def chmod(self, mode: int) -> None:
        self.mode = mode


class FileNode(Node):
    """A regular file: literal bytes, or size-only bulk content."""

    kind = "file"

    def __init__(
        self,
        data: bytes | None = None,
        size: int | None = None,
        uid: int = 0,
        gid: int = 0,
        mode: int = 0o644,
    ):
        super().__init__(uid=uid, gid=gid, mode=mode)
        if data is not None and size is not None and size != len(data):
            raise ValueError("size conflicts with len(data)")
        self.data = data
        self._size = len(data) if data is not None else int(size or 0)

    @property
    def size(self) -> int:
        return self._size

    def write(self, data: bytes) -> None:
        self.data = data
        self._size = len(data)

    def digest(self) -> str:
        """Content digest; size-only files hash their identity + size."""
        h = hashlib.sha256()
        if self.data is not None:
            h.update(self.data)
        else:
            h.update(f"bulk:{self.ino}:{self._size}".encode())
        return h.hexdigest()

    def clone(self) -> "FileNode":
        node = FileNode(data=self.data, size=self._size, uid=self.uid, gid=self.gid, mode=self.mode)
        node.xattrs = dict(self.xattrs)
        return node

    def __repr__(self) -> str:
        return f"<FileNode size={self._size} uid={self.uid} mode={oct(self.mode)}>"


class DirNode(Node):
    """A directory: named children."""

    kind = "dir"

    def __init__(self, uid: int = 0, gid: int = 0, mode: int = 0o755):
        super().__init__(uid=uid, gid=gid, mode=mode)
        self.children: dict[str, Node] = {}

    def clone(self) -> "DirNode":
        node = DirNode(uid=self.uid, gid=self.gid, mode=self.mode)
        for name, child in self.children.items():
            node.children[name] = child.clone()  # type: ignore[attr-defined]
        return node

    def __repr__(self) -> str:
        return f"<DirNode {len(self.children)} entries>"


class SymlinkNode(Node):
    """A symbolic link to ``target`` (absolute or relative path)."""

    kind = "symlink"

    def __init__(self, target: str, uid: int = 0, gid: int = 0):
        super().__init__(uid=uid, gid=gid, mode=0o777)
        self.target = target

    def clone(self) -> "SymlinkNode":
        return SymlinkNode(self.target, uid=self.uid, gid=self.gid)

    def __repr__(self) -> str:
        return f"<SymlinkNode -> {self.target}>"


#: whiteout marker used by overlay layers to hide lower entries (the OCI
#: layer format encodes these as ``.wh.<name>`` files).
class WhiteoutNode(Node):
    kind = "whiteout"

    def clone(self) -> "WhiteoutNode":
        return WhiteoutNode(uid=self.uid, gid=self.gid)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<WhiteoutNode>"


AnyNode = _t.Union[FileNode, DirNode, SymlinkNode, WhiteoutNode]
