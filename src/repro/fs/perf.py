"""Calibrated IO cost models.

All timing constants live here.  They are calibrated to the magnitudes
reported for real hardware and the literature the paper cites (e.g. the
CSCS squashfs-mount benchmarks [29]: SquashFUSE shows roughly an order of
magnitude lower random-read IOPS and much higher per-op latency than the
in-kernel SquashFS driver).  Benchmarks in this repository assert the
*shape* of results — ratios and crossovers — so the exact values only
need to be plausible, not exact.

Units: seconds, bytes.
"""

from __future__ import annotations

import dataclasses

from repro.fs.tree import FsError


class ReadOnlyFilesystemError(FsError):
    """Write cost requested from a read-only filesystem (e.g. squashfs).

    Historically these profiles carried a ``write_bandwidth=1.0`` sentinel
    (1 byte/s), which silently produced absurd multi-hour write times
    instead of an error; now the cost model refuses outright.
    """


@dataclasses.dataclass(frozen=True)
class IOCostModel:
    """Cost model for a filesystem or mount driver.

    Attributes
    ----------
    open_latency:
        Base latency of a metadata operation (open/stat/readdir entry).
    read_bandwidth / write_bandwidth:
        Sustained streaming bandwidth in bytes/second.
    random_iops:
        Small random reads per second (4 KiB granularity).
    per_op_overhead:
        Extra latency added to *every* operation — this is where FUSE
        user/kernel crossings show up.
    decompress_bandwidth:
        If not None, content must be decompressed at this rate (CPU cost
        traded for disk IO, per §3.2 of the paper).
    read_only:
        True for filesystems whose driver rejects writes (squashfs);
        :meth:`write_cost` raises :class:`ReadOnlyFilesystemError`.
    """

    name: str
    open_latency: float
    read_bandwidth: float
    write_bandwidth: float
    random_iops: float
    per_op_overhead: float = 0.0
    decompress_bandwidth: float | None = None
    read_only: bool = False

    # -- derived costs ------------------------------------------------------
    def open_cost(self) -> float:
        return self.open_latency + self.per_op_overhead

    def metadata_cost(self, n_ops: int = 1) -> float:
        return n_ops * (self.open_latency + self.per_op_overhead)

    def sequential_read_cost(self, size: int) -> float:
        cost = self.per_op_overhead + size / self.read_bandwidth
        if self.decompress_bandwidth is not None:
            cost += size / self.decompress_bandwidth
        return cost

    def random_read_cost(self, n_ops: int, op_size: int = 4096) -> float:
        per_op = 1.0 / self.random_iops + self.per_op_overhead
        cost = n_ops * per_op + (n_ops * op_size) / self.read_bandwidth
        if self.decompress_bandwidth is not None:
            cost += (n_ops * op_size) / self.decompress_bandwidth
        return cost

    def write_cost(self, size: int) -> float:
        if self.read_only:
            raise ReadOnlyFilesystemError(
                f"filesystem {self.name!r} is read-only; writes rejected by driver"
            )
        return self.per_op_overhead + size / self.write_bandwidth

    def effective_random_iops(self) -> float:
        """Achievable random 4 KiB IOPS including per-op overheads."""
        return 1.0 / (1.0 / self.random_iops + self.per_op_overhead)

    def with_overhead(self, extra_per_op: float, bandwidth_scale: float = 1.0) -> "IOCostModel":
        """Derive a model with added per-op latency and scaled bandwidth
        (used by stacking drivers such as fuse-overlayfs on a backend)."""
        return dataclasses.replace(
            self,
            name=f"{self.name}+overhead",
            per_op_overhead=self.per_op_overhead + extra_per_op,
            read_bandwidth=self.read_bandwidth * bandwidth_scale,
            write_bandwidth=self.write_bandwidth * bandwidth_scale,
        )


#: Canonical cost profiles.  Magnitudes:
#:   - NVMe node-local disk: tens of µs metadata, GB/s streaming, ~300k IOPS
#:   - tmpfs: single-digit µs metadata, ~10 GB/s
#:   - shared cluster FS client: ~1 ms metadata RPC (plus MDS queueing,
#:     modelled separately), high streaming bandwidth, poor small-file IOPS
#:   - in-kernel SquashFS: near-disk metadata, decompression-limited reads
#:   - SquashFUSE: per-op FUSE crossing => ~10x lower IOPS, higher latency
#:   - fuse-overlayfs: FUSE crossing on every op, bandwidth absorbed by CPU
PROFILES: dict[str, IOCostModel] = {
    "nvme": IOCostModel(
        name="nvme",
        open_latency=20e-6,
        read_bandwidth=2.5e9,
        write_bandwidth=1.2e9,
        random_iops=300_000,
    ),
    "tmpfs": IOCostModel(
        name="tmpfs",
        open_latency=2e-6,
        read_bandwidth=10e9,
        write_bandwidth=8e9,
        random_iops=2_000_000,
    ),
    "sharedfs_client": IOCostModel(
        name="sharedfs_client",
        open_latency=1e-3,
        read_bandwidth=3e9,
        write_bandwidth=2e9,
        random_iops=15_000,
    ),
    "squashfs_kernel": IOCostModel(
        name="squashfs_kernel",
        open_latency=25e-6,
        read_bandwidth=2.2e9,
        write_bandwidth=0.0,
        random_iops=150_000,
        decompress_bandwidth=900e6,
        read_only=True,
    ),
    "squashfuse": IOCostModel(
        name="squashfuse",
        open_latency=25e-6,
        read_bandwidth=1.6e9,
        write_bandwidth=0.0,
        random_iops=150_000,
        per_op_overhead=60e-6,  # FUSE user/kernel round trip per op
        decompress_bandwidth=500e6,  # decompression in userspace, no readahead
        read_only=True,
    ),
}

#: Extra per-op latency a FUSE OverlayFS layer adds on top of its backend.
FUSE_OVERLAY_PER_OP = 55e-6
#: Bandwidth fraction surviving the fuse-overlayfs data path ("heavy I/O
#: must be absorbed by the CPU", §4.1.2).
FUSE_OVERLAY_BW_SCALE = 0.55
#: Kernel OverlayFS adds a small per-layer lookup cost on cache-cold paths.
OVERLAY_KERNEL_PER_LAYER = 3e-6
