"""Path-addressed file tree over the inode types."""

from __future__ import annotations

import posixpath
import typing as _t

from repro.fs.inode import AnyNode, DirNode, FileNode, Node, SymlinkNode, WhiteoutNode


class FsError(OSError):
    """Filesystem-level error (missing path, wrong node type, ...)."""


def normalize(path: str) -> str:
    """Normalize to an absolute, '/'-rooted path."""
    if not path.startswith("/"):
        path = "/" + path
    norm = posixpath.normpath(path)
    return norm


def split_parts(path: str) -> list[str]:
    norm = normalize(path)
    return [p for p in norm.split("/") if p]


class FileTree:
    """A mutable, path-addressed tree of inodes."""

    def __init__(self, root: DirNode | None = None):
        self.root = root or DirNode()

    # -- lookup -------------------------------------------------------------
    def get(self, path: str, follow_symlinks: bool = True) -> Node:
        node = self._resolve(path, follow_symlinks=follow_symlinks)
        if node is None:
            raise FsError(f"no such path: {path}")
        return node

    def lookup(self, path: str, follow_symlinks: bool = True) -> Node | None:
        return self._resolve(path, follow_symlinks=follow_symlinks)

    def exists(self, path: str) -> bool:
        return self._resolve(path) is not None

    def is_dir(self, path: str) -> bool:
        node = self._resolve(path)
        return isinstance(node, DirNode)

    def is_file(self, path: str) -> bool:
        node = self._resolve(path)
        return isinstance(node, FileNode)

    def _resolve(
        self, path: str, follow_symlinks: bool = True, _depth: int = 0
    ) -> Node | None:
        if _depth > 40:
            raise FsError(f"too many levels of symbolic links: {path}")
        node: Node = self.root
        parts = split_parts(path)
        for i, part in enumerate(parts):
            if isinstance(node, SymlinkNode):
                resolved = self._resolve(node.target, _depth=_depth + 1)
                if resolved is None:
                    return None
                node = resolved
            if not isinstance(node, DirNode):
                return None
            child = node.children.get(part)
            if child is None:
                return None
            node = child
        if follow_symlinks and isinstance(node, SymlinkNode):
            return self._resolve(node.target, _depth=_depth + 1)
        return node

    # -- mutation -----------------------------------------------------------
    def mkdir(self, path: str, parents: bool = False, uid: int = 0, gid: int = 0) -> DirNode:
        parts = split_parts(path)
        if not parts:
            return self.root
        node: DirNode = self.root
        for i, part in enumerate(parts):
            child = node.children.get(part)
            last = i == len(parts) - 1
            if child is None:
                if not last and not parents:
                    raise FsError(f"missing parent for {path}")
                child = DirNode(uid=uid, gid=gid)
                node.children[part] = child
            if not isinstance(child, DirNode):
                raise FsError(f"not a directory: /{'/'.join(parts[: i + 1])}")
            node = child
        return node

    def create_file(
        self,
        path: str,
        data: bytes | None = None,
        size: int | None = None,
        uid: int = 0,
        gid: int = 0,
        mode: int = 0o644,
        parents: bool = True,
    ) -> FileNode:
        parts = split_parts(path)
        if not parts:
            raise FsError("cannot create file at /")
        parent = self.mkdir("/".join(parts[:-1]), parents=parents, uid=uid, gid=gid)
        node = FileNode(data=data, size=size, uid=uid, gid=gid, mode=mode)
        parent.children[parts[-1]] = node
        return node

    def symlink(self, path: str, target: str, uid: int = 0, gid: int = 0) -> SymlinkNode:
        parts = split_parts(path)
        parent = self.mkdir("/".join(parts[:-1]), parents=True, uid=uid, gid=gid)
        node = SymlinkNode(target, uid=uid, gid=gid)
        parent.children[parts[-1]] = node
        return node

    def whiteout(self, path: str) -> WhiteoutNode:
        parts = split_parts(path)
        parent = self.mkdir("/".join(parts[:-1]), parents=True)
        node = WhiteoutNode()
        parent.children[parts[-1]] = node
        return node

    def remove(self, path: str) -> None:
        parts = split_parts(path)
        if not parts:
            raise FsError("cannot remove /")
        parent = self._resolve("/".join(parts[:-1]))
        if not isinstance(parent, DirNode) or parts[-1] not in parent.children:
            raise FsError(f"no such path: {path}")
        del parent.children[parts[-1]]

    def attach(self, path: str, node: Node) -> None:
        """Graft an existing node (subtree) at ``path``."""
        parts = split_parts(path)
        if not parts:
            if not isinstance(node, DirNode):
                raise FsError("root must be a directory")
            self.root = node
            return
        parent = self.mkdir("/".join(parts[:-1]), parents=True)
        parent.children[parts[-1]] = node

    # -- iteration & aggregate stats -----------------------------------------
    def walk(self, top: str = "/") -> _t.Iterator[tuple[str, Node]]:
        """Yield (path, node) for every node below ``top`` (depth-first)."""
        start = self._resolve(top, follow_symlinks=False)
        if start is None:
            raise FsError(f"no such path: {top}")
        base = normalize(top)

        def _walk(prefix: str, node: Node) -> _t.Iterator[tuple[str, Node]]:
            yield prefix, node
            if isinstance(node, DirNode):
                for name in sorted(node.children):
                    child_prefix = prefix.rstrip("/") + "/" + name
                    yield from _walk(child_prefix, node.children[name])

        yield from _walk(base, start)

    def files(self, top: str = "/") -> _t.Iterator[tuple[str, FileNode]]:
        for path, node in self.walk(top):
            if isinstance(node, FileNode):
                yield path, node

    def num_files(self, top: str = "/") -> int:
        return sum(1 for _ in self.files(top))

    def total_size(self, top: str = "/") -> int:
        return sum(node.size for _, node in self.files(top))

    def clone(self) -> "FileTree":
        return FileTree(root=self.root.clone())

    def merge_from(self, other: "FileTree", at: str = "/") -> None:
        """Deep-merge another tree's contents under ``at`` (upper wins)."""
        target_root = self.mkdir(at, parents=True)

        def _merge(dst: DirNode, src: DirNode) -> None:
            for name, child in src.children.items():
                if isinstance(child, WhiteoutNode):
                    dst.children.pop(name, None)
                    continue
                if isinstance(child, DirNode) and isinstance(dst.children.get(name), DirNode):
                    _merge(dst.children[name], child)  # type: ignore[arg-type]
                else:
                    dst.children[name] = child.clone()  # type: ignore[attr-defined]

        _merge(target_root, other.root)

    def __repr__(self) -> str:
        return f"<FileTree files={self.num_files()} bytes={self.total_size()}>"
