"""Path-addressed file tree over the inode types.

Trees are copy-on-write: :meth:`FileTree.clone` freezes the current
root (marking every node ``shared``) and returns a new tree aliasing
it, and every mutating method copies up only the spine of shared nodes
from the root to the touched entry.  See :mod:`repro.fs.inode` for the
sharing invariant.

Because a frozen subtree can never change, trees also memoize their
scan aggregates (the file listing under a path, total sizes, and the
per-batch IO costs the storage backends derive from them).  For a
shared subtree the memo lives on the node itself — so every view of the
same image shares one scan — and for a private subtree it lives on the
tree, keyed by a generation counter that every mutation bumps.
"""

from __future__ import annotations

import posixpath
import typing as _t

from repro.fs.inode import (
    AnyNode,
    DirNode,
    FileNode,
    FsError,
    Node,
    SymlinkNode,
    WhiteoutNode,
)
from repro.sim import profile as _profile

__all__ = [
    "FsError",
    "FileTree",
    "normalize",
    "split_parts",
]


def normalize(path: str) -> str:
    """Normalize to an absolute, '/'-rooted path."""
    if not path.startswith("/"):
        path = "/" + path
    norm = posixpath.normpath(path)
    return norm


def split_parts(path: str) -> list[str]:
    norm = normalize(path)
    return [p for p in norm.split("/") if p]


def _count_copy_up() -> None:
    counters = _profile.counters
    if counters.enabled:
        counters.cow_copy_ups += 1


class FileTree:
    """A mutable, path-addressed tree of inodes."""

    def __init__(self, root: DirNode | None = None):
        self.root = root or DirNode()
        #: bumped by every mutating method; keys the private scan cache.
        self._gen = 0
        self._scan_cache: dict = {}
        self._scan_gen = -1

    # -- lookup -------------------------------------------------------------
    def get(self, path: str, follow_symlinks: bool = True) -> Node:
        node = self._resolve(path, follow_symlinks=follow_symlinks)
        if node is None:
            raise FsError(f"no such path: {path}")
        return node

    def lookup(self, path: str, follow_symlinks: bool = True) -> Node | None:
        return self._resolve(path, follow_symlinks=follow_symlinks)

    def exists(self, path: str) -> bool:
        return self._resolve(path) is not None

    def is_dir(self, path: str) -> bool:
        node = self._resolve(path)
        return isinstance(node, DirNode)

    def is_file(self, path: str) -> bool:
        node = self._resolve(path)
        return isinstance(node, FileNode)

    def _resolve(
        self, path: str, follow_symlinks: bool = True, _depth: int = 0
    ) -> Node | None:
        if _depth > 40:
            raise FsError(f"too many levels of symbolic links: {path}")
        node: Node = self.root
        parts = split_parts(path)
        for i, part in enumerate(parts):
            if isinstance(node, SymlinkNode):
                resolved = self._resolve(node.target, _depth=_depth + 1)
                if resolved is None:
                    return None
                node = resolved
            if not isinstance(node, DirNode):
                return None
            child = node.children.get(part)
            if child is None:
                return None
            node = child
        if follow_symlinks and isinstance(node, SymlinkNode):
            return self._resolve(node.target, _depth=_depth + 1)
        return node

    def _canonical_parts(self, path: str, _depth: int = 0) -> list[str] | None:
        """Symlink-free path of an existing entry, as root-relative parts.

        Follows symlinks exactly like :meth:`_resolve` (including the
        final component), but returns *where the target actually lives*
        so a copy-up can walk the literal spine.  Returns None when the
        path does not resolve.
        """
        if _depth > 40:
            raise FsError(f"too many levels of symbolic links: {path}")
        canon: list[str] = []
        node: Node = self.root
        for part in split_parts(path):
            if isinstance(node, SymlinkNode):
                resolved = self._canonical_parts(node.target, _depth=_depth + 1)
                if resolved is None:
                    return None
                canon = resolved
                found = self._node_at(canon)
                if found is None:
                    return None
                node = found
            if not isinstance(node, DirNode):
                return None
            child = node.children.get(part)
            if child is None:
                return None
            canon.append(part)
            node = child
        if isinstance(node, SymlinkNode):
            return self._canonical_parts(node.target, _depth=_depth + 1)
        return canon

    def _node_at(self, parts: _t.Sequence[str]) -> Node | None:
        """Literal (no-symlink) descent along already-canonical parts."""
        node: Node = self.root
        for part in parts:
            if not isinstance(node, DirNode):
                return None
            child = node.children.get(part)
            if child is None:
                return None
            node = child
        return node

    # -- copy-up helpers ------------------------------------------------------
    def _mutable_root(self) -> DirNode:
        if self.root.shared:
            self.root = self.root.copy_shallow()
            _count_copy_up()
        return self.root

    def _unshare_child(self, parent: DirNode, name: str) -> Node:
        child = parent.children[name]
        if child.shared:
            child = child.copy_shallow()
            parent.children[name] = child
            _count_copy_up()
        return child

    def _mutable_node(self, path: str) -> Node:
        """Copy up the spine to ``path`` and return its unshared node."""
        canon = self._canonical_parts(path)
        if canon is None:
            raise FsError(f"no such path: {path}")
        node: Node = self._mutable_root()
        for part in canon:
            node = self._unshare_child(node, part)  # type: ignore[arg-type]
        return node

    def _bump(self) -> None:
        self._gen += 1

    # -- mutation -----------------------------------------------------------
    def mkdir(self, path: str, parents: bool = False, uid: int = 0, gid: int = 0) -> DirNode:
        parts = split_parts(path)
        node: DirNode = self._mutable_root()
        if not parts:
            return node
        for i, part in enumerate(parts):
            child = node.children.get(part)
            last = i == len(parts) - 1
            if child is None:
                if not last and not parents:
                    raise FsError(f"missing parent for {path}")
                child = DirNode(uid=uid, gid=gid)
                node.children[part] = child
            elif child.shared:
                child = self._unshare_child(node, part)
            if not isinstance(child, DirNode):
                raise FsError(f"not a directory: /{'/'.join(parts[: i + 1])}")
            node = child
        self._bump()
        return node

    def create_file(
        self,
        path: str,
        data: bytes | None = None,
        size: int | None = None,
        uid: int = 0,
        gid: int = 0,
        mode: int = 0o644,
        parents: bool = True,
    ) -> FileNode:
        parts = split_parts(path)
        if not parts:
            raise FsError("cannot create file at /")
        parent = self.mkdir("/".join(parts[:-1]), parents=parents, uid=uid, gid=gid)
        node = FileNode(data=data, size=size, uid=uid, gid=gid, mode=mode)
        parent.children[parts[-1]] = node
        self._bump()
        return node

    def symlink(self, path: str, target: str, uid: int = 0, gid: int = 0) -> SymlinkNode:
        parts = split_parts(path)
        parent = self.mkdir("/".join(parts[:-1]), parents=True, uid=uid, gid=gid)
        node = SymlinkNode(target, uid=uid, gid=gid)
        parent.children[parts[-1]] = node
        self._bump()
        return node

    def whiteout(self, path: str) -> WhiteoutNode:
        parts = split_parts(path)
        parent = self.mkdir("/".join(parts[:-1]), parents=True)
        node = WhiteoutNode()
        parent.children[parts[-1]] = node
        self._bump()
        return node

    def remove(self, path: str) -> None:
        parts = split_parts(path)
        if not parts:
            raise FsError("cannot remove /")
        canon = self._canonical_parts("/".join(parts[:-1]))
        if canon is None:
            raise FsError(f"no such path: {path}")
        node: Node = self._mutable_root()
        for part in canon:
            node = self._unshare_child(node, part)  # type: ignore[arg-type]
        if not isinstance(node, DirNode) or parts[-1] not in node.children:
            raise FsError(f"no such path: {path}")
        del node.children[parts[-1]]
        self._bump()

    def attach(self, path: str, node: Node) -> None:
        """Graft an existing node (subtree) at ``path``.

        The node is aliased, never copied: mutations made through *this*
        tree copy up as usual, but in-place mutation of an unshared
        attached node (by whoever still holds it) stays visible here —
        the historical graft semantics.
        """
        parts = split_parts(path)
        if not parts:
            if not isinstance(node, DirNode):
                raise FsError("root must be a directory")
            self.root = node
            self._bump()
            return
        parent = self.mkdir("/".join(parts[:-1]), parents=True)
        parent.children[parts[-1]] = node
        self._bump()

    def chmod(self, path: str, mode: int) -> Node:
        """Change the mode of the entry at ``path`` (copy-up aware)."""
        node = self._mutable_node(path)
        node.chmod(mode)
        self._bump()
        return node

    def chown(self, path: str, uid: int, gid: int) -> Node:
        """Change ownership of the entry at ``path`` (copy-up aware)."""
        node = self._mutable_node(path)
        node.chown(uid, gid)
        self._bump()
        return node

    def write(self, path: str, data: bytes) -> FileNode:
        """Replace the content of the file at ``path`` (copy-up aware)."""
        node = self._mutable_node(path)
        if not isinstance(node, FileNode):
            raise FsError(f"not a file: {path}")
        node.write(data)
        self._bump()
        return node

    # -- iteration & aggregate stats -----------------------------------------
    def walk(self, top: str = "/") -> _t.Iterator[tuple[str, Node]]:
        """Yield (path, node) for every node below ``top`` (depth-first)."""
        start = self._resolve(top, follow_symlinks=False)
        if start is None:
            raise FsError(f"no such path: {top}")
        base = normalize(top)

        def _walk(prefix: str, node: Node) -> _t.Iterator[tuple[str, Node]]:
            yield prefix, node
            if isinstance(node, DirNode):
                for name in sorted(node.children):
                    child_prefix = prefix.rstrip("/") + "/" + name
                    yield from _walk(child_prefix, node.children[name])

        yield from _walk(base, start)

    def scan_cache(self, top: str = "/") -> dict:
        """Memo dict for scan-derived aggregates below ``top``.

        Entries must be pure functions of the subtree content and the
        ``top`` string (file listings, size sums, per-batch IO costs...).
        For a shared (frozen, hence immutable) start node the dict lives
        on the node and is reused by every tree aliasing it; otherwise
        it lives on this tree and is dropped whenever a mutation bumps
        the generation counter.
        """
        start = self._resolve(top, follow_symlinks=False)
        if start is None:
            raise FsError(f"no such path: {top}")
        if start.shared:
            cache = start.__dict__.get("_scan_cache")
            if cache is None:
                cache = {}
                start.__dict__["_scan_cache"] = cache
            return cache
        if self._scan_gen != self._gen:
            self._scan_cache = {}
            self._scan_gen = self._gen
        return self._scan_cache

    def files_list(self, top: str = "/") -> list[tuple[str, FileNode]]:
        """Memoized list of (path, FileNode) below ``top`` (walk order)."""
        cache = self.scan_cache(top)
        key = ("files", top)
        files = cache.get(key)
        if files is None:
            files = [(p, n) for p, n in self.walk(top) if isinstance(n, FileNode)]
            cache[key] = files
        return files

    def files(self, top: str = "/") -> _t.Iterator[tuple[str, FileNode]]:
        return iter(self.files_list(top))

    def num_files(self, top: str = "/") -> int:
        return len(self.files_list(top))

    def total_size(self, top: str = "/") -> int:
        cache = self.scan_cache(top)
        key = ("total_size", top)
        total = cache.get(key)
        if total is None:
            total = sum(node.size for _, node in self.files_list(top))
            cache[key] = total
        return total

    def clone(self) -> "FileTree":
        """O(1) copy-on-write clone: freeze the root and alias it.

        The first clone of a tree pays one marking walk; after that both
        trees mutate independently by copying up only the touched spine.
        """
        self.root._freeze()
        counters = _profile.counters
        if counters.enabled:
            counters.cow_clones += 1
        return FileTree(root=self.root)

    def deep_clone(self) -> "FileTree":
        """A genuinely independent copy: fresh nodes, fresh inode numbers.

        This is the pre-CoW ``clone()`` semantics, kept for callers (and
        property tests) that need node *identity* to diverge, not just
        tree state.
        """

        def _copy(node: Node) -> Node:
            dup = node.copy_shallow()
            if isinstance(node, DirNode):
                dup.children = {  # type: ignore[attr-defined]
                    name: _copy(child) for name, child in node.children.items()
                }
            return dup

        return FileTree(root=_copy(self.root))  # type: ignore[arg-type]

    def merge_from(self, other: "FileTree", at: str = "/") -> None:
        """Deep-merge another tree's contents under ``at`` (upper wins).

        Source subtrees are frozen and *shared*, not copied: applying a
        layer is O(entries in the layer), and the source tree can never
        be corrupted through the merged-into tree (mutations there copy
        up before touching shared nodes).
        """
        target_root = self.mkdir(at, parents=True)

        def _merge(dst: DirNode, src: DirNode) -> None:
            for name, child in src.children.items():
                if isinstance(child, WhiteoutNode):
                    dst.children.pop(name, None)
                    continue
                existing = dst.children.get(name)
                if isinstance(child, DirNode) and isinstance(existing, DirNode):
                    if existing.shared:
                        existing = self._unshare_child(dst, name)  # type: ignore[assignment]
                    _merge(existing, child)  # type: ignore[arg-type]
                else:
                    child._freeze()
                    dst.children[name] = child
        _merge(target_root, other.root)
        self._bump()

    def __repr__(self) -> str:
        return f"<FileTree files={self.num_files()} bytes={self.total_size()}>"
