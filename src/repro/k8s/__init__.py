"""A minimal-but-faithful Kubernetes: API server with watches, scheduler,
kubelets speaking CRI to a container engine, the K3s single-binary
bundle, the KNoC-style virtual kubelet, and the WLM bridge operator —
everything §6's integration scenarios need."""

from repro.k8s.objects import (
    ContainerSpec,
    K8sNode,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
    ResourceRequests,
)
from repro.k8s.apiserver import APIServer, WatchEvent
from repro.k8s.scheduler import K8sScheduler
from repro.k8s.cri import CRIRuntime
from repro.k8s.kubelet import Kubelet, KubeletError
from repro.k8s.k3s import FullK8sServer, K3sServer
from repro.k8s.virtual_kubelet import VirtualKubelet
from repro.k8s.controller import NodeLifecycleController
from repro.k8s.operators import BridgeOperator, WLMJobRequest

__all__ = [
    "APIServer",
    "BridgeOperator",
    "CRIRuntime",
    "ContainerSpec",
    "FullK8sServer",
    "K3sServer",
    "K8sNode",
    "K8sScheduler",
    "Kubelet",
    "KubeletError",
    "NodeLifecycleController",
    "ObjectMeta",
    "Pod",
    "PodPhase",
    "PodSpec",
    "ResourceRequests",
    "VirtualKubelet",
    "WLMJobRequest",
    "WatchEvent",
]
