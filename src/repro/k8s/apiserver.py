"""The Kubernetes API server: typed object store with watch streams."""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing as _t

from repro.k8s.objects import K8sNode, ObjectMeta, Pod
from repro.sim import profile as _profile
from repro.sim.signal import Signal


class WatchEventType(enum.Enum):
    ADDED = "ADDED"
    MODIFIED = "MODIFIED"
    DELETED = "DELETED"


@dataclasses.dataclass(frozen=True)
class WatchEvent:
    type: WatchEventType
    kind: str
    obj: object


WatchCallback = _t.Callable[[WatchEvent], None]


class _KindWatchers:
    """Watch registrations for one kind, split by routing key.

    ``unkeyed`` watchers see every event (the classic fan-out);
    ``keyed`` watchers see only events whose object's ``node_name``
    equals their key — the simulation's informer-cache shortcut, so a
    thousand kubelets cost one dict probe per event instead of a
    thousand predicate calls.  Registration order is preserved across
    both groups by a per-kind sequence number, so the effectual
    callback order is identical to the unkeyed fan-out.
    """

    __slots__ = ("unkeyed", "keyed", "seq")

    def __init__(self) -> None:
        self.unkeyed: list[tuple[int, WatchCallback]] = []
        self.keyed: dict[str, list[tuple[int, WatchCallback]]] = {}
        self.seq = 0


class APIServer:
    """etcd + apiserver in one object.

    Objects are stored per kind; watches are synchronous callbacks (the
    simulation's stand-in for watch streams).  An optional per-request
    latency models the control-plane RPC cost.
    """

    #: request latency billed to callers who account time themselves
    request_latency = 1.5e-3

    def __init__(self) -> None:
        self._store: dict[str, dict[tuple[str, str], object]] = {}
        self._watchers: dict[str, _KindWatchers] = {}
        self._resource_version = itertools.count(1)
        self.stats = {"requests": 0, "watch_events": 0}

    # -- helpers -----------------------------------------------------------------
    @staticmethod
    def _meta(obj: object) -> ObjectMeta:
        meta = getattr(obj, "metadata", None)
        if not isinstance(meta, ObjectMeta):
            raise TypeError(f"object {obj!r} has no ObjectMeta")
        return meta

    def _notify(self, event: WatchEvent) -> None:
        watchers = self._watchers.get(event.kind)
        if watchers is None:
            return
        if watchers.keyed:
            # Keyed fast path: one dict probe routes the event to the
            # watcher(s) registered for the object's node, skipping the
            # fan-out over every other keyed watcher entirely.
            if _profile.counters.enabled:
                _profile.counters.watch_batched_notifies += 1
            matches = watchers.keyed.get(getattr(event.obj, "node_name", None))
            if matches:
                targets = sorted([*watchers.unkeyed, *matches])
            else:
                targets = list(watchers.unkeyed)
        else:
            targets = list(watchers.unkeyed)
        for _seq, callback in targets:
            self.stats["watch_events"] += 1
            callback(event)

    # -- CRUD ---------------------------------------------------------------------
    def create(self, kind: str, obj: object) -> object:
        self.stats["requests"] += 1
        meta = self._meta(obj)
        bucket = self._store.setdefault(kind, {})
        if meta.key in bucket:
            raise KeyError(f"{kind} {meta.namespace}/{meta.name} already exists")
        meta.resource_version = next(self._resource_version)
        bucket[meta.key] = obj
        self._notify(WatchEvent(WatchEventType.ADDED, kind, obj))
        return obj

    def get(self, kind: str, name: str, namespace: str = "default") -> object | None:
        self.stats["requests"] += 1
        return self._store.get(kind, {}).get((namespace, name))

    def list(self, kind: str, namespace: str | None = None) -> list[object]:
        self.stats["requests"] += 1
        objs = list(self._store.get(kind, {}).values())
        if namespace is None:
            return objs
        return [o for o in objs if self._meta(o).namespace == namespace]

    def update(self, kind: str, obj: object) -> object:
        self.stats["requests"] += 1
        meta = self._meta(obj)
        bucket = self._store.setdefault(kind, {})
        if meta.key not in bucket:
            raise KeyError(f"{kind} {meta.namespace}/{meta.name} not found")
        meta.resource_version = next(self._resource_version)
        bucket[meta.key] = obj
        self._notify(WatchEvent(WatchEventType.MODIFIED, kind, obj))
        return obj

    def delete(self, kind: str, name: str, namespace: str = "default") -> object | None:
        self.stats["requests"] += 1
        bucket = self._store.get(kind, {})
        obj = bucket.pop((namespace, name), None)
        if obj is not None:
            self._notify(WatchEvent(WatchEventType.DELETED, kind, obj))
        return obj

    # -- watch ---------------------------------------------------------------------
    def watch(
        self,
        kind: str,
        callback: WatchCallback,
        replay_existing: bool = True,
        key: str | None = None,
    ) -> None:
        """Register a watch callback.

        With ``key`` set the callback is *keyed*: it only receives
        events whose object's ``node_name`` equals the key (events with
        no matching key reach no keyed watcher).  Replay ignores the
        key — callers replaying existing objects filter themselves, as
        they already must for the unkeyed path.
        """
        watchers = self._watchers.setdefault(kind, _KindWatchers())
        entry = (watchers.seq, callback)
        watchers.seq += 1
        if key is None:
            watchers.unkeyed.append(entry)
        else:
            watchers.keyed.setdefault(key, []).append(entry)
        if replay_existing:
            for obj in self._store.get(kind, {}).values():
                callback(WatchEvent(WatchEventType.ADDED, kind, obj))

    def unwatch(self, kind: str, callback: WatchCallback) -> None:
        watchers = self._watchers.get(kind)
        if watchers is None:
            return
        for i, (_seq, cb) in enumerate(watchers.unkeyed):
            if cb is callback:
                del watchers.unkeyed[i]
                return
        for key, entries in watchers.keyed.items():
            for i, (_seq, cb) in enumerate(entries):
                if cb is callback:
                    del entries[i]
                    if not entries:
                        del watchers.keyed[key]
                    return

    def watch_signal(
        self,
        kind: str,
        signal: Signal,
        predicate: _t.Callable[[WatchEvent], bool] | None = None,
        replay_existing: bool = False,
        key: str | None = None,
    ) -> WatchCallback:
        """Fire ``signal`` on every matching watch event.

        The bridge between the watch fan-out and tickless control loops:
        instead of a bespoke callback juggling bell events, a loop parks
        on a :class:`~repro.sim.signal.Signal` and producers reach it
        through the ordinary watch path.  Returns the registered callback
        so callers can :meth:`unwatch` it.
        """

        def callback(event: WatchEvent) -> None:
            if predicate is None or predicate(event):
                signal.fire(event)

        self.watch(kind, callback, replay_existing=replay_existing, key=key)
        return callback

    # -- typed conveniences ------------------------------------------------------------
    def peek(self, kind: str) -> list[object]:
        """List objects without billing a request.

        Simulation-internal: tickless loops use this to decide whether to
        park, a check the real system gets for free from its informer
        caches — it must not distort the modelled request load.
        """
        return list(self._store.get(kind, {}).values())

    def pods(self, namespace: str | None = None) -> list[Pod]:
        return [p for p in self.list("Pod", namespace) if isinstance(p, Pod)]

    def nodes(self) -> list[K8sNode]:
        return [n for n in self.list("Node") if isinstance(n, K8sNode)]
