"""Node lifecycle controller: detect dead kubelets, fail their pods.

The controller-manager piece the §6 scenarios need for failure handling:
a kubelet that stops heartbeating (allocation cancelled, node crashed)
gets its node marked NotReady, and after an eviction grace period its
running pods are failed so higher layers can reschedule or report.
"""

from __future__ import annotations

from repro.k8s.apiserver import APIServer
from repro.k8s.objects import K8sNode, Pod, PodPhase
from repro.sim import Environment


class NodeLifecycleController:
    """Watches heartbeats; fails pods stuck on dead nodes."""

    #: heartbeat age after which a node is NotReady
    node_monitor_grace = 40.0
    #: additional delay before pods on a NotReady node are failed
    pod_eviction_timeout = 30.0
    check_interval = 5.0

    def __init__(self, env: Environment, apiserver: APIServer):
        self.env = env
        self.api = apiserver
        self.stats = {"nodes_marked_not_ready": 0, "pods_evicted": 0}
        self._not_ready_since: dict[str, float] = {}
        env.process(self._loop(), name="node-lifecycle-controller")

    def _loop(self):
        while True:
            yield self.env.timeout(self.check_interval)
            self._check_nodes()
            self._evict_from_dead_nodes()

    def _check_nodes(self) -> None:
        for node in self.api.nodes():
            stale = self.env.now - node.condition.last_heartbeat > self.node_monitor_grace
            name = node.metadata.name
            if node.condition.ready and stale:
                node.condition.ready = False
                self.api.update("Node", node)
                self._not_ready_since[name] = self.env.now
                self.stats["nodes_marked_not_ready"] += 1
            elif not node.condition.ready and name not in self._not_ready_since:
                self._not_ready_since[name] = self.env.now
            elif node.condition.ready:
                self._not_ready_since.pop(name, None)

    def _evict_from_dead_nodes(self) -> None:
        for pod in self.api.pods():
            if pod.phase is not PodPhase.RUNNING or pod.node_name is None:
                continue
            since = self._not_ready_since.get(pod.node_name)
            if since is None:
                continue
            if self.env.now - since >= self.pod_eviction_timeout:
                pod.phase = PodPhase.FAILED
                pod.end_time = self.env.now
                pod.message = f"node {pod.node_name} not ready"
                node = self.api.get("Node", pod.node_name)
                if isinstance(node, K8sNode):
                    node.release(pod.spec.total_requests())
                    self.api.update("Node", node)
                self.api.update("Pod", pod)
                self.stats["pods_evicted"] += 1
