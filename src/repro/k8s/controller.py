"""Node lifecycle controller: detect dead kubelets, fail their pods.

The controller-manager piece the §6 scenarios need for failure handling:
a kubelet that stops heartbeating (allocation cancelled, node crashed)
gets its node marked NotReady, and after an eviction grace period its
running pods are failed so higher layers can reschedule or report.
"""

from __future__ import annotations

from repro.k8s.apiserver import APIServer
from repro.k8s.objects import K8sNode, Pod, PodPhase
from repro.sim import Environment, Signal
from repro.sim.signal import count_skipped_ticks


class NodeLifecycleController:
    """Watches heartbeats; fails pods stuck on dead nodes."""

    #: heartbeat age after which a node is NotReady
    node_monitor_grace = 40.0
    #: additional delay before pods on a NotReady node are failed
    pod_eviction_timeout = 30.0
    check_interval = 5.0

    def __init__(self, env: Environment, apiserver: APIServer):
        self.env = env
        self.api = apiserver
        self.stats = {"nodes_marked_not_ready": 0, "pods_evicted": 0}
        self._not_ready_since: dict[str, float] = {}
        self._wakeup = Signal(env)
        apiserver.watch_signal("Node", self._wakeup, replay_existing=False)
        apiserver.watch_signal("Pod", self._wakeup, replay_existing=False)
        env.process(self._loop(), name="node-lifecycle-controller")

    def _loop(self):
        # Tickless reconcile.  The polling loop checked every node every
        # 5 s; almost all of those checks were no-ops.  Here the loop
        # predicts, from current heartbeats and `_not_ready_since`
        # bookkeeping, the first grid tick at which a check would *act*,
        # parks until then (or until a Node/Pod watch event invalidates
        # the prediction), and runs the unchanged check/evict body exactly
        # at that tick.  `cursor` walks the 5 s grid by the same
        # sequential float additions the polling loop performed, so acted
        # ticks land on bit-identical times.
        wakeup = self._wakeup
        cursor = self.env.now
        while True:
            duty = self._next_duty_tick(cursor)
            if duty is None:
                token = wakeup.park()
                yield token
                wakeup.unpark(token)
                continue
            tick, skipped = duty
            if tick > self.env.now:
                token = wakeup.park(tick)
                cause = yield token
                wakeup.unpark(token)
                if cause is Signal.FIRED:
                    continue  # state changed: re-predict the next duty tick
            count_skipped_ticks(skipped)
            cursor = tick
            self._check_nodes()
            self._evict_from_dead_nodes()

    def _next_duty_tick(self, cursor: float) -> tuple[float, int] | None:
        """First grid tick after ``cursor`` where the check body would do
        observable work under the *current* state, with the count of idle
        grid ticks skipped over; ``None`` if no future tick ever would.

        Ticks between ``cursor`` and now are counted as skipped without
        evaluation: the loop was parked across them precisely because the
        state of that era predicted no duty, and any change since then
        woke the loop for a re-prediction.
        """
        nodes = [n for n in self.api.peek("Node") if isinstance(n, K8sNode)]
        running_nodes = {
            p.node_name
            for p in self.api.peek("Pod")
            if isinstance(p, Pod) and p.phase is PodPhase.RUNNING and p.node_name
        }
        if not self._has_potential_duty(nodes, running_nodes):
            return None
        now = self.env.now
        tick = cursor + self.check_interval
        skipped = 0
        while tick < now or not self._duty_at(tick, nodes, running_nodes):
            tick += self.check_interval
            skipped += 1
        return tick, skipped

    def _has_potential_duty(self, nodes: list[K8sNode], running_nodes: set) -> bool:
        for node in nodes:
            name = node.metadata.name
            if node.condition.ready:
                return True  # staleness deadline always eventually arrives
            if name not in self._not_ready_since:
                return True  # next tick must record when it went dark
            if name in running_nodes:
                return True  # eviction deadline pending
        return False

    def _duty_at(self, t: float, nodes: list[K8sNode], running_nodes: set) -> bool:
        """Would `_check_nodes` / `_evict_from_dead_nodes` act at tick ``t``?

        Mirrors their comparisons expression-for-expression so float
        rounding matches the polling loop exactly.
        """
        for node in nodes:
            name = node.metadata.name
            if node.condition.ready:
                if t - node.condition.last_heartbeat > self.node_monitor_grace:
                    return True
                if name in self._not_ready_since:
                    return True  # needs the bookkeeping pop
                continue
            since = self._not_ready_since.get(name)
            if since is None:
                return True
            if name in running_nodes and t - since >= self.pod_eviction_timeout:
                return True
        return False

    def _check_nodes(self) -> None:
        for node in self.api.nodes():
            stale = self.env.now - node.condition.last_heartbeat > self.node_monitor_grace
            name = node.metadata.name
            if node.condition.ready and stale:
                node.condition.ready = False
                self.api.update("Node", node)
                self._not_ready_since[name] = self.env.now
                self.stats["nodes_marked_not_ready"] += 1
            elif not node.condition.ready and name not in self._not_ready_since:
                self._not_ready_since[name] = self.env.now
            elif node.condition.ready:
                self._not_ready_since.pop(name, None)

    def _evict_from_dead_nodes(self) -> None:
        for pod in self.api.pods():
            if pod.phase is not PodPhase.RUNNING or pod.node_name is None:
                continue
            since = self._not_ready_since.get(pod.node_name)
            if since is None:
                continue
            if self.env.now - since >= self.pod_eviction_timeout:
                pod.phase = PodPhase.FAILED
                pod.end_time = self.env.now
                pod.message = f"node {pod.node_name} not ready"
                node = self.api.get("Node", pod.node_name)
                if isinstance(node, K8sNode):
                    node.release(pod.spec.total_requests())
                    self.api.update("Node", node)
                self.api.update("Pod", pod)
                self.stats["pods_evicted"] += 1
