"""The Container Runtime Interface shim between kubelet and engine.

Kubelets don't call engines directly; they speak CRI.  This shim adapts
a :class:`~repro.engines.base.ContainerEngine` (or anything with its
``pull``/``run`` surface) to the handful of CRI verbs the kubelet needs.
"""

from __future__ import annotations

import typing as _t

from repro.engines.base import ContainerEngine, PulledImage, RunResult
from repro.kernel.process import SimProcess
from repro.oci.image import ImageReference
from repro.registry.distribution import OCIDistributionRegistry


class CRIRuntime:
    """CRI facade over a container engine."""

    #: per-CRI-call gRPC overhead
    call_latency = 1e-3

    def __init__(self, engine: ContainerEngine, registry: OCIDistributionRegistry):
        self.engine = engine
        self.registry = registry
        self.stats = {"pulls": 0, "containers": 0}

    def pull_image(self, image_ref: str, now: float = 0.0) -> PulledImage:
        ref = ImageReference.parse(image_ref)
        self.stats["pulls"] += 1
        return self.engine.pull(ref.repository, ref.tag, self.registry, now=now)

    def run_container(
        self,
        pulled: PulledImage,
        user: SimProcess,
        command: tuple[str, ...] = (),
        cgroup_path: str | None = None,
    ) -> RunResult:
        self.stats["containers"] += 1
        return self.engine.run(
            pulled,
            user,
            command=command or None,
            cgroup_path=cgroup_path,
        )

    def stop_container(self, result: RunResult, exit_code: int = 0) -> None:
        container = result.container
        if container.state.value == "running":
            self.engine.runtime.finish(container, exit_code)
