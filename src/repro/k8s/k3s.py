"""Control-plane bundles: full Kubernetes and the pared-down K3s.

K3s is "a fully conformant, pared down version packaged in a single
binary" (§6) — same API, much faster cold start, which is what makes the
Kubernetes-in-WLM scenarios (§6.3, §6.5) viable at all.
"""

from __future__ import annotations

from repro.cluster.network import Interconnect
from repro.k8s.apiserver import APIServer
from repro.k8s.scheduler import K8sScheduler
from repro.sim import Environment


class _ControlPlane:
    """API server + scheduler with a cold-start cost."""

    name = "kubernetes"
    #: etcd quorum + apiserver + controller-manager + scheduler cold start
    startup_cost = 45.0
    #: resident control-plane memory (one reason not to run it per job)
    resident_memory = 2 * 2**30

    def __init__(
        self,
        env: Environment,
        network: Interconnect | None = None,
        indexed: bool = True,
    ):
        self.env = env
        self.network = network
        self.indexed = indexed
        self.api = APIServer()
        self.scheduler: K8sScheduler | None = None
        self.ready = env.event()
        self._proc = env.process(self._start(), name=f"{self.name}-server")

    def _start(self):
        yield self.env.timeout(self.startup_cost)
        self.scheduler = K8sScheduler(self.env, self.api, indexed=self.indexed)
        self.ready.succeed(self.env.now)

    @property
    def is_ready(self) -> bool:
        return self.ready.triggered


class FullK8sServer(_ControlPlane):
    name = "kubernetes"
    startup_cost = 45.0
    resident_memory = 2 * 2**30


class K3sServer(_ControlPlane):
    """Single-binary lightweight distribution (sqlite instead of etcd)."""

    name = "k3s"
    startup_cost = 8.0
    resident_memory = 512 * 2**20
