"""The kubelet: node agent that makes bound pods real.

Supports the rootless mode §6.5 depends on: running as an unprivileged
WLM user inside an allocation, which requires user namespaces, cgroup
v2, and a delegated cgroup subtree — all verified against the node's
(simulated) kernel at startup.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.network import Interconnect
from repro.faults.injector import injector as _faults
from repro.k8s.apiserver import APIServer
from repro.k8s.cri import CRIRuntime
from repro.k8s.objects import (
    K8sNode,
    NodeCondition,
    ObjectMeta,
    Pod,
    PodPhase,
    ResourceRequests,
)
from repro.kernel.process import SimProcess
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Environment, Interrupt, Signal
from repro.sim.signal import count_skipped_ticks, next_tick


class KubeletError(RuntimeError):
    pass


class Kubelet:
    """One node agent."""

    #: cold start: config load, CRI probe, node registration
    startup_cost = 2.0
    sync_interval = 0.5
    heartbeat_interval = 10.0
    #: max virtual seconds a pod start may spend waiting on one image
    #: pull (including the engine's retry backoff) before the pod FAILs;
    #: None disables the deadline
    pull_deadline: float | None = 120.0

    def __init__(
        self,
        env: Environment,
        apiserver: APIServer,
        node_name: str,
        cri: CRIRuntime,
        capacity: ResourceRequests | None = None,
        labels: dict[str, str] | None = None,
        network: Interconnect | None = None,
        #: rootless mode: the WLM-allocation user process this kubelet runs as
        user_proc: SimProcess | None = None,
        #: delegated cgroup subtree for pod cgroups (rootless mode)
        cgroup_path: str | None = None,
        #: retained pre-optimization mode: unkeyed watch fan-out and
        #: full store scans per sync, instead of the keyed watch + inbox
        naive: bool = False,
    ):
        self.env = env
        self.api = apiserver
        self.node_name = node_name
        self.cri = cri
        self.capacity = capacity or ResourceRequests(cpu=64, memory=256 * 2**30, gpu=0)
        self.labels = labels or {}
        self.network = network
        self.user_proc = user_proc
        self.cgroup_path = cgroup_path
        self.k8s_node: K8sNode | None = None
        self._proc = None
        self._running = False
        self._active_pods: dict[str, object] = {}
        #: fired by the apiserver watch when a pod lands on this node
        self._wakeup = Signal(env)
        self.naive = naive
        #: pods routed here by the keyed watch, drained by _sync — the
        #: informer-cache stand-in that replaces per-sync store scans
        self._inbox: list[Pod] = []
        self._inbox_uids: set[str] = set()
        self._metric_keys: tuple | None = None
        self.stats = {"pods_started": 0, "pods_finished": 0, "sync_loops": 0}

    @property
    def rootless(self) -> bool:
        return self.user_proc is not None and not self.user_proc.creds.is_root

    def _validate_rootless(self) -> None:
        """§6.5: 'enabling version 2 of the Linux cgroups framework,
        cgroup delegations, and setting a suitable network configuration'."""
        kernel = self.cri.engine.kernel
        if not kernel.config.unprivileged_userns:
            raise KubeletError("rootless kubelet needs unprivileged user namespaces")
        if kernel.config.cgroup_version != 2:
            raise KubeletError("rootless kubelet needs cgroup v2")
        if self.cgroup_path is None:
            raise KubeletError("rootless kubelet needs a delegated cgroup subtree")
        assert self.user_proc is not None
        node_cg = kernel.cgroups._resolve(self.cgroup_path)
        if node_cg.delegated_uid() != self.user_proc.creds.uid:
            raise KubeletError(
                f"cgroup {self.cgroup_path} is not delegated to uid "
                f"{self.user_proc.creds.uid}"
            )

    # -- lifecycle -----------------------------------------------------------------
    def start(self):
        """Begin the kubelet process; returns the sim process.

        The node is registered and Ready once ``startup_cost`` has
        elapsed.  Rootless kubelets (``user_proc`` set) first verify the
        §6.5 prerequisites — unprivileged user namespaces, cgroup v2,
        and a delegated cgroup subtree — raising :class:`KubeletError`
        if the node's kernel lacks any of them.  While the fault
        injector is armed, the kubelet also subscribes to ``"wlm.node"``
        crash events for its own node.
        """
        if self.rootless:
            self._validate_rootless()
        self._running = True
        if _faults.enabled:
            _faults.register("wlm.node", self._on_node_fault)
        self._proc = self.env.process(self._main(), name=f"kubelet-{self.node_name}")
        return self._proc

    def stop(self) -> None:
        """Shut down gracefully: the sync loop exits, the node object is
        marked NotReady, and the pod watch is dropped.  Running pods are
        left alone (use :meth:`crash` for unclean death).  No-op if the
        kubelet is already stopping — a crashed agent may have a stop
        interrupt still in flight."""
        if not self._running:
            return
        self._running = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause="kubelet stop")

    def crash(self, reason: str = "node crash") -> None:
        """Die with the node: no graceful drain, nothing left behind.

        Active pods transition to FAILED, their containers are force-
        stopped, and any other non-terminal container in the engine is
        aborted — a dead node must not hold lingering processes or
        mounts (§3.2).  Idempotent once the kubelet is down.
        """
        if not self._running:
            return
        self.evict_active_pods(reason=reason)
        self.cri.engine.abort_all()
        if _metrics.registry.enabled:
            _metrics.inc("k8s.kubelet.crashes", node=self.node_name)
        self._running = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt(cause=reason)

    def evict_active_pods(self, reason: str = "evicted") -> int:
        """Fail every pod this kubelet is tracking; returns the count."""
        n = 0
        for pod in list(self._active_pods.values()):
            results = list(getattr(pod, "container_results", None) or [])
            self._fail_pod(pod, results, reason=reason)
            n += 1
        return n

    def _on_node_fault(self, event, phase: str) -> None:
        """Push handler: an injected NODE_CRASH for this node kills us."""
        if phase == "crash" and event.target == self.node_name:
            self.crash(reason=f"node crash (injected, t={event.at:.1f})")

    def _rpc(self):
        if self.network is not None:
            return self.env.timeout(self.network.rpc_cost())
        return self.env.timeout(self.api.request_latency)

    def _main(self):
        yield self.env.timeout(self.startup_cost)
        yield self._rpc()
        node = K8sNode(
            metadata=ObjectMeta(name=self.node_name, labels=dict(self.labels)),
            capacity=self.capacity,
            condition=NodeCondition(ready=True, last_heartbeat=self.env.now),
        )
        existing = self.api.get("Node", self.node_name)
        if existing is None:
            self.api.create("Node", node)
        else:
            assert isinstance(existing, K8sNode)
            existing.condition = NodeCondition(ready=True, last_heartbeat=self.env.now)
            node = existing
            self.api.update("Node", node)
        self.k8s_node = node
        last_heartbeat = self.env.now
        wakeup = self._wakeup
        watch_cb = self._on_pod_watch
        self.api.watch(
            "Pod",
            watch_cb,
            replay_existing=False,
            key=None if self.naive else self.node_name,
        )
        if not self.naive:
            # Seed the inbox from the store: pods bound to this node
            # before the watch existed (e.g. left PENDING by a previous
            # agent incarnation) must still be synced, exactly as the
            # naive per-sync store scan would find them.
            for pod in self.api.peek("Pod"):
                if (
                    isinstance(pod, Pod)
                    and pod.node_name == self.node_name
                    and pod.phase is PodPhase.PENDING
                    and pod.metadata.uid not in self._active_pods
                    and pod.metadata.uid not in self._inbox_uids
                ):
                    self._inbox_uids.add(pod.metadata.uid)
                    self._inbox.append(pod)
        try:
            # Tickless sync loop.  With pending pods it polls on the same
            # 0.5 s grid as before; idle, it parks until either a pod
            # lands on this node (watch fires `wakeup`) or the grid tick
            # that is due for a heartbeat.  A signal-woken loop re-aligns
            # to the next grid boundary, so every observable virtual time
            # matches the polling version bit for bit.
            while self._running:
                epoch = self.env.now
                if self._pending_pods():
                    yield self.env.timeout(self.sync_interval)
                else:
                    tick = epoch + self.sync_interval
                    skipped = 0
                    while tick - last_heartbeat < self.heartbeat_interval:
                        tick += self.sync_interval
                        skipped += 1
                    token = wakeup.park(tick)
                    cause = yield token
                    wakeup.unpark(token)
                    if cause is Signal.FIRED:
                        tick, skipped = next_tick(epoch, self.sync_interval, self.env.now)
                        count_skipped_ticks(skipped)
                        yield self.env.timeout_until(tick)
                    else:
                        count_skipped_ticks(skipped)
                self.stats["sync_loops"] += 1
                if _metrics.registry.enabled:
                    _metrics.registry.inc_series(self._series_keys()[0])
                yield from self._sync()
                if self.env.now - last_heartbeat >= self.heartbeat_interval:
                    node.condition.last_heartbeat = self.env.now
                    yield self._rpc()
                    self.api.update("Node", node)
                    last_heartbeat = self.env.now
                    _trace.tracer.instant("k8s.kubelet.heartbeat", node=self.node_name)
        except Interrupt:
            pass
        _faults.unregister("wlm.node", self._on_node_fault)
        self.api.unwatch("Pod", watch_cb)
        node.condition.ready = False
        self.api.update("Node", node)

    def _wants_pod_event(self, event) -> bool:
        obj = event.obj
        return (
            isinstance(obj, Pod)
            and obj.node_name == self.node_name
            and obj.phase is PodPhase.PENDING
        )

    def _on_pod_watch(self, event) -> None:
        """The Pod watch callback: route matching events to the inbox
        (fast mode) and fire the sync loop's wakeup signal."""
        if not self._wants_pod_event(event):
            return
        if not self.naive:
            uid = event.obj.metadata.uid
            if uid not in self._inbox_uids and uid not in self._active_pods:
                self._inbox_uids.add(uid)
                self._inbox.append(event.obj)
        self._wakeup.fire(event)

    def _pending_pods(self) -> bool:
        if not self.naive:
            return bool(self._inbox)
        for pod in self.api.peek("Pod"):
            if (
                isinstance(pod, Pod)
                and pod.node_name == self.node_name
                and pod.phase is PodPhase.PENDING
                and pod.metadata.uid not in self._active_pods
            ):
                return True
        return False

    # -- pod sync --------------------------------------------------------------------
    def _sync(self):
        if self.naive:
            for pod in self.api.pods():
                if pod.node_name != self.node_name:
                    continue
                if pod.phase is PodPhase.PENDING and pod.metadata.uid not in self._active_pods:
                    yield from self._start_pod(pod)
            return
        # Drain a snapshot: pods landing while a start yields belong to
        # the next sync, exactly as the store-scan path snapshots the
        # pod list at sync start.
        batch = self._inbox
        self._inbox = []
        for pod in batch:
            self._inbox_uids.discard(pod.metadata.uid)
            if (
                pod.node_name != self.node_name
                or pod.phase is not PodPhase.PENDING
                or pod.metadata.uid in self._active_pods
            ):
                continue
            yield from self._start_pod(pod)

    def _start_pod(self, pod: Pod):
        """Make a bound pod real: pull images, run containers, go RUNNING.

        Failure propagation: a pull that exhausts the engine's retry
        budget (:class:`~repro.faults.retry.RetryExhausted`), exceeds
        :attr:`pull_deadline`, or any container/hook error fails the
        *pod* — partial containers are stopped, node resources released,
        and the pod lands in FAILED with a ``failure_reason`` — rather
        than wedging the kubelet's sync loop.
        """
        self._active_pods[pod.metadata.uid] = pod
        results: list = []
        # Published incrementally so an eviction mid-start can still
        # reach (and stop) the containers created so far.
        pod.container_results = results
        user = self.user_proc or self.cri.engine.kernel.init
        started_at = self.env.now
        with _trace.span(
            "k8s.pod.start", pod=pod.metadata.name, node=self.node_name
        ):
            try:
                for cspec in pod.spec.containers:
                    pulled = self.cri.pull_image(cspec.image, now=self.env.now)
                    deadline = self.pull_deadline
                    if deadline is not None and pulled.pull_cost > deadline:
                        yield self.env.timeout(deadline)
                        raise KubeletError(
                            f"pull of {cspec.image!r} exceeded deadline"
                            f" ({pulled.pull_cost:.1f}s > {deadline:.1f}s)"
                        )
                    yield self.env.timeout(pulled.pull_cost)
                    cgroup = (
                        f"{self.cgroup_path}/pod-{pod.metadata.uid}" if self.cgroup_path else None
                    )
                    result = self.cri.run_container(pulled, user, command=cspec.command, cgroup_path=cgroup)
                    yield self.env.timeout(result.startup_seconds - pulled.pull_cost)
                    results.append(result)
            except Interrupt:
                raise  # kubelet stop/crash, not a pod failure
            except Exception as exc:  # noqa: BLE001 - any start error fails the pod
                # Failed pulls are analytic: the engine accounted its
                # retry time in exc.elapsed but nothing was yielded yet,
                # so pay it here (capped by the pull deadline).
                elapsed = getattr(exc, "elapsed", None)
                if elapsed is not None:
                    wait = elapsed if self.pull_deadline is None else min(
                        elapsed, self.pull_deadline
                    )
                    yield self.env.timeout(wait)
                self._fail_pod(pod, results, reason=str(exc))
                return
            pod.phase = PodPhase.RUNNING
            pod.start_time = self.env.now
            yield self._rpc()
        self.api.update("Pod", pod)
        self.stats["pods_started"] += 1
        if _metrics.registry.enabled:
            keys = self._series_keys()
            _metrics.registry.inc_series(keys[1])
            _metrics.registry.observe_series(keys[2], self.env.now - started_at)
        if pod.spec.duration is not None:
            self.env.process(self._finish_pod_later(pod, results), name=f"pod-{pod.metadata.name}")

    def _fail_pod(self, pod: Pod, results: list, reason: str) -> None:
        """Propagate a start failure or eviction to the pod record.

        Partial containers are stopped, the node's resource grant is
        returned, and the pod goes FAILED with ``failure_reason`` set.
        Synchronous (no RPC cost) so crash paths can run it inline; the
        status update rides the next sync.
        """
        for result in results:
            self.cri.stop_container(result, exit_code=137)
        pod.phase = PodPhase.FAILED
        pod.end_time = self.env.now
        pod.failure_reason = reason  # type: ignore[attr-defined]
        if self.k8s_node is not None:
            self.k8s_node.release(pod.spec.total_requests())
            self.api.update("Node", self.k8s_node)
        self.api.update("Pod", pod)
        self._active_pods.pop(pod.metadata.uid, None)
        if _trace.tracer.enabled:
            _trace.tracer.instant(
                "k8s.pod.failed", pod=pod.metadata.name, node=self.node_name,
                reason=reason,
            )
        if _metrics.registry.enabled:
            _metrics.registry.inc_series(self._series_keys()[3])

    def _finish_pod_later(self, pod: Pod, results: list):
        assert pod.spec.duration is not None
        yield self.env.timeout(pod.spec.duration)
        if pod.phase is not PodPhase.RUNNING or pod.metadata.uid not in self._active_pods:
            return  # failed or evicted while the payload "ran"
        for result in results:
            self.cri.stop_container(result)
        pod.phase = PodPhase.SUCCEEDED
        pod.end_time = self.env.now
        if self.k8s_node is not None:
            self.k8s_node.release(pod.spec.total_requests())
            self.api.update("Node", self.k8s_node)
        self.api.update("Pod", pod)
        self.stats["pods_finished"] += 1
        self._active_pods.pop(pod.metadata.uid, None)
        _trace.tracer.instant(
            "k8s.pod.finished", pod=pod.metadata.name, node=self.node_name
        )
        if _metrics.registry.enabled:
            _metrics.registry.inc_series(self._series_keys()[4])

    def _series_keys(self) -> tuple:
        """Interned per-node metric keys (built once, on first enabled
        use) — the hot loops observe per pod and per sync, and a label
        dict re-sorted per event is measurable at 1k nodes."""
        keys = self._metric_keys
        if keys is None:
            reg = _metrics.registry
            keys = self._metric_keys = (
                reg.series_key("k8s.kubelet.sync_loops", node=self.node_name),
                reg.series_key("k8s.pods_started", node=self.node_name),
                reg.series_key("k8s.pod.start_seconds", node=self.node_name),
                reg.series_key("k8s.pods_failed", node=self.node_name),
                reg.series_key("k8s.pods_finished", node=self.node_name),
            )
        return keys
