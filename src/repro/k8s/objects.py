"""Kubernetes API objects (the subset the scenarios exercise)."""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing as _t

_uid_counter = itertools.count(1)


@dataclasses.dataclass
class ObjectMeta:
    name: str
    namespace: str = "default"
    labels: dict[str, str] = dataclasses.field(default_factory=dict)
    uid: str = dataclasses.field(default_factory=lambda: f"uid-{next(_uid_counter)}")
    resource_version: int = 0

    @property
    def key(self) -> tuple[str, str]:
        return (self.namespace, self.name)


@dataclasses.dataclass(frozen=True)
class ResourceRequests:
    cpu: float = 1.0          # cores
    memory: int = 1 * 2**30   # bytes
    gpu: int = 0


@dataclasses.dataclass
class ContainerSpec:
    name: str
    image: str                            # "registry/repo:tag"
    command: tuple[str, ...] = ()
    resources: ResourceRequests = ResourceRequests()
    env: dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class PodSpec:
    containers: list[ContainerSpec]
    node_selector: dict[str, str] = dataclasses.field(default_factory=dict)
    #: uid of the submitting user — HPC integrations map pods to WLM users
    user_uid: int = 1000
    #: seconds of (simulated) work; None = service pod, runs until deleted
    duration: float | None = 30.0

    def total_requests(self) -> ResourceRequests:
        return ResourceRequests(
            cpu=sum(c.resources.cpu for c in self.containers),
            memory=sum(c.resources.memory for c in self.containers),
            gpu=sum(c.resources.gpu for c in self.containers),
        )


class PodPhase(enum.Enum):
    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"


@dataclasses.dataclass
class Pod:
    metadata: ObjectMeta
    spec: PodSpec
    phase: PodPhase = PodPhase.PENDING
    node_name: str | None = None
    start_time: float | None = None
    end_time: float | None = None
    message: str = ""
    #: set by kubelets: engine run results per container
    container_results: list[object] = dataclasses.field(default_factory=list)

    @property
    def bound(self) -> bool:
        return self.node_name is not None

    def __repr__(self) -> str:
        return f"<Pod {self.metadata.namespace}/{self.metadata.name} {self.phase.value} on={self.node_name}>"


@dataclasses.dataclass
class NodeCondition:
    ready: bool = True
    last_heartbeat: float = 0.0


@dataclasses.dataclass
class K8sNode:
    metadata: ObjectMeta
    capacity: ResourceRequests = ResourceRequests(cpu=64, memory=256 * 2**30, gpu=0)
    condition: NodeCondition = dataclasses.field(default_factory=NodeCondition)
    #: resources currently claimed by bound pods (kept by the scheduler)
    allocated: ResourceRequests = ResourceRequests(cpu=0, memory=0, gpu=0)

    def allocatable(self) -> ResourceRequests:
        return ResourceRequests(
            cpu=self.capacity.cpu - self.allocated.cpu,
            memory=self.capacity.memory - self.allocated.memory,
            gpu=self.capacity.gpu - self.allocated.gpu,
        )

    def fits(self, req: ResourceRequests) -> bool:
        free = self.allocatable()
        return req.cpu <= free.cpu and req.memory <= free.memory and req.gpu <= free.gpu

    def claim(self, req: ResourceRequests) -> None:
        self.allocated = ResourceRequests(
            cpu=self.allocated.cpu + req.cpu,
            memory=self.allocated.memory + req.memory,
            gpu=self.allocated.gpu + req.gpu,
        )

    def release(self, req: ResourceRequests) -> None:
        self.allocated = ResourceRequests(
            cpu=max(0.0, self.allocated.cpu - req.cpu),
            memory=max(0, self.allocated.memory - req.memory),
            gpu=max(0, self.allocated.gpu - req.gpu),
        )
