"""The Kubernetes 'Bridge' operator (§6.4, ref [42]).

Users *explicitly* describe WLM work as a custom resource; the operator
submits it to the WLM and reflects status back.  The paper's criticism —
"the drawback of this approach is the required explicit formulation in
the resource description" — is structural: plain Pods are NOT picked up,
only WLMJobRequest objects are.
"""

from __future__ import annotations

import dataclasses

from repro.k8s.apiserver import APIServer, WatchEvent, WatchEventType
from repro.k8s.objects import ObjectMeta
from repro.sim import Environment, Signal
from repro.wlm.jobs import JobSpec
from repro.wlm.slurm import SlurmController


@dataclasses.dataclass
class WLMJobRequest:
    """The CRD: an explicit WLM job description inside Kubernetes."""

    metadata: ObjectMeta
    nodes: int
    user_uid: int
    duration: float
    cores_per_node: int = 0
    gpus_per_node: int = 0
    #: optional container image to start inside the allocation
    image: str | None = None
    #: filled by the operator
    wlm_job_id: int | None = None
    status: str = "Submitted"


class BridgeOperator:
    """Watches WLMJobRequest objects and drives the WLM."""

    KIND = "WLMJobRequest"

    def __init__(self, env: Environment, apiserver: APIServer, wlm: SlurmController,
                 engines: dict | None = None, registry=None):
        self.env = env
        self.api = apiserver
        self.wlm = wlm
        self.engines = engines or {}
        self.registry = registry
        self.stats = {"submitted": 0, "completed": 0}
        #: fired whenever a request progresses (submitted, completed) so
        #: status mirrors can park on it instead of polling the CRD
        self.request_events = Signal(env)
        apiserver.watch(self.KIND, self._on_event, replay_existing=True)

    def _on_event(self, event: WatchEvent) -> None:
        if event.type is not WatchEventType.ADDED:
            return
        request = event.obj
        assert isinstance(request, WLMJobRequest)

        def on_start(node, job, user_proc):
            if request.image is None or self.registry is None:
                return
            engine = self.engines.get(node.name)
            if engine is None:
                return
            from repro.oci.image import ImageReference

            ref = ImageReference.parse(request.image)
            pulled = engine.pull(ref.repository, ref.tag, self.registry, now=self.env.now)
            result = engine.run(pulled, user_proc)
            request.run_results = getattr(request, "run_results", [])  # type: ignore[attr-defined]
            request.run_results.append(result)  # type: ignore[attr-defined]

        def on_end(job):
            for result in getattr(request, "run_results", []):
                if result.container.state.value == "running":
                    engine = self.engines[job.allocated_nodes[0]]
                    engine.runtime.finish(result.container)
            request.status = job.state.value.capitalize()
            self.api.update(self.KIND, request)
            self.stats["completed"] += 1
            self.request_events.fire(request)

        job = self.wlm.submit(
            JobSpec(
                name=f"bridge-{request.metadata.name}",
                user_uid=request.user_uid,
                nodes=request.nodes,
                cores_per_node=request.cores_per_node,
                gpus_per_node=request.gpus_per_node,
                duration=request.duration,
                exclusive=False,
                on_start=on_start,
                on_end=on_end,
            )
        )
        job.comment = f"bridge-operator:{request.metadata.namespace}/{request.metadata.name}"
        request.wlm_job_id = job.job_id
        request.status = "Submitted"
        self.stats["submitted"] += 1
        self.request_events.fire(request)
