"""The Kubernetes pod scheduler: filter → score → bind."""

from __future__ import annotations

import typing as _t

from repro.k8s.apiserver import APIServer, WatchEvent, WatchEventType
from repro.k8s.objects import K8sNode, Pod, PodPhase
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Environment, Signal


class K8sScheduler:
    """Watch unbound pods; bind them to the least-loaded fitting node."""

    #: one scheduling pass latency
    pass_latency = 0.02

    def __init__(self, env: Environment, apiserver: APIServer):
        self.env = env
        self.api = apiserver
        # Latching signal == the recreate-an-event "bell" pattern: rings
        # while a pass is in flight coalesce into the next wait().
        self._bell = Signal(env, latch=True)
        self.stats = {"scheduled": 0, "unschedulable_events": 0}
        apiserver.watch("Pod", self._on_pod_event, replay_existing=True)
        apiserver.watch("Node", self._on_node_event, replay_existing=False)
        env.process(self._loop(), name="kube-scheduler")

    def _on_pod_event(self, event: WatchEvent) -> None:
        if event.type in (WatchEventType.ADDED, WatchEventType.MODIFIED):
            self._ring()

    def _on_node_event(self, event: WatchEvent) -> None:
        self._ring()

    def _ring(self) -> None:
        self._bell.fire()

    def _loop(self):
        while True:
            yield self._bell.wait()
            yield self.env.timeout(self.pass_latency)
            self._schedule_pass()

    # -- one pass ------------------------------------------------------------------
    def _schedule_pass(self) -> None:
        nodes = self.api.nodes()
        bound = 0
        for pod in self.api.pods():
            if pod.bound or pod.phase is not PodPhase.PENDING:
                continue
            target = self._pick_node(pod, nodes)
            if target is None:
                self.stats["unschedulable_events"] += 1
                if _metrics.registry.enabled:
                    _metrics.inc("k8s.scheduler.unschedulable")
                continue
            req = pod.spec.total_requests()
            target.claim(req)
            pod.node_name = target.metadata.name
            self.api.update("Pod", pod)
            self.api.update("Node", target)
            self.stats["scheduled"] += 1
            bound += 1
            _trace.tracer.instant(
                "k8s.bind", pod=pod.metadata.name, node=target.metadata.name
            )
            if _metrics.registry.enabled:
                _metrics.inc("k8s.scheduler.binds", node=target.metadata.name)
        if _trace.tracer.enabled:
            # The pass's think time elapsed just before this call (the
            # loop sleeps pass_latency, then decides) — replay it as one
            # slice so binds sit at the slice's end on the timeline.
            _trace.tracer.complete_at(
                "k8s.schedule_pass",
                self.env.now - self.pass_latency,
                self.pass_latency,
                bound=bound,
            )

    def _pick_node(self, pod: Pod, nodes: list[K8sNode]) -> K8sNode | None:
        req = pod.spec.total_requests()
        candidates = []
        for node in nodes:
            if not node.condition.ready:
                continue
            selector = pod.spec.node_selector
            if selector and any(node.metadata.labels.get(k) != v for k, v in selector.items()):
                continue
            if not node.fits(req):
                continue
            candidates.append(node)
        if not candidates:
            return None
        # Least-allocated scoring: spread pods across the allocation.
        return min(candidates, key=lambda n: (n.allocated.cpu / max(n.capacity.cpu, 1e-9),
                                              n.metadata.name))

    def release_pod(self, pod: Pod) -> None:
        """Return a finished/deleted pod's resources to its node."""
        if pod.node_name is None:
            return
        node = self.api.get("Node", pod.node_name)
        if isinstance(node, K8sNode):
            node.release(pod.spec.total_requests())
            self.api.update("Node", node)
