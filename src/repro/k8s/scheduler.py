"""The Kubernetes pod scheduler: filter → score → bind.

Two placement paths share one contract:

- the retained **linear** path (``indexed=False``) scans every pod in
  the store and every node per pick — the pre-optimization oracle;
- the default **indexed** path keeps a pending-pod queue fed from the
  Pod watch plus a lazy-deletion min-heap of ``(ratio, name)`` node
  entries (the :mod:`repro.cluster.capacity` idiom applied to the
  least-allocated score), so a pass costs O(pending · log nodes)
  instead of O(pods · nodes).

Both paths compute the same function — the minimum of
``(allocated.cpu / capacity.cpu, name)`` over ready, selector-matching,
fitting nodes — so binds, timings, traces and metrics are identical;
``tests/k8s/test_scheduler_index.py`` holds them equal by property test.
"""

from __future__ import annotations

import heapq
import typing as _t

from repro.k8s.apiserver import APIServer, WatchEvent, WatchEventType
from repro.k8s.objects import K8sNode, Pod, PodPhase
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Environment, Signal
from repro.sim import profile as _profile

#: rejected-candidate pops beyond which a pick counts as a linear
#: fallback (the index stopped short-circuiting for this query)
_FALLBACK_POPS = 32


class K8sScheduler:
    """Watch unbound pods; bind them to the least-loaded fitting node."""

    #: one scheduling pass latency
    pass_latency = 0.02

    def __init__(self, env: Environment, apiserver: APIServer, indexed: bool = True):
        self.env = env
        self.api = apiserver
        self.indexed = indexed
        # Latching signal == the recreate-an-event "bell" pattern: rings
        # while a pass is in flight coalesce into the next wait().
        self._bell = Signal(env, latch=True)
        self.stats = {"scheduled": 0, "unschedulable_events": 0}
        # -- indexed-path state ------------------------------------------
        #: pending pods in store (ADDED) order; unschedulable pods stay
        self._pending: list[Pod] = []
        self._pending_uids: set[str] = set()
        #: lazy-deletion min-heap of (ratio, name, seq); an entry is live
        #: iff its seq matches _node_seq[name]
        self._heap: list[tuple[float, str, int]] = []
        self._node_seq: dict[str, int] = {}
        self._nodes: dict[str, K8sNode] = {}
        #: interned per-node metric keys for the bind counter
        self._bind_keys: dict[str, tuple] = {}
        self._unsched_key = None
        if indexed:
            # Index maintenance rides its own watcher so replaying the
            # existing nodes does not ring the bell (an extra empty pass
            # would shift every trace).
            apiserver.watch("Node", self._on_node_index_event, replay_existing=True)
        apiserver.watch("Pod", self._on_pod_event, replay_existing=True)
        apiserver.watch("Node", self._on_node_event, replay_existing=False)
        env.process(self._loop(), name="kube-scheduler")

    def _on_pod_event(self, event: WatchEvent) -> None:
        if event.type in (WatchEventType.ADDED, WatchEventType.MODIFIED):
            if self.indexed:
                pod = event.obj
                if (
                    isinstance(pod, Pod)
                    and not pod.bound
                    and pod.phase is PodPhase.PENDING
                    and pod.metadata.uid not in self._pending_uids
                ):
                    self._pending_uids.add(pod.metadata.uid)
                    self._pending.append(pod)
                    counters = _profile.counters
                    if counters.enabled and len(self._pending) > counters.sched_pending_peak:
                        counters.sched_pending_peak = len(self._pending)
            self._ring()

    def _on_node_event(self, event: WatchEvent) -> None:
        self._ring()

    def _on_node_index_event(self, event: WatchEvent) -> None:
        node = event.obj
        if not isinstance(node, K8sNode):
            return
        name = node.metadata.name
        if event.type is WatchEventType.DELETED:
            self._node_seq.pop(name, None)
            self._nodes.pop(name, None)
            return
        seq = self._node_seq.get(name, 0) + 1
        self._node_seq[name] = seq
        self._nodes[name] = node
        ratio = node.allocated.cpu / max(node.capacity.cpu, 1e-9)
        heapq.heappush(self._heap, (ratio, name, seq))
        # Stale entries accumulate one per node update; compact before
        # the heap outgrows the live node set by a wide margin.
        if len(self._heap) > 64 + 4 * len(self._nodes):
            self._compact_heap()

    def _compact_heap(self) -> None:
        seqs = self._node_seq
        self._heap = [e for e in self._heap if seqs.get(e[1]) == e[2]]
        heapq.heapify(self._heap)

    def _ring(self) -> None:
        self._bell.fire()

    def _loop(self):
        while True:
            yield self._bell.wait()
            yield self.env.timeout(self.pass_latency)
            self._schedule_pass()

    # -- one pass ------------------------------------------------------------------
    def _schedule_pass(self) -> None:
        if self.indexed:
            bound = self._schedule_pass_indexed()
        else:
            bound = self._schedule_pass_linear()
        if _trace.tracer.enabled:
            # The pass's think time elapsed just before this call (the
            # loop sleeps pass_latency, then decides) — replay it as one
            # slice so binds sit at the slice's end on the timeline.
            _trace.tracer.complete_at(
                "k8s.schedule_pass",
                self.env.now - self.pass_latency,
                self.pass_latency,
                bound=bound,
            )

    def _schedule_pass_linear(self) -> int:
        nodes = self.api.nodes()
        bound = 0
        for pod in self.api.pods():
            if pod.bound or pod.phase is not PodPhase.PENDING:
                continue
            target = self._pick_node(pod, nodes)
            if target is None:
                self._count_unschedulable()
                continue
            self._bind(pod, target)
            bound += 1
        return bound

    def _schedule_pass_indexed(self) -> int:
        bound = 0
        snapshot = self._pending
        # Appends during the pass (our own Pod updates re-enter the
        # watch synchronously, though the bound-pod predicate rejects
        # them) land in a fresh list and are folded back afterwards.
        self._pending = []
        still: list[Pod] = []
        #: request shapes that already failed this pass — free capacity
        #: only shrinks mid-pass, so an identical query cannot succeed
        failed_keys: set[tuple] = set()
        for pod in snapshot:
            if pod.bound or pod.phase is not PodPhase.PENDING:
                self._pending_uids.discard(pod.metadata.uid)
                continue
            target = self._pick_node_indexed(pod, failed_keys)
            if target is None:
                self._count_unschedulable()
                still.append(pod)
                continue
            self._pending_uids.discard(pod.metadata.uid)
            self._bind(pod, target)
            bound += 1
        self._pending = still + self._pending
        return bound

    def _bind(self, pod: Pod, target: K8sNode) -> None:
        req = pod.spec.total_requests()
        target.claim(req)
        pod.node_name = target.metadata.name
        self.api.update("Pod", pod)
        self.api.update("Node", target)
        self.stats["scheduled"] += 1
        _trace.tracer.instant(
            "k8s.bind", pod=pod.metadata.name, node=target.metadata.name
        )
        if _metrics.registry.enabled:
            name = target.metadata.name
            key = self._bind_keys.get(name)
            if key is None:
                key = self._bind_keys[name] = _metrics.registry.series_key(
                    "k8s.scheduler.binds", node=name
                )
            _metrics.registry.inc_series(key)

    def _count_unschedulable(self) -> None:
        self.stats["unschedulable_events"] += 1
        if _metrics.registry.enabled:
            if self._unsched_key is None:
                self._unsched_key = _metrics.registry.series_key(
                    "k8s.scheduler.unschedulable"
                )
            _metrics.registry.inc_series(self._unsched_key)

    # -- node picking --------------------------------------------------------------
    def _pick_node(self, pod: Pod, nodes: list[K8sNode]) -> K8sNode | None:
        req = pod.spec.total_requests()
        candidates = []
        for node in nodes:
            if not node.condition.ready:
                continue
            selector = pod.spec.node_selector
            if selector and any(node.metadata.labels.get(k) != v for k, v in selector.items()):
                continue
            if not node.fits(req):
                continue
            candidates.append(node)
        if not candidates:
            return None
        # Least-allocated scoring: spread pods across the allocation.
        return min(candidates, key=lambda n: (n.allocated.cpu / max(n.capacity.cpu, 1e-9),
                                              n.metadata.name))

    def _pick_node_indexed(
        self, pod: Pod, failed_keys: set[tuple]
    ) -> K8sNode | None:
        req = pod.spec.total_requests()
        selector = pod.spec.node_selector
        shape = (req.cpu, req.memory, req.gpu, tuple(sorted(selector.items())))
        if shape in failed_keys:
            return None
        heap = self._heap
        seqs = self._node_seq
        nodes = self._nodes
        rejected: list[tuple[float, str, int]] = []
        target: K8sNode | None = None
        while heap:
            entry = heap[0]
            ratio, name, seq = entry
            if seqs.get(name) != seq:
                heapq.heappop(heap)
                continue
            heapq.heappop(heap)
            node = nodes[name]
            live = node.allocated.cpu / max(node.capacity.cpu, 1e-9)
            if live != ratio:
                # Node mutated without an apiserver update (tests poking
                # `allocated` directly): re-key under a fresh seq so the
                # heap order stays the true (ratio, name) order.
                seq = seqs[name] = seq + 1
                heapq.heappush(heap, (live, name, seq))
                continue
            if (
                not node.condition.ready
                or (selector and any(
                    node.metadata.labels.get(k) != v for k, v in selector.items()
                ))
                or not node.fits(req)
            ):
                rejected.append(entry)
                continue
            target = node
            break
        for entry in rejected:
            heapq.heappush(heap, entry)
        # The winner's entry is not pushed back: the caller's claim +
        # Node update re-enters _on_node_index_event, which pushes the
        # fresh (ratio, name, seq+1) entry.
        counters = _profile.counters
        if counters.enabled:
            if len(rejected) > _FALLBACK_POPS:
                counters.sched_linear_fallbacks += 1
            elif target is not None:
                counters.sched_index_hits += 1
        if target is None:
            failed_keys.add(shape)
        return target

    def release_pod(self, pod: Pod) -> None:
        """Return a finished/deleted pod's resources to its node."""
        if pod.node_name is None:
            return
        node = self.api.get("Node", pod.node_name)
        if isinstance(node, K8sNode):
            node.release(pod.spec.total_requests())
            self.api.update("Node", node)
