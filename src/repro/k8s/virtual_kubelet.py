"""The KNoC-style virtual kubelet (§6.4, ref [41]).

"A separate service acts as a regular Kubelet.  It schedules Pods as
jobs by starting containers using e.g. Apptainer within WLM allocations,
then tracks their execution and reports back" — transparent to the
Kubernetes user, and all accounting lands in the WLM.
"""

from __future__ import annotations

import typing as _t

from repro.engines.base import ContainerEngine
from repro.k8s.apiserver import APIServer, WatchEvent, WatchEventType
from repro.k8s.objects import (
    K8sNode,
    NodeCondition,
    ObjectMeta,
    Pod,
    PodPhase,
    ResourceRequests,
)
from repro.oci.image import ImageReference
from repro.registry.distribution import OCIDistributionRegistry
from repro.sim import Environment, Signal
from repro.wlm.jobs import JobSpec
from repro.wlm.slurm import SlurmController


class VirtualKubelet:
    """Registers a huge virtual node; translates bound pods to WLM jobs."""

    #: the virtual node advertises the whole partition
    startup_cost = 1.0

    def __init__(
        self,
        env: Environment,
        apiserver: APIServer,
        wlm: SlurmController,
        engines: dict[str, ContainerEngine],
        registry: OCIDistributionRegistry,
        node_name: str = "virtual-hpc",
    ):
        self.env = env
        self.api = apiserver
        self.wlm = wlm
        self.engines = engines
        self.registry = registry
        self.node_name = node_name
        self.stats = {"pods_translated": 0, "pods_finished": 0}
        #: fired on every pod the VK touches (translated, finished) so
        #: observers can park instead of polling pod phases
        self.activity = Signal(env)
        self._started = False

    def start(self):
        return self.env.process(self._main(), name=f"vk-{self.node_name}")

    def _main(self):
        yield self.env.timeout(self.startup_cost)
        total_cores = sum(n.total_cores for n in self.wlm.nodes)
        total_gpus = sum(n.gpu_count for n in self.wlm.nodes)
        node = K8sNode(
            metadata=ObjectMeta(name=self.node_name, labels={"type": "virtual-kubelet"}),
            capacity=ResourceRequests(cpu=total_cores, memory=2**42, gpu=total_gpus),
            condition=NodeCondition(ready=True, last_heartbeat=self.env.now),
        )
        self.api.create("Node", node)
        self.api.watch("Pod", self._on_pod_event, replay_existing=True)
        self._started = True
        return node

    def _on_pod_event(self, event: WatchEvent) -> None:
        pod = event.obj
        if not isinstance(pod, Pod):
            return
        if event.type is WatchEventType.MODIFIED and pod.node_name == self.node_name:
            if pod.phase is PodPhase.PENDING and not getattr(pod, "_vk_submitted", False):
                pod._vk_submitted = True  # type: ignore[attr-defined]
                self._submit_pod(pod)

    def _submit_pod(self, pod: Pod) -> None:
        cspec = pod.spec.containers[0]
        ref = ImageReference.parse(cspec.image)

        def on_start(node, job, user_proc):
            engine = self.engines[node.name]
            pulled = engine.pull(ref.repository, ref.tag, self.registry, now=self.env.now)
            result = engine.run(pulled, user_proc, command=cspec.command or None)
            pod.container_results.append(result)
            pod.phase = PodPhase.RUNNING
            pod.start_time = self.env.now
            self.api.update("Pod", pod)

        def on_end(job):
            for result in pod.container_results:
                if result.container.state.value == "running":
                    engine = self.engines[job.allocated_nodes[0]]
                    engine.runtime.finish(result.container)
            pod.phase = PodPhase.SUCCEEDED
            pod.end_time = self.env.now
            self.api.update("Pod", pod)
            self.stats["pods_finished"] += 1
            self.activity.fire(pod)

        spec = JobSpec(
            name=f"k8s-pod-{pod.metadata.name}",
            user_uid=pod.spec.user_uid,
            nodes=1,
            cores_per_node=int(pod.spec.total_requests().cpu) or 1,
            gpus_per_node=pod.spec.total_requests().gpu,
            duration=pod.spec.duration,
            exclusive=False,
            on_start=on_start,
            on_end=on_end,
        )
        job = self.wlm.submit(spec)
        job.comment = f"kubernetes-pod:{pod.metadata.namespace}/{pod.metadata.name}"
        self.stats["pods_translated"] += 1
        self.activity.fire(pod)
