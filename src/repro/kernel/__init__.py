"""Simulated Linux kernel facilities.

The engine comparison in the paper (§4) is at heart a comparison of
*which kernel mechanisms* each container engine uses: user namespaces vs
setuid helpers, in-kernel vs FUSE filesystem drivers, cgroup versions and
delegation, pivot_root vs chroot.  This package models that syscall
surface with the same permission rules the real kernel applies, so that
every table cell in the reproduction is backed by an actual (simulated)
permission check rather than a hardcoded boolean.
"""

from repro.kernel.errors import EACCES, EBUSY, EINVAL, ENOENT, EPERM, KernelError
from repro.kernel.credentials import Capability, Credentials, FULL_CAPS
from repro.kernel.namespaces import IdMapping, Namespace, NamespaceKind, UserNamespace
from repro.kernel.cgroups import Cgroup, CgroupManager, Controller
from repro.kernel.config import KernelConfig
from repro.kernel.process import ProcessState, SimProcess
from repro.kernel.syscalls import Kernel

__all__ = [
    "Capability",
    "Cgroup",
    "CgroupManager",
    "Controller",
    "Credentials",
    "EACCES",
    "EBUSY",
    "EINVAL",
    "ENOENT",
    "EPERM",
    "FULL_CAPS",
    "IdMapping",
    "Kernel",
    "KernelConfig",
    "KernelError",
    "Namespace",
    "NamespaceKind",
    "ProcessState",
    "SimProcess",
    "UserNamespace",
]
