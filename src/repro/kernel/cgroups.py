"""Control groups, v1 and v2, including the v2 delegation model.

Delegation matters to the paper's §6.5 scenario: running rootless
Kubernetes kubelets inside a WLM allocation "includes enabling version 2
of the Linux cgroups framework [and] cgroup delegations" — without a
delegated subtree an unprivileged kubelet cannot create pod cgroups.
"""

from __future__ import annotations

import enum
import typing as _t

from repro.kernel.errors import EINVAL, ENOENT, EPERM


class Controller(enum.Enum):
    CPU = "cpu"
    MEMORY = "memory"
    PIDS = "pids"
    DEVICES = "devices"
    IO = "io"
    CPUSET = "cpuset"


#: controllers that exist only in v1 (devices became eBPF in v2) — kept
#: simple: v2 supports everything except DEVICES.
V2_CONTROLLERS = frozenset(Controller) - {Controller.DEVICES}


class Cgroup:
    """One node in a cgroup hierarchy."""

    def __init__(self, name: str, parent: "Cgroup | None", manager: "CgroupManager"):
        self.name = name
        self.parent = parent
        self.manager = manager
        self.children: dict[str, Cgroup] = {}
        self.limits: dict[Controller, float] = {}
        self.procs: set[int] = set()  # pids
        #: uid allowed to manage this subtree (v2 delegation)
        self.delegated_to: int | None = None
        #: accumulated usage for accounting (cpu-seconds, byte-seconds...)
        self.usage: dict[Controller, float] = {}

    @property
    def path(self) -> str:
        if self.parent is None:
            return "/"
        prefix = self.parent.path.rstrip("/")
        return f"{prefix}/{self.name}"

    def effective_limit(self, controller: Controller) -> float | None:
        """Tightest limit along the ancestor chain."""
        best: float | None = None
        node: Cgroup | None = self
        while node is not None:
            limit = node.limits.get(controller)
            if limit is not None and (best is None or limit < best):
                best = limit
            node = node.parent
        return best

    def delegated_uid(self) -> int | None:
        node: Cgroup | None = self
        while node is not None:
            if node.delegated_to is not None:
                return node.delegated_to
            node = node.parent
        return None

    def charge(self, controller: Controller, amount: float) -> None:
        node: Cgroup | None = self
        while node is not None:
            node.usage[controller] = node.usage.get(controller, 0.0) + amount
            node = node.parent

    def __repr__(self) -> str:
        return f"<Cgroup {self.path} procs={len(self.procs)}>"


class CgroupManager:
    """A cgroup hierarchy (v2 unified, or one-per-controller v1 modelled
    as a single tree with a version flag)."""

    def __init__(self, version: int = 2):
        if version not in (1, 2):
            raise EINVAL(f"cgroup version must be 1 or 2, got {version}")
        self.version = version
        self.root = Cgroup("", None, self)

    def _resolve(self, path: str) -> Cgroup:
        node = self.root
        for part in [p for p in path.split("/") if p]:
            if part not in node.children:
                raise ENOENT(f"no such cgroup: {path}")
            node = node.children[part]
        return node

    def exists(self, path: str) -> bool:
        try:
            self._resolve(path)
            return True
        except ENOENT:
            return False

    def create(self, path: str, by_uid: int = 0) -> Cgroup:
        """Create a cgroup; unprivileged uids need a delegated ancestor (v2)."""
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise EINVAL("cannot create the root cgroup")
        node = self.root
        for i, part in enumerate(parts):
            if part in node.children:
                node = node.children[part]
                continue
            if by_uid != 0:
                if self.version == 1:
                    raise EPERM(
                        "cgroup v1 has no delegation: unprivileged users cannot create cgroups"
                    )
                if node.delegated_uid() != by_uid:
                    raise EPERM(
                        f"uid {by_uid} has no delegated ancestor at {node.path}"
                    )
            child = Cgroup(part, node, self)
            node.children[part] = child
            node = child
        return node

    def delegate(self, path: str, uid: int, by_uid: int = 0) -> None:
        """Hand a subtree to ``uid`` (systemd-style Delegate=yes)."""
        if self.version == 1:
            raise EPERM("cgroup v1 does not support safe delegation")
        if by_uid != 0:
            raise EPERM("only root can delegate a cgroup subtree")
        self._resolve(path).delegated_to = uid

    def set_limit(self, path: str, controller: Controller, value: float, by_uid: int = 0) -> None:
        node = self._resolve(path)
        if self.version == 2 and controller not in V2_CONTROLLERS:
            raise EINVAL(f"controller {controller.value} is not available on cgroup v2")
        if by_uid != 0 and node.delegated_uid() != by_uid:
            raise EPERM(f"uid {by_uid} cannot modify {path}")
        node.limits[controller] = value

    def attach(self, path: str, pid: int, by_uid: int = 0) -> None:
        node = self._resolve(path)
        if by_uid != 0 and node.delegated_uid() != by_uid:
            raise EPERM(f"uid {by_uid} cannot attach processes to {path}")
        # A pid lives in exactly one cgroup (v2 semantics).
        for other in self.walk():
            other.procs.discard(pid)
        node.procs.add(pid)

    def cgroup_of(self, pid: int) -> Cgroup | None:
        for node in self.walk():
            if pid in node.procs:
                return node
        return None

    def walk(self) -> _t.Iterator[Cgroup]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())
