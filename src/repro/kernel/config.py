"""Kernel build/runtime configuration knobs.

HPC sites differ in exactly these settings, and the feasibility of each
container engine's rootless mechanism depends on them (§3.2, §4.1.2):
whether unprivileged user namespaces are enabled, whether the kernel is
new enough for unprivileged OverlayFS mounts (5.11+), whether /dev/fuse
is available on compute nodes, and which cgroup version is mounted.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class KernelConfig:
    version: tuple[int, int] = (5, 14)
    #: sysctl kernel.unprivileged_userns_clone (or distro equivalent)
    unprivileged_userns: bool = True
    #: /dev/fuse present and usable by unprivileged users on compute nodes
    fuse_available: bool = True
    #: cgroup hierarchy version mounted on the node
    cgroup_version: int = 2
    #: systemd-style delegation configured for user slices
    cgroup_delegation: bool = True
    #: setuid-root binaries permitted on the (often hardened) compute node
    allow_setuid_binaries: bool = True
    #: maximum number of user namespaces (sysctl user.max_user_namespaces)
    max_user_namespaces: int = 15_000

    @property
    def unprivileged_overlayfs(self) -> bool:
        """Unprivileged OverlayFS mounts inside a userns (kernel >= 5.11)."""
        return self.version >= (5, 11)

    @classmethod
    def legacy_hpc(cls) -> "KernelConfig":
        """A conservative site: old kernel, no unprivileged userns, cgroup v1.

        This is the configuration that historically forced setuid-based
        engines (Shifter, Sarus, Singularity-suid) onto HPC systems.
        """
        return cls(
            version=(4, 18),
            unprivileged_userns=False,
            fuse_available=False,
            cgroup_version=1,
            cgroup_delegation=False,
        )

    @classmethod
    def modern_hpc(cls) -> "KernelConfig":
        """A current site: 5.14+, userns + fuse enabled, cgroup v2 delegated."""
        return cls()

    @classmethod
    def hardened(cls) -> "KernelConfig":
        """Security-hardened site: userns on, but no setuid binaries at all."""
        return cls(allow_setuid_binaries=False)
