"""Process credentials and Linux capabilities (the subset that matters
for container runtimes)."""

from __future__ import annotations

import dataclasses
import enum


class Capability(enum.Flag):
    """Capabilities referenced by the container-engine mechanisms."""

    NONE = 0
    SYS_ADMIN = enum.auto()      # mounts, namespaces other than user
    SYS_CHROOT = enum.auto()     # chroot(2)
    SYS_PTRACE = enum.auto()     # ptrace-based fakeroot (§4.1.2)
    SETUID = enum.auto()         # writing uid_map ranges, setuid(2)
    SETGID = enum.auto()
    CHOWN = enum.auto()
    DAC_OVERRIDE = enum.auto()   # bypass file permission checks
    NET_ADMIN = enum.auto()      # network namespace configuration
    MKNOD = enum.auto()          # device nodes inside containers
    SYS_RESOURCE = enum.auto()   # cgroup limit overrides


#: the full capability bounding set root holds in its own namespace
FULL_CAPS = (
    Capability.SYS_ADMIN
    | Capability.SYS_CHROOT
    | Capability.SYS_PTRACE
    | Capability.SETUID
    | Capability.SETGID
    | Capability.CHOWN
    | Capability.DAC_OVERRIDE
    | Capability.NET_ADMIN
    | Capability.MKNOD
    | Capability.SYS_RESOURCE
)


@dataclasses.dataclass
class Credentials:
    """uid/gid identity plus the effective capability set.

    ``capabilities`` are interpreted *relative to the process's user
    namespace* — a process that created a user namespace holds FULL_CAPS
    there while remaining unprivileged in the parent (the "rootless"
    mechanism of §3.2).
    """

    uid: int
    gid: int
    euid: int | None = None
    egid: int | None = None
    groups: frozenset[int] = frozenset()
    capabilities: Capability = Capability.NONE

    def __post_init__(self) -> None:
        if self.euid is None:
            self.euid = self.uid
        if self.egid is None:
            self.egid = self.gid
        # Effective root (including setuid-root helpers) holds the full
        # bounding set in its namespace.
        if self.euid == 0:
            self.capabilities = FULL_CAPS

    @property
    def is_root(self) -> bool:
        return self.euid == 0

    def has(self, cap: Capability) -> bool:
        return bool(self.capabilities & cap)

    def drop(self, cap: Capability) -> None:
        self.capabilities &= ~cap

    def grant(self, cap: Capability) -> None:
        self.capabilities |= cap

    def clone(self) -> "Credentials":
        return Credentials(
            uid=self.uid,
            gid=self.gid,
            euid=self.euid,
            egid=self.egid,
            groups=self.groups,
            capabilities=self.capabilities,
        )
