"""Kernel error types mirroring the errno family the real syscalls return."""

from __future__ import annotations


class KernelError(OSError):
    """Base class for simulated syscall failures."""

    errno_name = "E?"

    def __init__(self, message: str):
        super().__init__(f"{self.errno_name}: {message}")
        self.message = message


class EPERM(KernelError):
    """Operation not permitted (capability / privilege check failed)."""

    errno_name = "EPERM"


class EACCES(KernelError):
    """Permission denied (DAC check failed)."""

    errno_name = "EACCES"


class EINVAL(KernelError):
    """Invalid argument (bad namespace combination, malformed mapping...)."""

    errno_name = "EINVAL"


class ENOENT(KernelError):
    """No such file, directory, or object."""

    errno_name = "ENOENT"


class EBUSY(KernelError):
    """Resource busy (e.g. mount target in use)."""

    errno_name = "EBUSY"
