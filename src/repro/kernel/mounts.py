"""Per-mount-namespace mount tables.

Unsharing the mount namespace clones the table; mounts made afterwards
are invisible outside — this is how HPC engines "set up separate mounts
invisible to everyone beyond the real root of the host system" (§3.2).
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as _t

from repro.fs.drivers import MountDriver, MountedView
from repro.kernel.errors import EBUSY, EINVAL, ENOENT

_mount_counter = itertools.count(1)


@dataclasses.dataclass
class MountEntry:
    mount_id: int
    target: str
    view: MountedView
    flags: frozenset[str] = frozenset()

    @property
    def driver(self) -> MountDriver:
        return self.view.driver


class MountTable:
    """Ordered mount entries for one mount namespace."""

    def __init__(self, ns_id: int):
        self.ns_id = ns_id
        self.entries: list[MountEntry] = []

    def add(self, target: str, view: MountedView, flags: _t.Iterable[str] = ()) -> MountEntry:
        target = target.rstrip("/") or "/"
        entry = MountEntry(next(_mount_counter), target, view, frozenset(flags))
        self.entries.append(entry)
        return entry

    def remove(self, target: str) -> None:
        target = target.rstrip("/") or "/"
        for i in range(len(self.entries) - 1, -1, -1):
            if self.entries[i].target == target:
                del self.entries[i]
                return
        raise ENOENT(f"no mount at {target}")

    def mount_at(self, target: str) -> MountEntry | None:
        """The topmost mount exactly at ``target``."""
        target = target.rstrip("/") or "/"
        for entry in reversed(self.entries):
            if entry.target == target:
                return entry
        return None

    def resolve(self, path: str) -> tuple[MountEntry, str] | None:
        """Find the topmost mount covering ``path``; returns the entry and
        the path remainder inside that mount."""
        path = path.rstrip("/") or "/"
        best: MountEntry | None = None
        for entry in self.entries:
            prefix = entry.target
            if path == prefix or path.startswith(prefix.rstrip("/") + "/") or prefix == "/":
                if best is None or len(prefix) >= len(best.target):
                    best = entry
        if best is None:
            return None
        inner = path[len(best.target.rstrip("/")) :] or "/"
        return best, inner

    def is_mount_point(self, path: str) -> bool:
        return self.mount_at(path) is not None

    def clone(self, new_ns_id: int) -> "MountTable":
        table = MountTable(new_ns_id)
        # Mount entries are shared views (like shared propagation at clone
        # time) but the *lists* are independent afterwards.
        table.entries = list(self.entries)
        return table

    def targets(self) -> list[str]:
        return [e.target for e in self.entries]

    def __repr__(self) -> str:
        return f"<MountTable ns={self.ns_id} mounts={len(self.entries)}>"
