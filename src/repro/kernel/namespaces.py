"""Linux namespaces, with full uid/gid-mapping semantics for user
namespaces.

The user namespace is the foundation of every rootless container
mechanism the paper surveys: creating one grants the creator a full
capability set *inside* it (enabling ``pivot_root``, bind mounts, and —
kernel permitting — overlay mounts) while the host-visible identity stays
the unprivileged user.  HPC engines deliberately map only a single uid
(§3.2: "user namespacing is limited to a single user to ensure files
created by processes in the container have the UID/GID of the user
launching the job").
"""

from __future__ import annotations

import dataclasses
import enum
import itertools

from repro.kernel.errors import EINVAL, EPERM

_ns_counter = itertools.count(1)

#: kernel limit on user-namespace nesting depth
MAX_USERNS_LEVEL = 32


class NamespaceKind(enum.Enum):
    USER = "user"
    MNT = "mnt"
    PID = "pid"
    NET = "net"
    IPC = "ipc"
    UTS = "uts"
    CGROUP = "cgroup"


@dataclasses.dataclass(frozen=True)
class IdMapping:
    """One line of /proc/<pid>/uid_map: inside-start, outside-start, count."""

    inside: int
    outside: int
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise EINVAL(f"mapping count must be >= 1, got {self.count}")

    def to_parent(self, inside_id: int) -> int | None:
        if self.inside <= inside_id < self.inside + self.count:
            return self.outside + (inside_id - self.inside)
        return None

    def from_parent(self, outside_id: int) -> int | None:
        if self.outside <= outside_id < self.outside + self.count:
            return self.inside + (outside_id - self.outside)
        return None


class Namespace:
    """A non-user namespace instance."""

    def __init__(self, kind: NamespaceKind, owner: "UserNamespace | None", creator_uid: int = 0):
        self.ns_id = next(_ns_counter)
        self.kind = kind
        #: the user namespace that owns this namespace — capability checks
        #: against this namespace are evaluated in the owner userns.
        self.owner = owner
        self.creator_uid = creator_uid

    def __repr__(self) -> str:
        return f"<Namespace {self.kind.value}:{self.ns_id}>"


class UserNamespace(Namespace):
    """A user namespace with uid/gid mappings and nesting."""

    def __init__(self, parent: "UserNamespace | None", creator_uid: int = 0):
        level = 0 if parent is None else parent.level + 1
        if level > MAX_USERNS_LEVEL:
            raise EPERM(f"user namespace nesting limit ({MAX_USERNS_LEVEL}) exceeded")
        super().__init__(NamespaceKind.USER, owner=parent, creator_uid=creator_uid)
        self.parent = parent
        self.level = level
        self.uid_map: list[IdMapping] = []
        self.gid_map: list[IdMapping] = []
        # The initial namespace is identity-mapped over the whole id space.
        if parent is None:
            whole = IdMapping(inside=0, outside=0, count=1 << 32)
            self.uid_map = [whole]
            self.gid_map = [whole]

    @property
    def is_initial(self) -> bool:
        return self.parent is None

    @property
    def mappings_written(self) -> bool:
        return bool(self.uid_map)

    def set_mappings(self, uid_map: list[IdMapping], gid_map: list[IdMapping] | None = None) -> None:
        if self.mappings_written and not self.is_initial:
            raise EINVAL("uid_map may only be written once")
        if not uid_map:
            raise EINVAL("empty uid_map")
        self.uid_map = list(uid_map)
        self.gid_map = list(gid_map) if gid_map is not None else list(uid_map)

    # -- id translation ------------------------------------------------------
    def uid_to_parent(self, uid: int) -> int:
        for m in self.uid_map:
            out = m.to_parent(uid)
            if out is not None:
                return out
        raise EINVAL(f"uid {uid} has no mapping in userns {self.ns_id}")

    def uid_from_parent(self, uid: int) -> int | None:
        for m in self.uid_map:
            inside = m.from_parent(uid)
            if inside is not None:
                return inside
        return None

    def uid_to_host(self, uid: int) -> int:
        """Translate an inside uid all the way to the initial namespace."""
        ns: UserNamespace = self
        current = uid
        while not ns.is_initial:
            current = ns.uid_to_parent(current)
            assert ns.parent is not None
            ns = ns.parent
        return current

    def uid_from_host(self, host_uid: int) -> int | None:
        """Translate an initial-namespace uid down to this namespace.

        Returns None if any hop along the chain has no mapping (the id
        then appears as the overflow uid 65534 in the real kernel).
        """
        chain: list[UserNamespace] = []
        node: UserNamespace | None = self
        while node is not None:
            chain.append(node)
            node = node.parent
        current: int | None = host_uid
        for ns in reversed(chain):
            if ns.is_initial:
                continue
            assert current is not None
            current = ns.uid_from_parent(current)
            if current is None:
                return None
        return current

    def is_ancestor_of(self, other: "UserNamespace") -> bool:
        """True if self is ``other`` or any ancestor of ``other``."""
        node: UserNamespace | None = other
        while node is not None:
            if node is self:
                return True
            node = node.parent
        return False

    def maps_multiple_uids(self) -> bool:
        return sum(m.count for m in self.uid_map) > 1

    def __repr__(self) -> str:
        return f"<UserNamespace id={self.ns_id} level={self.level} maps={len(self.uid_map)}>"
