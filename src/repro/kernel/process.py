"""Simulated processes: the subjects of all kernel permission checks."""

from __future__ import annotations

import enum
import typing as _t

from repro.kernel.credentials import Credentials
from repro.kernel.namespaces import Namespace, NamespaceKind, UserNamespace

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.mounts import MountTable


class ProcessState(enum.Enum):
    RUNNING = "running"
    SLEEPING = "sleeping"
    ZOMBIE = "zombie"
    DEAD = "dead"


class SimProcess:
    """A process with credentials, namespace membership, and a root."""

    def __init__(
        self,
        pid: int,
        creds: Credentials,
        namespaces: dict[NamespaceKind, Namespace],
        mount_table: "MountTable",
        parent: "SimProcess | None" = None,
        argv: tuple[str, ...] = ("init",),
    ):
        self.pid = pid
        self.creds = creds
        self.namespaces = dict(namespaces)
        self.mount_table = mount_table
        self.parent = parent
        self.children: list[SimProcess] = []
        self.argv = argv
        self.state = ProcessState.RUNNING
        self.exit_code: int | None = None
        #: path of the process root (changed by chroot/pivot_root)
        self.root = "/"
        self.cwd = "/"
        self.environ: dict[str, str] = {}
        #: LD_PRELOAD-style interposition libraries (fakeroot modelling)
        self.preloads: list[str] = []
        #: whether the executed binary is statically linked — static
        #: binaries ignore LD_PRELOAD (§4.1.2 fakeroot limitation)
        self.static_binary = False
        #: attached ptrace supervisor pid (ptrace fakeroot), if any
        self.ptraced_by: int | None = None

    @property
    def userns(self) -> UserNamespace:
        ns = self.namespaces[NamespaceKind.USER]
        assert isinstance(ns, UserNamespace)
        return ns

    @property
    def uid(self) -> int:
        return self.creds.uid

    @property
    def euid(self) -> int:
        assert self.creds.euid is not None
        return self.creds.euid

    def host_uid(self) -> int:
        """This process's uid as seen from the initial namespace.

        Credentials are always stored host-relative in this model; the
        inside-namespace identity is *derived* via :meth:`container_uid`.
        """
        return self.euid

    def container_uid(self) -> int | None:
        """This process's uid as seen inside its user namespace (None if
        the host uid is unmapped there — overflow uid in a real kernel)."""
        return self.userns.uid_from_host(self.euid)

    @property
    def in_initial_userns(self) -> bool:
        return self.userns.is_initial

    def ns(self, kind: NamespaceKind) -> Namespace:
        return self.namespaces[kind]

    def exit(self, code: int = 0) -> None:
        self.state = ProcessState.ZOMBIE if self.parent else ProcessState.DEAD
        self.exit_code = code

    def __repr__(self) -> str:
        return (
            f"<SimProcess pid={self.pid} uid={self.creds.uid} euid={self.euid} "
            f"userns={self.userns.ns_id} {self.state.value}>"
        )
