"""The simulated kernel syscall surface.

This is where the paper's security analysis becomes executable.  The
rules implemented here (and exercised by the engine implementations):

- **User namespaces** grant their creator a full capability set *inside*
  the namespace only; unprivileged creation is gated by a sysctl.
- **uid_map writes** by an unprivileged process may map exactly one id —
  the writer's own — which is why HPC engines present a single uid
  inside containers (§3.2).
- **Block-device-backed filesystems** (in-kernel SquashFS) may only be
  mounted with CAP_SYS_ADMIN *in the initial namespace*: kernel drivers
  are not hardened against maliciously crafted images (§4.1.2), so a
  rootless user inside their own userns still cannot mount one.
- **FUSE mounts** are available to unprivileged users (the user/kernel
  interface is considered audited) when /dev/fuse exists.
- **OverlayFS in a userns** additionally requires kernel >= 5.11.
- **pivot_root** needs CAP_SYS_ADMIN in the caller's userns (which a
  rootless user obtains by creating one); **chroot** needs
  CAP_SYS_CHROOT and provides weaker isolation.
- **setuid binaries** elevate only in the initial user namespace and only
  where site policy permits them at all.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.fs.drivers import MountedView
from repro.fs.inode import FileNode
from repro.kernel.cgroups import CgroupManager
from repro.kernel.config import KernelConfig
from repro.kernel.credentials import Capability, Credentials, FULL_CAPS
from repro.kernel.errors import EINVAL, ENOENT, EPERM
from repro.kernel.mounts import MountEntry, MountTable
from repro.kernel.namespaces import (
    IdMapping,
    Namespace,
    NamespaceKind,
    UserNamespace,
)
from repro.kernel.process import ProcessState, SimProcess


class Kernel:
    """One node's kernel: processes, namespaces, mounts, cgroups."""

    def __init__(self, config: KernelConfig | None = None, hostname: str = "node"):
        self.config = config or KernelConfig()
        self.hostname = hostname
        self._pid_counter = itertools.count(1)
        self.processes: dict[int, SimProcess] = {}
        self.cgroups = CgroupManager(self.config.cgroup_version)
        self._userns_count = 1
        #: device nodes present on the host (populated by the hardware model)
        self.host_devices: set[str] = {"null", "zero", "urandom"}
        if self.config.fuse_available:
            self.host_devices.add("fuse")

        # Initial namespaces.
        self.initial_userns = UserNamespace(parent=None, creator_uid=0)
        self.initial_namespaces: dict[NamespaceKind, Namespace] = {
            NamespaceKind.USER: self.initial_userns
        }
        for kind in NamespaceKind:
            if kind is not NamespaceKind.USER:
                self.initial_namespaces[kind] = Namespace(kind, owner=self.initial_userns)

        self._mount_ns_counter = itertools.count(1)
        initial_table = MountTable(next(self._mount_ns_counter))
        self.init = SimProcess(
            pid=next(self._pid_counter),
            creds=Credentials(uid=0, gid=0),
            namespaces=self.initial_namespaces,
            mount_table=initial_table,
            argv=("init",),
        )
        self.processes[self.init.pid] = self.init

    # ------------------------------------------------------------------ procs
    def spawn(
        self,
        parent: SimProcess | None = None,
        uid: int | None = None,
        gid: int | None = None,
        argv: tuple[str, ...] = ("sh",),
        static_binary: bool = False,
    ) -> SimProcess:
        """fork+exec: child inherits the parent's namespaces and mounts."""
        parent = parent or self.init
        if uid is not None and uid != parent.creds.uid and not parent.creds.has(Capability.SETUID):
            raise EPERM(f"pid {parent.pid} (uid {parent.creds.uid}) cannot switch to uid {uid}")
        creds = (
            Credentials(uid=uid, gid=gid if gid is not None else uid)
            if uid is not None
            else parent.creds.clone()
        )
        child = SimProcess(
            pid=next(self._pid_counter),
            creds=creds,
            namespaces=dict(parent.namespaces),
            mount_table=parent.mount_table,
            parent=parent,
            argv=argv,
        )
        child.root = parent.root
        child.cwd = parent.cwd
        child.environ = dict(parent.environ)
        child.static_binary = static_binary
        parent.children.append(child)
        self.processes[child.pid] = child
        return child

    def exit(self, proc: SimProcess, code: int = 0) -> None:
        proc.exit(code)

    # ----------------------------------------------------------- capabilities
    def has_capability(
        self,
        proc: SimProcess,
        cap: Capability,
        target: Namespace | UserNamespace | None = None,
    ) -> bool:
        """Does ``proc`` hold ``cap`` with respect to ``target``?

        The kernel rule: the capability must be in the process's set, and
        the process's user namespace must be the target's owner namespace
        or an ancestor of it.
        """
        if target is None:
            target_userns = proc.userns
        elif isinstance(target, UserNamespace):
            target_userns = target
        else:
            target_userns = target.owner or self.initial_userns
        if proc.creds.has(cap) and proc.userns.is_ancestor_of(target_userns):
            return True
        # ns_capable owner rule: a process whose euid created the target
        # namespace holds full capabilities *towards it* (this is what
        # lets a user nsenter their own rootless container).
        return (
            proc.userns.is_ancestor_of(target_userns)
            and not target_userns.is_initial
            and target_userns.creator_uid == proc.euid
        )

    # ------------------------------------------------------------- namespaces
    def unshare(self, proc: SimProcess, kinds: _t.Iterable[NamespaceKind]) -> None:
        """Move ``proc`` into fresh namespaces of the given kinds.

        USER is processed first (as the real kernel does) so that a fully
        unprivileged ``unshare(USER|MNT)`` works: the new userns supplies
        the CAP_SYS_ADMIN needed for the mount namespace.
        """
        kinds = set(kinds)
        if NamespaceKind.USER in kinds:
            self._unshare_user(proc)
            kinds.discard(NamespaceKind.USER)
        for kind in kinds:
            if not self.has_capability(proc, Capability.SYS_ADMIN):
                raise EPERM(
                    f"unshare({kind.value}) requires CAP_SYS_ADMIN in the current userns"
                )
            if kind is NamespaceKind.MNT:
                new_table = proc.mount_table.clone(next(self._mount_ns_counter))
                proc.mount_table = new_table
                proc.namespaces[kind] = Namespace(kind, owner=proc.userns)
            else:
                proc.namespaces[kind] = Namespace(kind, owner=proc.userns)

    def _unshare_user(self, proc: SimProcess) -> None:
        if not self.config.unprivileged_userns and not self.has_capability(
            proc, Capability.SYS_ADMIN
        ):
            raise EPERM(
                "unprivileged user namespaces are disabled on this system "
                "(kernel.unprivileged_userns_clone=0)"
            )
        if self._userns_count >= self.config.max_user_namespaces:
            raise EPERM("user.max_user_namespaces exceeded")
        new_ns = UserNamespace(parent=proc.userns, creator_uid=proc.euid)
        self._userns_count += 1
        proc.namespaces[NamespaceKind.USER] = new_ns
        # Creator holds the full capability set inside the new namespace.
        proc.creds.capabilities = FULL_CAPS

    def write_uid_map(
        self,
        ns: UserNamespace,
        mappings: list[IdMapping],
        writer: SimProcess,
        gid_mappings: list[IdMapping] | None = None,
    ) -> None:
        """Write /proc/<pid>/uid_map for a freshly created userns.

        Unprivileged writers may install exactly one single-id mapping of
        their own uid; multi-range maps (subuid) need CAP_SETUID in the
        parent namespace (the newuidmap helper route).
        """
        if ns.mappings_written:
            raise EINVAL("uid_map already written")
        parent = ns.parent
        assert parent is not None, "initial namespace has a fixed map"
        privileged = writer.creds.has(Capability.SETUID) and writer.userns.is_ancestor_of(parent)
        if not privileged:
            if len(mappings) != 1 or mappings[0].count != 1:
                raise EPERM("unprivileged uid_map writes may map exactly one id")
            # "outside" ids are expressed in the parent namespace; translate
            # to the initial namespace for comparison with the (host-relative)
            # writer credentials.
            outside_host = parent.uid_to_host(mappings[0].outside)
            if outside_host != writer.euid:
                raise EPERM(
                    f"unprivileged writer may only map its own uid "
                    f"({writer.euid}), not {mappings[0].outside}"
                )
            if gid_mappings is not None and (
                len(gid_mappings) != 1 or gid_mappings[0].count != 1
            ):
                raise EPERM("unprivileged gid_map writes may map exactly one id")
        ns.set_mappings(mappings, gid_mappings)

    def setns(self, proc: SimProcess, namespace: Namespace) -> None:
        """Join an existing namespace (requires CAP_SYS_ADMIN over it)."""
        if not self.has_capability(proc, Capability.SYS_ADMIN, namespace):
            raise EPERM(f"setns to {namespace!r} denied")
        proc.namespaces[namespace.kind] = namespace
        if namespace.kind is NamespaceKind.USER:
            # joining a userns yields the full capability set inside it
            proc.creds.capabilities = FULL_CAPS

    # ----------------------------------------------------------------- mounts
    def mount(
        self,
        proc: SimProcess,
        view: MountedView,
        target: str,
        flags: _t.Iterable[str] = (),
    ) -> MountEntry:
        driver = view.driver
        if driver.requires_block_device:
            # In-kernel block-device parsers: initial-namespace root only.
            if not (proc.in_initial_userns and self.has_capability(proc, Capability.SYS_ADMIN)):
                raise EPERM(
                    f"mounting {driver.name} parses raw block-device data; "
                    "requires CAP_SYS_ADMIN in the *initial* user namespace"
                )
        elif driver.is_fuse:
            if not self.config.fuse_available or "fuse" not in self.host_devices:
                raise ENOENT("/dev/fuse is not available on this node")
            # fusermount is a universally-present setuid helper; any user may
            # create FUSE mounts in their own mount namespace.
        elif driver.name == "overlay":
            if not self.has_capability(proc, Capability.SYS_ADMIN):
                raise EPERM("overlay mount requires CAP_SYS_ADMIN in the current userns")
            if not proc.in_initial_userns and not self.config.unprivileged_overlayfs:
                raise EPERM(
                    f"kernel {self.config.version} does not support OverlayFS "
                    "mounts inside a user namespace (needs >= 5.11)"
                )
        else:  # bind and friends
            if not self.has_capability(proc, Capability.SYS_ADMIN):
                raise EPERM(f"{driver.name} mount requires CAP_SYS_ADMIN in the current userns")
        return proc.mount_table.add(target, view, flags)

    def umount(self, proc: SimProcess, target: str) -> None:
        if not self.has_capability(proc, Capability.SYS_ADMIN):
            raise EPERM("umount requires CAP_SYS_ADMIN in the current userns")
        proc.mount_table.remove(target)

    def pivot_root(self, proc: SimProcess, new_root: str) -> None:
        """Swap the root to ``new_root`` (must be a mount point)."""
        if not self.has_capability(proc, Capability.SYS_ADMIN):
            raise EPERM("pivot_root requires CAP_SYS_ADMIN in the current userns")
        if not proc.mount_table.is_mount_point(new_root):
            raise EINVAL(f"pivot_root target {new_root} is not a mount point")
        proc.root = new_root.rstrip("/") or "/"

    def chroot(self, proc: SimProcess, path: str) -> None:
        if not self.has_capability(proc, Capability.SYS_CHROOT):
            raise EPERM("chroot requires CAP_SYS_CHROOT")
        proc.root = path.rstrip("/") or "/"

    # ------------------------------------------------------------------ setuid
    def exec_setuid(self, proc: SimProcess, binary: FileNode, argv: tuple[str, ...]) -> SimProcess:
        """Execute a setuid binary: the child runs with euid = file owner.

        Honored only in the initial user namespace (mounts inside a userns
        are implicitly nosuid for ids not mapped from the parent).
        """
        if not binary.setuid:
            raise EINVAL("binary has no setuid bit")
        if not self.config.allow_setuid_binaries:
            raise EPERM("site policy: setuid binaries are disabled on compute nodes")
        if not proc.in_initial_userns:
            raise EPERM("setuid bits are ignored outside the initial user namespace")
        child = self.spawn(parent=proc, argv=argv)
        child.creds = Credentials(uid=proc.creds.uid, gid=proc.creds.gid, euid=binary.uid, egid=binary.gid)
        return child

    # ------------------------------------------------------------------ ptrace
    def ptrace_attach(self, tracer: SimProcess, tracee: SimProcess) -> None:
        same_user = tracer.creds.uid == tracee.creds.uid
        if not same_user and not self.has_capability(tracer, Capability.SYS_PTRACE, tracee.userns):
            raise EPERM(f"pid {tracer.pid} may not ptrace pid {tracee.pid}")
        if not tracer.creds.has(Capability.SYS_PTRACE) and not same_user:
            raise EPERM("ptrace requires CAP_SYS_PTRACE or same-uid target")
        tracee.ptraced_by = tracer.pid

    # ----------------------------------------------------------------- devices
    def expose_device(self, proc: SimProcess, device: str, by: SimProcess | None = None) -> None:
        """Make a host device node visible inside ``proc``'s mount ns.

        Privilege is evaluated against ``by`` (the runtime/daemon doing
        the setup) when given, else against ``proc`` itself: the actor
        needs CAP_MKNOD towards the initial namespace, or a device-cgroup
        grant (``grant_device``) issued by the WLM.
        """
        actor = by or proc
        if device not in self.host_devices:
            raise ENOENT(f"no such host device: {device}")
        if not (
            self.has_capability(actor, Capability.MKNOD, self.initial_userns)
            or device in getattr(actor, "granted_devices", set())
        ):
            raise EPERM(f"process {actor.pid} may not expose device {device}")
        granted = getattr(proc, "exposed_devices", set())
        granted.add(device)
        proc.exposed_devices = granted  # type: ignore[attr-defined]

    def grant_device(self, proc: SimProcess, device: str) -> None:
        """WLM/device-cgroup grant: allow ``proc`` to expose ``device``."""
        granted = getattr(proc, "granted_devices", set())
        granted.add(device)
        proc.granted_devices = granted  # type: ignore[attr-defined]

    def __repr__(self) -> str:
        return f"<Kernel {self.hostname} v{self.config.version} procs={len(self.processes)}>"
