"""repro.obs — always-available, off-by-default observability.

Four cooperating instruments over the whole stack:

- :mod:`repro.obs.trace` — a virtual-time **span tracer** whose output
  loads directly into Perfetto/``chrome://tracing`` (engine startup
  phases, filesystem IO bursts, scheduler passes, registry transfers,
  one thread row per simulation process);
- :mod:`repro.obs.metrics` — a **labeled metrics registry** (counters,
  gauges, fixed-bucket histograms) that subsumes the flat
  :mod:`repro.sim.profile` counter block behind a compatibility bridge,
  with OpenMetrics-style text exposition;
- :mod:`repro.obs.timeseries` — a **virtual-time sampler** that turns
  the registry (plus engine-registered probes) into ring-buffered
  ``(t, value)`` series: gauges verbatim, counters as rates, histograms
  as running p50/p99;
- :mod:`repro.obs.slo` — a declarative **SLO rule engine** (threshold /
  error-ratio / burn-rate rules, JSON-roundtrip like ``FaultPlan``)
  evaluated over the sampled series, emitting deterministic fire/resolve
  alerts and a :class:`~repro.obs.slo.ScorecardReport`.

All are zero-cost while disabled — every instrumentation point in the
simulator pays one predicate check — and fully deterministic when
enabled: timestamps and values are virtual-time quantities, so repeated
runs export byte-identical artifacts.

Quick use::

    from repro.obs import trace, metrics, timeseries, slo

    trace.enable()
    metrics.enable()
    timeseries.enable(interval=5.0)
    ...  # run a scenario / engine sweep (install a sampler, or let the
    ...  # fleet engine tick inline)
    trace.export_json("trace.json")       # open in https://ui.perfetto.dev
    print(metrics.registry.render_table())
    evaluation = slo.evaluate(slo.default_chaos_rules(), timeseries.recorder, end_time)

or, from the command line::

    python -m repro trace kubelet_in_allocation --out trace.json
    python -m repro scenarios --metrics
    python -m repro slo kubelet_in_allocation --seed 42 --out scorecard.json
"""

from repro.obs import metrics, slo, timeseries, trace
from repro.obs.export import to_chrome_json, validate_chrome_trace
from repro.obs.metrics import MetricsRegistry, registry, to_openmetrics
from repro.obs.slo import (
    AlertEvent,
    BreachWindow,
    ScorecardReport,
    SloRule,
    SloRuleSet,
    default_chaos_rules,
    detection_latencies,
    evaluate,
)
from repro.obs.timeseries import TimeSeriesRecorder, install_sampler, recorder
from repro.obs.trace import Tracer, tracer

__all__ = [
    "AlertEvent",
    "BreachWindow",
    "MetricsRegistry",
    "ScorecardReport",
    "SloRule",
    "SloRuleSet",
    "TimeSeriesRecorder",
    "Tracer",
    "default_chaos_rules",
    "detection_latencies",
    "evaluate",
    "install_sampler",
    "metrics",
    "recorder",
    "registry",
    "slo",
    "timeseries",
    "to_chrome_json",
    "to_openmetrics",
    "trace",
    "tracer",
    "validate_chrome_trace",
]
