"""repro.obs — always-available, off-by-default observability.

Two cooperating instruments over the whole stack:

- :mod:`repro.obs.trace` — a virtual-time **span tracer** whose output
  loads directly into Perfetto/``chrome://tracing`` (engine startup
  phases, filesystem IO bursts, scheduler passes, registry transfers,
  one thread row per simulation process);
- :mod:`repro.obs.metrics` — a **labeled metrics registry** (counters,
  gauges, fixed-bucket histograms) that subsumes the flat
  :mod:`repro.sim.profile` counter block behind a compatibility bridge.

Both are zero-cost while disabled — every instrumentation point in the
simulator pays one predicate check — and fully deterministic when
enabled: timestamps and values are virtual-time quantities, so repeated
runs export byte-identical artifacts.

Quick use::

    from repro.obs import trace, metrics

    trace.enable()
    metrics.enable()
    ...  # run a scenario / engine sweep
    trace.export_json("trace.json")       # open in https://ui.perfetto.dev
    print(metrics.registry.render_table())

or, from the command line::

    python -m repro trace kubelet_in_allocation --out trace.json
    python -m repro scenarios --metrics
"""

from repro.obs import metrics, trace
from repro.obs.export import to_chrome_json, validate_chrome_trace
from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.trace import Tracer, tracer

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "metrics",
    "registry",
    "to_chrome_json",
    "trace",
    "tracer",
    "validate_chrome_trace",
]
