"""Chrome/Perfetto trace-event JSON export and validation.

The exporter emits the JSON Object Format of the Trace Event spec (the
format ``chrome://tracing`` and https://ui.perfetto.dev load directly):
``{"traceEvents": [...], "displayTimeUnit": "ms", ...}``.  Virtual-time
seconds become microsecond ``ts`` values; events are sorted by ``ts``
with record order as the tie-break, so per-thread ``B``/``E`` pairs keep
their stack discipline and the output is deterministic — the same
simulation exports byte-identical JSON every run.

:func:`validate_chrome_trace` is the well-formedness check CI runs on
the smoke trace: required keys on every event, globally sorted ``ts``,
and balanced, properly nested ``B``/``E`` pairs per ``(pid, tid)``.
"""

from __future__ import annotations

import json
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Tracer

#: single simulated process id used for all events
PID = 1

_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def _category(name: str) -> str:
    """Subsystem category: the event-name prefix before the first dot."""
    return name.split(".", 1)[0]


def to_events(tracer: "Tracer") -> list[dict]:
    """The tracer's records as Chrome trace-event dicts (metadata first)."""
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID,
            "tid": 0,
            "ts": 0.0,
            "args": {"name": "repro-sim"},
        }
    ]
    used_tids = sorted({tid for _ph, _name, _ts, tid, _args, _dur in tracer.events})
    for tid in used_tids:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": PID,
                "tid": tid,
                "ts": 0.0,
                "args": {"name": tracer.thread_name(tid)},
            }
        )
    # Stable sort: virtual time first, record order as tie-break, so
    # same-timestamp events keep their causal (execution) order.
    ordered = sorted(
        enumerate(tracer.events), key=lambda pair: (pair[1][2], pair[0])
    )
    for _seq, (ph, name, ts, tid, args, dur) in ordered:
        event: dict = {
            "ph": ph,
            "name": name,
            "cat": _category(name),
            "ts": ts * 1e6,
            "pid": PID,
            "tid": tid,
        }
        if dur is not None:
            event["dur"] = dur * 1e6
        if ph == "i":
            event["s"] = "t"  # thread-scoped instant
        if args:
            event["args"] = args
        events.append(event)
    return events


def to_chrome_json(tracer: "Tracer", indent: int | None = None) -> str:
    """Serialize the tracer as a Chrome trace JSON document."""
    doc = {
        "traceEvents": to_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "virtual",
            "categories": sorted(tracer.categories()),
        },
    }
    return json.dumps(doc, sort_keys=True, indent=indent) + "\n"


def validate_chrome_trace(doc: "str | dict") -> list[str]:
    """Well-formedness problems in a Chrome trace document (empty = OK).

    Checks the properties the rest of the stack relies on: the
    ``traceEvents`` list, required keys per event, globally
    non-decreasing ``ts``, and per-``(pid, tid)`` ``B``/``E`` balance
    with stack discipline (an ``E`` must match the innermost open ``B``).
    """
    problems: list[str] = []
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["document must be an object with a 'traceEvents' list"]
    events = doc["traceEvents"]
    last_ts: float | None = None
    stacks: dict[tuple, list[tuple[str, float]]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [key for key in _REQUIRED_KEYS if key not in event]
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: non-numeric ts {ts!r}")
            continue
        if event["ph"] != "M":  # metadata is pinned at ts 0, skip ordering
            if last_ts is not None and ts < last_ts:
                problems.append(
                    f"event {i}: ts {ts} < previous {last_ts} (unsorted)"
                )
            last_ts = ts
        thread = (event["pid"], event["tid"])
        if event["ph"] == "B":
            stacks.setdefault(thread, []).append((event["name"], ts))
        elif event["ph"] == "E":
            stack = stacks.setdefault(thread, [])
            if not stack:
                problems.append(
                    f"event {i}: E {event['name']!r} on {thread} with no open B"
                )
                continue
            open_name, open_ts = stack.pop()
            if open_name != event["name"]:
                problems.append(
                    f"event {i}: E {event['name']!r} does not match open "
                    f"B {open_name!r} on {thread}"
                )
            if ts < open_ts:
                problems.append(
                    f"event {i}: E at ts {ts} before its B at {open_ts}"
                )
        elif event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X without non-negative dur")
    for thread, stack in sorted(stacks.items()):
        if stack:
            names = [name for name, _ts in stack]
            problems.append(f"unclosed B events on {thread}: {names}")
    return problems


def validate_file(path: str) -> int:
    """Validate a trace file; print problems; return a process exit code."""
    with open(path) as fh:
        problems = validate_chrome_trace(fh.read())
    for problem in problems:
        print(f"trace: {problem}")
    return 1 if problems else 0
