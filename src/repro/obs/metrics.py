"""Labeled metrics: counters, gauges, fixed-bucket histograms.

The registry generalizes the flat :mod:`repro.sim.profile` counter block
to *labeled* series — ``fs.io.latency{driver="squashfuse", op="read"}``
instead of one global integer — while keeping the same operating rules:

- **off by default, zero-cost when disabled**: every mutator starts with
  one predicate check against :attr:`MetricsRegistry.enabled`; hot call
  sites additionally guard with the same check before building label
  dicts;
- **global**: one process-wide registry aggregates across environments,
  nodes, and engines, so a sweep that builds many of each still gets one
  roll-up;
- **deterministic**: values are pure functions of simulated behaviour
  (virtual-time costs, counts, bytes) — snapshots of the same run are
  identical.

The old ``repro.sim.profile`` counters stay the mechanism of record for
the per-event simulator hot path (they are plain attribute increments —
a dict-keyed labeled counter would measurably slow ``step()``), and are
**subsumed behind a compatibility bridge**: :meth:`snapshot` and
:meth:`render_table` fold them in as ``sim.<counter>`` series, and
:func:`enable`/:func:`disable` forward to ``profile.enable``/
``profile.disable`` (nesting-safely) so one switch arms the whole stack.

Histograms use *fixed* bucket boundaries chosen at first observation (or
passed explicitly), so merged snapshots are always bucket-compatible.
"""

from __future__ import annotations

import typing as _t

#: default latency buckets (seconds) — spans sub-100µs metadata ops to
#: multi-minute transfers; +inf is implicit
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0
)

_LabelKey = tuple[tuple[str, str], ...]
_SeriesKey = tuple[str, _LabelKey]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_series(name: str, labels: _LabelKey) -> str:
    """``name{k=v,...}`` — the conventional exposition format."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Histogram:
    """Fixed-bucket histogram: cumulative-style bucket counts + sum."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]):
        self.buckets = buckets
        #: counts[i] observations <= buckets[i]; counts[-1] is +inf
        self.counts = [0] * (len(buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation within the
        bucket holding the target rank (the Prometheus
        ``histogram_quantile`` rule): the rank's bucket is located by
        cumulative count, then the value is interpolated between the
        previous bound and the bucket's own bound, assuming observations
        spread uniformly inside the bucket.  Observations in the +inf
        overflow bucket clamp to the highest finite bound — a quantile
        cannot exceed what the bucket layout can resolve."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cum = 0.0
        prev_bound = 0.0
        for i, bound in enumerate(self.buckets):
            c = self.counts[i]
            if c:
                if cum + c >= rank:
                    frac = (rank - cum) / c
                    return prev_bound + (bound - prev_bound) * frac
                cum += c
            prev_bound = bound
        return self.buckets[-1] if self.buckets else 0.0

    def snapshot(self) -> dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """The process-wide labeled metrics store."""

    def __init__(self) -> None:
        self.enabled = False
        self._counters: dict[_SeriesKey, float] = {}
        self._gauges: dict[_SeriesKey, float] = {}
        self._histograms: dict[_SeriesKey, Histogram] = {}
        #: metric name -> fixed bucket bounds (set at first observation)
        self._hist_buckets: dict[str, tuple[float, ...]] = {}

    # -- lifecycle ----------------------------------------------------------
    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._hist_buckets.clear()

    # -- state transfer (shard runner) ---------------------------------------
    def capture_state(self) -> dict[str, object]:
        """A picklable copy of every recorded series.

        Keys are the internal ``(name, label_key)`` tuples — plain
        strings and tuples, so the state crosses a ``multiprocessing``
        boundary unchanged.  Histograms are captured as
        ``(buckets, counts, sum, count)`` tuples.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                key: (hist.buckets, tuple(hist.counts), hist.total, hist.count)
                for key, hist in self._histograms.items()
            },
            "hist_buckets": dict(self._hist_buckets),
        }

    def install_state(self, state: dict[str, object], merge: bool = False) -> None:
        """Load a :meth:`capture_state` blob back into the registry.

        With ``merge=False`` the registry is replaced wholesale.  With
        ``merge=True`` the blob is *folded in* under the shard-merge
        rules: counters and histogram bucket counts add, gauges take the
        incoming value (last writer wins — callers merge cells in
        deterministic cell-index order, never completion order), and
        histogram bucket bounds must agree (they are fixed per metric
        name precisely so merged snapshots stay bucket-compatible).
        """
        if not merge:
            self.reset()
        counters = _t.cast(dict, state["counters"])
        for key, value in counters.items():
            self._counters[key] = self._counters.get(key, 0.0) + value if merge else value
        gauges = _t.cast(dict, state["gauges"])
        self._gauges.update(gauges)
        for name, bounds in _t.cast(dict, state["hist_buckets"]).items():
            existing = self._hist_buckets.setdefault(name, bounds)
            if existing != bounds:
                raise ValueError(
                    f"histogram {name!r}: bucket bounds differ across shards "
                    f"({existing} vs {bounds})"
                )
        for key, (buckets, counts, total, count) in _t.cast(dict, state["histograms"]).items():
            hist = self._histograms.get(key)
            if hist is None or not merge:
                hist = self._histograms[key] = Histogram(tuple(buckets))
            if tuple(hist.buckets) != tuple(buckets):
                raise ValueError(
                    f"histogram series {key!r}: bucket bounds differ across shards"
                )
            for i, c in enumerate(counts):
                hist.counts[i] += c
            hist.total += total
            hist.count += count

    # -- mutators (all no-ops while disabled) --------------------------------
    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0.0) + value

    # -- interned-series fast path -------------------------------------------
    def series_key(self, name: str, **labels: object) -> _SeriesKey:
        """Intern a series identity once, outside the hot loop.

        A per-event ``inc(name, tenant=...)`` rebuilds and re-sorts the
        label dict on every call; hot paths (the fleet engine does one
        increment per container start) precompute the key and use
        :meth:`inc_series` instead.  The key is exactly the internal
        storage key, so interned and dict-labeled increments land on the
        same series.
        """
        return (name, _label_key(labels))

    def inc_series(self, key: _SeriesKey, value: float = 1.0) -> None:
        """Increment a series by its pre-interned :meth:`series_key`."""
        if not self.enabled:
            return
        self._counters[key] = self._counters.get(key, 0.0) + value

    def observe_series(
        self,
        key: _SeriesKey,
        value: float,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        """Histogram observation by pre-interned :meth:`series_key`.

        Same storage as :meth:`observe` — interned and dict-labeled
        observations land on the same series — without rebuilding and
        re-sorting the label dict per call (the kubelet observes one
        pod-start latency per pod).
        """
        if not self.enabled:
            return
        hist = self._histograms.get(key)
        if hist is None:
            name = key[0]
            bounds = self._hist_buckets.get(name)
            if bounds is None:
                bounds = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
                self._hist_buckets[name] = bounds
            hist = self._histograms[key] = Histogram(bounds)
        hist.observe(value)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        self._gauges[(name, _label_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> None:
        if not self.enabled:
            return
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            bounds = self._hist_buckets.get(name)
            if bounds is None:
                bounds = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
                self._hist_buckets[name] = bounds
            hist = self._histograms[key] = Histogram(bounds)
        hist.observe(value)

    # -- readers (work regardless of enabled, for post-run reporting) --------
    def get_counter(self, name: str, **labels: object) -> float:
        return self._counters.get((name, _label_key(labels)), 0.0)

    def get_gauge(self, name: str, **labels: object) -> float | None:
        return self._gauges.get((name, _label_key(labels)))

    def get_histogram(self, name: str, **labels: object) -> Histogram | None:
        return self._histograms.get((name, _label_key(labels)))

    def series(self, prefix: str = "") -> list[str]:
        """Every recorded series name (formatted), optionally filtered."""
        keys: list[_SeriesKey] = [
            *self._counters, *self._gauges, *self._histograms
        ]
        out = [format_series(name, labels) for name, labels in keys]
        return sorted(s for s in out if s.startswith(prefix))

    def snapshot(self, include_sim: bool = True) -> dict[str, object]:
        """A plain, JSON-ready dict of every series.

        With ``include_sim`` the flat :mod:`repro.sim.profile` counters
        are bridged in as ``sim.<name>`` counter series (the
        compatibility shim over the pre-obs counter block).
        """
        out: dict[str, object] = {}
        for (name, labels), value in sorted(self._counters.items()):
            out[format_series(name, labels)] = value
        for (name, labels), value in sorted(self._gauges.items()):
            out[format_series(name, labels)] = value
        for (name, labels), hist in sorted(self._histograms.items()):
            out[format_series(name, labels)] = hist.snapshot()
        if include_sim:
            from repro.sim import profile as _profile

            for cname, cvalue in _profile.counters.snapshot().items():
                out[f"sim.{cname}"] = cvalue
        return out

    def render_table(self, include_sim: bool = True) -> str:
        """Human-readable metrics table (the ``--metrics`` CLI output)."""
        lines = [f"{'metric':<58} {'value':>14}", "-" * 73]
        for series, value in self.snapshot(include_sim=include_sim).items():
            if isinstance(value, dict):  # histogram
                mean = value["sum"] / value["count"] if value["count"] else 0.0
                rendered = f"n={value['count']} mean={mean:.4g}"
            elif isinstance(value, float) and not value.is_integer():
                rendered = f"{value:.6g}"
            else:
                rendered = str(int(value))
            lines.append(f"{series:<58} {rendered:>14}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MetricsRegistry {'on' if self.enabled else 'off'} "
            f"counters={len(self._counters)} gauges={len(self._gauges)} "
            f"histograms={len(self._histograms)}>"
        )


#: The global registry every instrumentation point feeds.
registry = MetricsRegistry()


def enable(reset: bool = True, sim_counters: bool = True) -> MetricsRegistry:
    """Arm the registry (and, by default, the sim-core profile counters
    through their nesting-safe ``enable``)."""
    if reset:
        registry.reset()
    registry.enabled = True
    if sim_counters:
        from repro.sim import profile as _profile

        _profile.enable(reset=reset)
    return registry


def disable(sim_counters: bool = True) -> MetricsRegistry:
    registry.enabled = False
    if sim_counters:
        from repro.sim import profile as _profile

        _profile.disable()
    return registry


def reset() -> None:
    registry.reset()


def inc(name: str, value: float = 1.0, **labels: object) -> None:
    registry.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels: object) -> None:
    registry.set_gauge(name, value, **labels)


def observe(
    name: str,
    value: float,
    buckets: tuple[float, ...] | None = None,
    **labels: object,
) -> None:
    registry.observe(name, value, buckets=buckets, **labels)


# -- OpenMetrics-style text exposition ---------------------------------------

def _om_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _om_labels(labels: _LabelKey, extra: str = "") -> str:
    parts = [f'{_om_name(k)}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _om_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_openmetrics(reg: MetricsRegistry | None = None, include_sim: bool = True) -> str:
    """Render the registry in OpenMetrics-style text exposition.

    Dots in metric names become underscores, counters gain the
    conventional ``_total`` suffix, and histograms expose cumulative
    ``le``-labeled buckets plus ``_sum``/``_count`` — close enough to the
    wire format that standard dashboards parse it, while staying a pure
    deterministic function of the run.  With ``include_sim`` the flat
    :mod:`repro.sim.profile` counters are bridged in as ``sim_*``.
    """
    reg = registry if reg is None else reg
    lines: list[str] = []
    by_name: dict[str, list[tuple[_LabelKey, float]]] = {}
    for (name, labels), value in reg._counters.items():
        by_name.setdefault(name, []).append((labels, value))
    for name in sorted(by_name):
        om = _om_name(name)
        lines.append(f"# TYPE {om} counter")
        for labels, value in sorted(by_name[name]):
            lines.append(f"{om}_total{_om_labels(labels)} {_om_value(value)}")
    by_name.clear()
    for (name, labels), value in reg._gauges.items():
        by_name.setdefault(name, []).append((labels, value))
    for name in sorted(by_name):
        om = _om_name(name)
        lines.append(f"# TYPE {om} gauge")
        for labels, value in sorted(by_name[name]):
            lines.append(f"{om}{_om_labels(labels)} {_om_value(value)}")
    by_hist: dict[str, list[tuple[_LabelKey, Histogram]]] = {}
    for (name, labels), hist in reg._histograms.items():
        by_hist.setdefault(name, []).append((labels, hist))
    for name in sorted(by_hist):
        om = _om_name(name)
        lines.append(f"# TYPE {om} histogram")
        for labels, hist in sorted(by_hist[name], key=lambda lv: lv[0]):
            cum = 0
            for bound, c in zip(hist.buckets, hist.counts):
                cum += c
                le = 'le="%s"' % _om_value(bound)
                lines.append(f"{om}_bucket{_om_labels(labels, le)} {cum}")
            cum += hist.counts[-1]
            inf_le = 'le="+Inf"'
            lines.append(f"{om}_bucket{_om_labels(labels, inf_le)} {cum}")
            lines.append(f"{om}_sum{_om_labels(labels)} {_om_value(hist.total)}")
            lines.append(f"{om}_count{_om_labels(labels)} {hist.count}")
    if include_sim:
        from repro.sim import profile as _profile

        for cname, cvalue in _profile.counters.snapshot().items():
            om = _om_name(f"sim.{cname}")
            lines.append(f"# TYPE {om} counter")
            lines.append(f"{om}_total {_om_value(float(cvalue))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
