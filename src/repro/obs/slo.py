"""Declarative SLO rules evaluated over sampled virtual-time series.

The survey's operational pitch — adaptive sites *notice* degradation and
react — needs more than raw series: it needs the alerting layer.  This
module provides it in the same declarative, JSON-roundtrip style as
:class:`~repro.faults.plan.FaultPlan`:

- :class:`SloRule` — one named rule over any ``name{label=}`` series
  selector, in three shapes: **threshold** (compare a sampled series
  against a bound, e.g. ``k8s.pod.start_seconds.p99 > 60``),
  **error_ratio** (windowed failure/total increment ratio of two counter
  series), and **burn_rate** (the error ratio divided by the SLO's error
  budget ``1 - objective`` — the multi-window burn-rate alerting rule
  from SRE practice, evaluated here on one window);
- :class:`SloRuleSet` — an ordered list of rules with ``to_json`` /
  ``from_file`` mirroring ``FaultPlan``;
- :func:`evaluate` — walks each rule over the recorder's grid-aligned
  points with a pending→firing→resolved state machine (``for_s`` is how
  long the condition must hold before the alert fires), producing
  deterministic :class:`AlertEvent` fire/resolve pairs and
  :class:`BreachWindow` spans;
- :class:`ScorecardReport` — the roll-up document (schema
  ``repro-slo-scorecard/1``): per-rule breach stats, worst-offending
  series, per-entity health (grouped by ``tenant=`` / ``node=`` / ...
  labels), histogram p50/p99 columns via
  :meth:`~repro.obs.metrics.Histogram.quantile`, and the chaos
  detection-latency table.

Selectors are label-subset matches: ``retry.attempts.rate`` matches every
labeled retry series, ``fs.io.bytes.rate{driver=overlayfs}`` only that
driver.  Ratio rules name *counter* series (``k8s.pods_failed``); the
engine reads the recorder's derived ``.rate`` points and reconstructs
per-window increments from them.

Everything here is a pure function of the recorder's contents, so two
runs of the same scenario produce byte-identical alerts, scorecards, and
trace instants.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from repro.obs.metrics import MetricsRegistry, _LabelKey, format_series
from repro.obs.timeseries import TimeSeriesRecorder

#: schema tag for the scorecard document
SCORECARD_SCHEMA = "repro-slo-scorecard/1"

#: rule kinds
KINDS = ("threshold", "error_ratio", "burn_rate")

#: label names that identify an "entity" for the per-entity health table
ENTITY_LABELS = ("tenant", "node", "engine", "driver", "backend", "registry", "shard")


def parse_selector(text: str) -> tuple[str, _LabelKey]:
    """``name{k=v,...}`` -> ``(name, sorted label pairs)``.

    Values may be bare or double-quoted; an empty/missing label block
    matches every series with the name.
    """
    name, brace, rest = text.partition("{")
    name = name.strip()
    if not brace:
        return name, ()
    rest = rest.strip()
    if not rest.endswith("}"):
        raise ValueError(f"unterminated label block in selector {text!r}")
    body = rest[:-1].strip()
    if not body:
        return name, ()
    pairs = []
    for part in body.split(","):
        key, eq, value = part.partition("=")
        if not eq:
            raise ValueError(f"bad label {part!r} in selector {text!r}")
        value = value.strip().strip('"')
        pairs.append((key.strip(), value))
    return name, tuple(sorted(pairs))


@dataclasses.dataclass(frozen=True)
class SloRule:
    """One named alerting rule over sampled series.

    Three kinds.  **threshold** watches every stored series matching
    ``series`` (a ``name{label=}`` selector) and compares each sampled
    value ``op`` (``">"`` / ``"<"``) against ``value`` — e.g. "page when
    ``fleet.pending{shard=3}`` exceeds 512" or, with ``op="<"``, "page
    when ``fleet.warm_rate`` drops below 0.5".  **error_ratio** divides
    the windowed increments of the ``numerator`` counter by the
    ``denominator`` counter over the trailing ``window_s`` and compares
    that ratio.  **burn_rate** is the same ratio divided by the error
    budget ``1 - objective`` — a value of 2.0 means the budget burns at
    twice the sustainable rate.

    ``for_s`` is the hold time: the condition must stay true for that
    many virtual seconds of consecutive samples before the alert fires
    (0 fires on the first breaching sample).  Rules are frozen/hashable
    and JSON-roundtrip via :meth:`to_dict` / :meth:`from_dict`, so a
    ruleset file is reviewable configuration, not code.
    """

    name: str
    kind: str = "threshold"
    #: threshold rules: the series selector to watch
    series: str = ""
    #: comparison: observed ``op`` value  (">" or "<")
    op: str = ">"
    value: float = 0.0
    #: condition must hold this long (virtual s) before the alert fires
    for_s: float = 0.0
    #: ratio rules: counter selectors (the ``.rate`` series are read)
    numerator: str = ""
    denominator: str = ""
    #: ratio rules: sliding window for the increment sums
    window_s: float = 300.0
    #: burn_rate only: the SLO target; error budget is ``1 - objective``
    objective: float = 0.99

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"rule {self.name!r}: unknown kind {self.kind!r}")
        if self.op not in (">", "<"):
            raise ValueError(f"rule {self.name!r}: op must be '>' or '<'")
        if self.kind == "threshold" and not self.series:
            raise ValueError(f"rule {self.name!r}: threshold rules need a series")
        if self.kind != "threshold" and not (self.numerator and self.denominator):
            raise ValueError(
                f"rule {self.name!r}: {self.kind} rules need numerator and denominator"
            )
        if self.kind == "burn_rate" and not 0.0 < self.objective < 1.0:
            raise ValueError(f"rule {self.name!r}: objective must be in (0, 1)")

    def to_dict(self) -> dict[str, object]:
        out: dict[str, object] = {"name": self.name, "kind": self.kind}
        if self.series:
            out["series"] = self.series
        if self.op != ">":
            out["op"] = self.op
        out["value"] = self.value
        if self.for_s:
            out["for_s"] = self.for_s
        if self.numerator:
            out["numerator"] = self.numerator
        if self.denominator:
            out["denominator"] = self.denominator
        if self.kind != "threshold":
            out["window_s"] = self.window_s
        if self.kind == "burn_rate":
            out["objective"] = self.objective
        return out

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SloRule":
        return cls(
            name=str(data["name"]),
            kind=str(data.get("kind", "threshold")),
            series=str(data.get("series", "")),
            op=str(data.get("op", ">")),
            value=float(data.get("value", 0.0)),  # type: ignore[arg-type]
            for_s=float(data.get("for_s", 0.0)),  # type: ignore[arg-type]
            numerator=str(data.get("numerator", "")),
            denominator=str(data.get("denominator", "")),
            window_s=float(data.get("window_s", 300.0)),  # type: ignore[arg-type]
            objective=float(data.get("objective", 0.99)),  # type: ignore[arg-type]
        )


class SloRuleSet:
    """An ordered, name-unique list of :class:`SloRule`\\ s.

    Mirrors :class:`~repro.faults.plan.FaultPlan`'s serialization
    contract — ``to_json`` / ``from_json`` / ``to_file`` / ``from_file``
    — so scorecards can name the exact ruleset they were scored against
    and CI can pin rule files next to fault plans.  Iteration order is
    construction order; duplicate rule names raise at construction so an
    evaluation never silently merges two rules' breach windows.
    """

    def __init__(self, rules: _t.Iterable[SloRule] = (), name: str | None = None):
        self.rules: list[SloRule] = list(rules)
        self.name = name
        seen: set[str] = set()
        for rule in self.rules:
            if rule.name in seen:
                raise ValueError(f"duplicate rule name {rule.name!r}")
            seen.add(rule.name)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> _t.Iterator[SloRule]:
        return iter(self.rules)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SloRuleSet {self.name or 'unnamed'} rules={len(self.rules)}>"

    # -- serialization (FaultPlan's contract) -------------------------------
    def to_json(self, indent: int | None = 2) -> str:
        doc: dict[str, object] = {"rules": [r.to_dict() for r in self.rules]}
        if self.name is not None:
            doc["name"] = self.name
        return json.dumps(doc, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SloRuleSet":
        doc = json.loads(text)
        if isinstance(doc, list):  # bare rule list is accepted too
            doc = {"rules": doc}
        rules = [SloRule.from_dict(r) for r in doc.get("rules", [])]
        return cls(rules, name=doc.get("name"))

    def to_file(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def from_file(cls, path: str) -> "SloRuleSet":
        with open(path) as fh:
            return cls.from_json(fh.read())


def default_chaos_rules() -> SloRuleSet:
    """The out-of-the-box rule set chaos runs evaluate when no ``--rules``
    file is given.  Each rule watches a *symptom* series — what a site
    dashboard would page on — never the injector's own bookkeeping, so
    detection latency measures the stack noticing, not the fault firing.
    """
    return SloRuleSet(
        [
            # Engine/registry retry storms: any retry activity is a page.
            SloRule(name="retry-storm", series="retry.attempts.rate", value=0.0),
            # WLM symptoms of a node crash: failure sweeps and requeues.
            SloRule(name="node-failures", series="wlm.node_failures.rate", value=0.0),
            SloRule(name="job-requeues", series="wlm.job_requeues.rate", value=0.0),
            # Kubelet-visible pod failures (hook failures, pull exhaustion).
            SloRule(name="pod-failures", series="k8s.pods_failed.rate", value=0.0),
            # Shared-FS metadata latency (MDS degradation/outage).
            SloRule(name="mds-latency", series="fs.mds.wait.p99", value=0.5),
            # The startup SLO itself: p99 pod start under a minute.
            SloRule(name="pod-start-p99", series="k8s.pod.start_seconds.p99", value=60.0),
            # Failure-ratio and budget-burn forms over the same counters.
            SloRule(
                name="pod-failure-ratio",
                kind="error_ratio",
                numerator="k8s.pods_failed",
                denominator="k8s.pods_started",
                value=0.2,
                window_s=300.0,
            ),
            SloRule(
                name="start-budget-burn",
                kind="burn_rate",
                numerator="k8s.pods_failed",
                denominator="k8s.pods_started",
                objective=0.9,
                value=2.0,
                window_s=600.0,
            ),
        ],
        name="default-chaos",
    )


def default_fleet_rules() -> SloRuleSet:
    """The out-of-the-box rule set for fleet chaos runs (``fleet --slo``).

    Watches the ``fleet.*`` series the shard engines sample: queueing
    symptoms (pending-depth ceiling, per-start wait budgets), cache
    economics (warm-rate floor), and the chaos-facing delta series
    (requeues, failures, retry activity, nodes down).  All threshold
    rules — the fleet engine records per-tick deltas itself, so no
    ``.rate`` derivation is needed.  Like :func:`default_chaos_rules`,
    every rule watches a *symptom* a site dashboard would page on, so
    detection latency measures the stack noticing the fault.
    """
    return SloRuleSet(
        [
            # Queueing symptoms: a deep placement backlog or blown wait
            # budgets mean capacity loss or a pull storm.
            SloRule(name="pending-depth", series="fleet.pending", value=512.0),
            SloRule(name="wait-budget", series="fleet.wait_mean", value=30.0),
            SloRule(
                name="tenant-wait-budget",
                series="fleet.tenant.wait_mean",
                value=60.0,
            ),
            # Cache economics: the warm-start rate dropping below half
            # (held 2 min to skip the cold-cache ramp) is a cache wipe
            # or an image-popularity shift.
            SloRule(
                name="warm-rate-floor",
                series="fleet.warm_rate",
                op="<",
                value=0.5,
                for_s=120.0,
            ),
            # Chaos symptoms: crashed nodes, requeue sweeps, start
            # failures, registry retry storms.
            SloRule(name="nodes-down", series="fleet.nodes_down", value=0.0),
            SloRule(name="requeue-sweep", series="fleet.requeues", value=0.0),
            SloRule(name="start-failures", series="fleet.failures", value=0.0),
            SloRule(name="registry-retry-storm", series="fleet.retries", value=0.0),
        ],
        name="default-fleet",
    )


@dataclasses.dataclass(frozen=True)
class AlertEvent:
    """One fire or resolve edge, stamped in virtual time."""

    rule: str
    series: str
    state: str  # "fire" | "resolve"
    at: float
    value: float

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "series": self.series,
            "state": self.state,
            "at": self.at,
            "value": round(self.value, 6),
        }


@dataclasses.dataclass(frozen=True)
class BreachWindow:
    """A [fire, resolve) span; ``end=None`` means still firing at run end."""

    rule: str
    series: str
    start: float
    end: float | None

    def duration(self, end_time: float) -> float:
        return (self.end if self.end is not None else end_time) - self.start

    def to_dict(self, end_time: float) -> dict[str, object]:
        return {
            "rule": self.rule,
            "series": self.series,
            "start": self.start,
            "end": self.end,
            "duration": round(self.duration(end_time), 6),
        }


@dataclasses.dataclass
class SloEvaluation:
    """The outcome of :func:`evaluate` — sorted, deterministic."""

    alerts: list[AlertEvent]
    breaches: list[BreachWindow]
    end_time: float

    @property
    def fires(self) -> int:
        return sum(1 for a in self.alerts if a.state == "fire")


def _compare(value: float, op: str, bound: float) -> bool:
    return value > bound if op == ">" else value < bound


def _walk(
    rule: SloRule,
    series: str,
    points: _t.Sequence[tuple[float, float]],
    op: str,
    bound: float,
    alerts: list[AlertEvent],
    breaches: list[BreachWindow],
) -> None:
    """The pending→firing→resolved state machine over one point stream."""
    pending: float | None = None
    fire_t: float | None = None
    for t, v in points:
        if _compare(v, op, bound):
            if fire_t is None:
                if pending is None:
                    pending = t
                if t - pending >= rule.for_s:
                    fire_t = t
                    alerts.append(AlertEvent(rule.name, series, "fire", t, v))
        else:
            pending = None
            if fire_t is not None:
                alerts.append(AlertEvent(rule.name, series, "resolve", t, v))
                breaches.append(BreachWindow(rule.name, series, fire_t, t))
                fire_t = None
    if fire_t is not None:
        breaches.append(BreachWindow(rule.name, series, fire_t, None))


def _increments(points: _t.Sequence[tuple[float, float]], interval: float) -> list[tuple[float, float]]:
    """Turn a ``.rate`` point stream back into per-tick increments.

    Rates were recorded as delta/gap with the gap equal to the spacing
    between consecutive ticks, so ``rate * (t_i - t_{i-1})`` recovers the
    raw delta; the first point (no predecessor) uses the grid interval,
    matching what the sampler assumed when it had no previous tick.
    """
    out: list[tuple[float, float]] = []
    prev_t: float | None = None
    for t, rate in points:
        gap = (t - prev_t) if prev_t is not None and t > prev_t else interval
        out.append((t, rate * gap))
        prev_t = t
    return out


def _ratio_points(
    rule: SloRule, rec: TimeSeriesRecorder
) -> list[tuple[float, float]]:
    """The windowed num/den increment ratio, one point per grid tick."""
    num_name, num_labels = parse_selector(rule.numerator)
    den_name, den_labels = parse_selector(rule.denominator)
    num_inc: dict[float, float] = {}
    den_inc: dict[float, float] = {}
    for sink, name, labels in ((num_inc, num_name, num_labels), (den_inc, den_name, den_labels)):
        for key in rec.match(name + ".rate", labels):
            for t, inc in _increments(rec._points[key], rec.interval):
                sink[t] = sink.get(t, 0.0) + inc
    ticks = sorted(set(num_inc) | set(den_inc))
    out: list[tuple[float, float]] = []
    window: float = rule.window_s
    for t in ticks:
        lo = t - window
        num = sum(v for tt, v in num_inc.items() if lo < tt <= t)
        den = sum(v for tt, v in den_inc.items() if lo < tt <= t)
        out.append((t, (num / den) if den > 0 else 0.0))
    return out


def evaluate(
    rules: SloRuleSet, rec: TimeSeriesRecorder, end_time: float
) -> SloEvaluation:
    """Run every rule over the recorder's points.

    Threshold rules fan out over each matching stored series
    independently; ratio rules aggregate matching series into one
    logical stream labeled by the numerator selector.  The returned
    alerts are sorted by ``(at, rule, series, state)`` so the evaluation
    is identical regardless of rule or series insertion order.
    """
    alerts: list[AlertEvent] = []
    breaches: list[BreachWindow] = []
    for rule in rules:
        if rule.kind == "threshold":
            name, labels = parse_selector(rule.series)
            for key in rec.match(name, labels):
                _walk(
                    rule,
                    format_series(*key),
                    rec._points[key],
                    rule.op,
                    rule.value,
                    alerts,
                    breaches,
                )
        else:
            points = _ratio_points(rule, rec)
            if rule.kind == "burn_rate":
                budget = 1.0 - rule.objective
                points = [(t, v / budget) for t, v in points]
            _walk(rule, rule.numerator, points, rule.op, rule.value, alerts, breaches)
    alerts.sort(key=lambda a: (a.at, a.rule, a.series, a.state))
    breaches.sort(key=lambda b: (b.start, b.rule, b.series))
    return SloEvaluation(alerts=alerts, breaches=breaches, end_time=end_time)


def detection_latencies(
    injected_at: dict[str, float], evaluation: SloEvaluation
) -> dict[str, float | None]:
    """Per fault kind: first alert fire at/after the kind's first
    injection instant, minus that instant (``None`` = never detected).

    Attribution is deliberately loose — any alert counts, exactly like a
    human on call: the question scored is "how long after the fault did
    the monitoring stack notice *something*", not root-cause analysis.
    """
    fires = sorted(a.at for a in evaluation.alerts if a.state == "fire")
    out: dict[str, float | None] = {}
    for kind in sorted(injected_at):
        first = injected_at[kind]
        hit = next((t for t in fires if t >= first), None)
        out[kind] = round(hit - first, 6) if hit is not None else None
    return out


@dataclasses.dataclass
class ScorecardReport:
    """The SLO roll-up document for one run (JSON + rendered table)."""

    scenario: str
    seed: int | None
    interval: float
    end_time: float
    samples: int
    rules: list[dict[str, object]]
    alerts: list[dict[str, object]]
    breach_windows: list[dict[str, object]]
    entities: list[dict[str, object]]
    worst: list[dict[str, object]]
    percentiles: list[dict[str, object]]
    detection: dict[str, float | None]

    @classmethod
    def build(
        cls,
        scenario: str,
        ruleset: SloRuleSet,
        evaluation: SloEvaluation,
        rec: TimeSeriesRecorder,
        registry: MetricsRegistry | None = None,
        seed: int | None = None,
        detection: dict[str, float | None] | None = None,
    ) -> "ScorecardReport":
        end_time = evaluation.end_time
        # per-rule stats
        rule_rows: list[dict[str, object]] = []
        for rule in ruleset:
            windows = [b for b in evaluation.breaches if b.rule == rule.name]
            breach_s = sum(b.duration(end_time) for b in windows)
            worst_series = max(
                windows, key=lambda b: (b.duration(end_time), b.series), default=None
            )
            rule_rows.append(
                {
                    "rule": rule.name,
                    "kind": rule.kind,
                    "fires": sum(
                        1
                        for a in evaluation.alerts
                        if a.rule == rule.name and a.state == "fire"
                    ),
                    "breach_s": round(breach_s, 6),
                    "worst_series": worst_series.series if worst_series else None,
                }
            )
        # per-entity health: breach seconds grouped by identifying labels
        entity_breach: dict[tuple[str, str], float] = {}
        for b in evaluation.breaches:
            _name, labels = parse_selector(b.series)
            for k, v in labels:
                if k in ENTITY_LABELS:
                    ek = (k, v)
                    entity_breach[ek] = entity_breach.get(ek, 0.0) + b.duration(end_time)
        entities = [
            {
                "label": k,
                "entity": v,
                "breach_s": round(secs, 6),
                "health": round(max(0.0, 1.0 - secs / end_time), 6) if end_time else 1.0,
            }
            for (k, v), secs in sorted(
                entity_breach.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        # worst offenders: series ranked by total breach seconds
        series_breach: dict[str, float] = {}
        for b in evaluation.breaches:
            series_breach[b.series] = series_breach.get(b.series, 0.0) + b.duration(end_time)
        worst = [
            {"series": s, "breach_s": round(secs, 6)}
            for s, secs in sorted(series_breach.items(), key=lambda kv: (-kv[1], kv[0]))[:10]
        ]
        # latency percentiles straight off the registry histograms
        percentiles: list[dict[str, object]] = []
        if registry is not None:
            for (name, labels), hist in sorted(registry._histograms.items()):
                if hist.count:
                    percentiles.append(
                        {
                            "series": format_series(name, labels),
                            "count": hist.count,
                            "mean": round(hist.mean, 6),
                            "p50": round(hist.quantile(0.5), 6),
                            "p99": round(hist.quantile(0.99), 6),
                        }
                    )
        return cls(
            scenario=scenario,
            seed=seed,
            interval=rec.interval,
            end_time=round(end_time, 6),
            samples=rec.samples,
            rules=rule_rows,
            alerts=[a.to_dict() for a in evaluation.alerts],
            breach_windows=[b.to_dict(end_time) for b in evaluation.breaches],
            entities=entities,
            worst=worst,
            percentiles=percentiles,
            detection=detection or {},
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": SCORECARD_SCHEMA,
            "scenario": self.scenario,
            "seed": self.seed,
            "interval": self.interval,
            "end_time": self.end_time,
            "samples": self.samples,
            "rules": self.rules,
            "alerts": self.alerts,
            "breach_windows": self.breach_windows,
            "entities": self.entities,
            "worst": self.worst,
            "percentiles": self.percentiles,
            "detection": self.detection,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"SLO scorecard: {self.scenario}"
            + (f" (seed={self.seed})" if self.seed is not None else ""),
            f"  sampled every {self.interval:g}s of virtual time, "
            f"{self.samples} ticks, end t={self.end_time:g}s",
            "",
            f"  {'rule':<24} {'kind':<12} {'fires':>5} {'breach_s':>10}  worst series",
            "  " + "-" * 78,
        ]
        for row in self.rules:
            lines.append(
                f"  {row['rule']:<24} {row['kind']:<12} {row['fires']:>5} "
                f"{row['breach_s']:>10.6g}  {row['worst_series'] or '-'}"
            )
        if self.detection:
            lines.append("")
            lines.append(f"  {'fault kind':<24} {'detection latency':>18}")
            lines.append("  " + "-" * 44)
            for kind, lat in self.detection.items():
                rendered = f"{lat:.6g}s" if lat is not None else "undetected"
                lines.append(f"  {kind:<24} {rendered:>18}")
        if self.entities:
            lines.append("")
            lines.append(f"  {'entity':<32} {'breach_s':>10} {'health':>8}")
            lines.append("  " + "-" * 52)
            for row in self.entities[:10]:
                label = f"{row['label']}={row['entity']}"
                lines.append(
                    f"  {label:<32} {row['breach_s']:>10.6g} {row['health']:>8.4f}"
                )
        return "\n".join(lines)
