"""Virtual-time time-series sampling over the metrics registry.

:mod:`repro.obs.metrics` answers "how much, in total?" — point-in-time
counters read once after the run.  Site operators asking "did registry
pull latency degrade *during* the outage window?" need the axis the
registry deliberately drops: virtual time.  This module adds it without
touching the per-event hot path:

- a process-wide :class:`TimeSeriesRecorder` holds a ring buffer of
  ``(t, value)`` points per ``name{label=}`` series;
- a **sampler** visits the recorder at a fixed virtual-time interval and
  turns the registry's current state into points — gauges verbatim,
  counters as **rates** (``name.rate``, delta over the sampling gap) and
  histograms as running quantiles (``name.p50`` / ``name.p99`` via
  :meth:`~repro.obs.metrics.Histogram.quantile`);
- engines register **probes** — callbacks invoked at each sample tick —
  to publish state the registry never sees (queue depths, live slots).

Sampling is driven two ways, matching the two execution styles in the
tree.  Event-dense engines (the fleet pump) call :meth:`sample_due`
inline once per epoch — one predicate check and a float compare when
disabled or not yet due.  Process-based scenarios install a dedicated
simulation process via :func:`install_sampler` that wakes at each grid
boundary and **self-terminates when it is the only pending work**, so
``env.run()`` drains and ``env.run(until=...)`` deadlines behave exactly
as they would without it.

Sample timestamps are snapped to the grid (``floor(now/interval) *
interval``), so a cell sampled inline at irregular epoch times and a
cell sampled by the process land points on the same time axis.  Like the
registry, the recorder is **global, off by default, and shard-mergeable**:
:meth:`capture_state` / :meth:`install_state` mirror the registry's
contract, and ``merge=True`` concatenates per-series points in the order
cells are merged (deterministic cell-index order), keeping ``--jobs N``
byte-identical to serial.
"""

from __future__ import annotations

import json
import math
import typing as _t
from collections import deque

from repro.obs.metrics import (
    MetricsRegistry,
    _label_key,
    _LabelKey,
    _om_labels,
    _om_name,
    _om_value,
    _SeriesKey,
    format_series,
)

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment

#: default sampling interval (virtual seconds)
DEFAULT_INTERVAL = 5.0

#: default ring-buffer capacity (points per series)
DEFAULT_CAPACITY = 4096

#: schema tag for the JSON export
TIMESERIES_SCHEMA = "repro-timeseries/1"

#: histogram quantiles sampled as ``name.p50`` / ``name.p99`` series
_QUANTILES: tuple[tuple[str, float], ...] = ((".p50", 0.5), (".p99", 0.99))


class TimeSeriesRecorder:
    """Ring-buffered ``(t, value)`` points per labeled series."""

    __slots__ = (
        "enabled",
        "interval",
        "capacity",
        "samples",
        "_points",
        "_last_counters",
        "_last_t",
        "_next_due",
        "_probes",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.interval = DEFAULT_INTERVAL
        self.capacity = DEFAULT_CAPACITY
        #: total sample ticks taken (merged additively across shards)
        self.samples = 0
        self._points: dict[_SeriesKey, deque[tuple[float, float]]] = {}
        #: counter values at the previous tick, for rate computation
        self._last_counters: dict[_SeriesKey, float] = {}
        self._last_t: float | None = None
        self._next_due = 0.0
        self._probes: list[_t.Callable[[float], None]] = []

    # -- lifecycle ----------------------------------------------------------
    def enable(
        self,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_CAPACITY,
        reset: bool = True,
    ) -> "TimeSeriesRecorder":
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        if reset:
            self.reset()
        self.enabled = True
        self.interval = float(interval)
        self.capacity = int(capacity)
        return self

    def disable(self) -> "TimeSeriesRecorder":
        self.enabled = False
        return self

    def reset(self) -> None:
        self.samples = 0
        self._points.clear()
        self._last_counters.clear()
        self._last_t = None
        self._next_due = 0.0
        self._probes.clear()

    # -- probes --------------------------------------------------------------
    def add_probe(self, fn: _t.Callable[[float], None]) -> None:
        """Register a callback invoked with the grid timestamp at every
        sample tick (engines publish queue depths, live counts...).
        Probes are cleared by :meth:`reset` — they hold references to the
        engines that registered them, which must not outlive the run."""
        self._probes.append(fn)

    # -- point recording -----------------------------------------------------
    def series_key(self, name: str, **labels: object) -> _SeriesKey:
        """Intern a series identity (same storage key as the registry)."""
        return (name, _label_key(labels))

    def record(self, name: str, t: float, value: float, **labels: object) -> None:
        """Append one point; creates the series ring buffer on first use."""
        self.record_series((name, _label_key(labels)), t, value)

    def record_series(self, key: _SeriesKey, t: float, value: float) -> None:
        points = self._points.get(key)
        if points is None:
            points = self._points[key] = deque(maxlen=self.capacity)
        points.append((t, float(value)))

    # -- sampling ------------------------------------------------------------
    def due(self, now: float) -> bool:
        """One predicate + one compare — the inline hot-path gate."""
        return self.enabled and now >= self._next_due

    def sample_due(self, now: float, registry: MetricsRegistry | None = None) -> float | None:
        """Sample iff ``now`` has crossed the next grid boundary.

        Returns the grid timestamp used, or ``None`` when disabled / not
        yet due.  This is the inline driver: event-dense engines call it
        once per batch and pay ``due()`` when nothing happens.
        """
        if not self.enabled or now < self._next_due:
            return None
        return self.sample(now, registry)

    def sample(self, now: float, registry: MetricsRegistry | None = None) -> float:
        """Take one sample tick, stamped at the grid point below ``now``."""
        interval = self.interval
        t = math.floor(now / interval) * interval
        for probe in self._probes:
            probe(t)
        if registry is not None:
            self._sample_registry(t, registry)
        self._last_t = t
        self._next_due = t + interval
        self.samples += 1
        return t

    def _sample_registry(self, t: float, registry: MetricsRegistry) -> None:
        # Counters become rate series: delta since the previous tick over
        # the actual gap (ticks can skip grid points when nothing ran).
        last_t = self._last_t
        dt = (t - last_t) if last_t is not None and t > last_t else self.interval
        last = self._last_counters
        for key, value in registry._counters.items():
            prev = last.get(key, 0.0)
            if value != prev or key in last:
                self.record_series((key[0] + ".rate", key[1]), t, (value - prev) / dt)
            last[key] = value
        for key, value in registry._gauges.items():
            self.record_series(key, t, value)
        for key, hist in registry._histograms.items():
            if hist.count:
                for suffix, q in _QUANTILES:
                    self.record_series((key[0] + suffix, key[1]), t, hist.quantile(q))

    # -- readers -------------------------------------------------------------
    def points(self, name: str, **labels: object) -> list[tuple[float, float]]:
        return list(self._points.get((name, _label_key(labels)), ()))

    def series(self, prefix: str = "") -> list[str]:
        out = [format_series(name, labels) for name, labels in self._points]
        return sorted(s for s in out if s.startswith(prefix))

    def match(self, name: str, labels: _LabelKey = ()) -> list[_SeriesKey]:
        """Every stored series with this name whose labels are a superset
        of ``labels`` — the SLO engine's selector primitive."""
        want = set(labels)
        return sorted(
            key
            for key in self._points
            if key[0] == name and want.issubset(key[1])
        )

    def snapshot(self) -> dict[str, list[list[float]]]:
        """``{formatted_series: [[t, value], ...]}`` in stored order."""
        return {
            format_series(name, labels): [[t, v] for t, v in pts]
            for (name, labels), pts in sorted(self._points.items())
        }

    def document(self) -> dict[str, object]:
        """The JSON-export document (schema-tagged, deterministic)."""
        return {
            "schema": TIMESERIES_SCHEMA,
            "interval": self.interval,
            "samples": self.samples,
            "series": self.snapshot(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.document(), indent=indent, sort_keys=True)

    def to_openmetrics(self) -> str:
        """OpenMetrics-style exposition of the *latest* point per series,
        with the sample's virtual timestamp in the timestamp column."""
        lines: list[str] = []
        for (name, labels), pts in sorted(self._points.items()):
            if not pts:  # pragma: no cover - rings never stay empty
                continue
            t, v = pts[-1]
            om = _om_name(name)
            lines.append(f"# TYPE {om} gauge")
            lines.append(f"{om}{_om_labels(labels)} {_om_value(v)} {_om_value(t)}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    # -- state transfer (shard runner) ---------------------------------------
    def capture_state(self) -> dict[str, object]:
        """A picklable copy of every series ring (plain tuples/lists).

        The rate bookkeeping (``_last_counters`` / ``_last_t``) and the
        probe callbacks are deliberately left behind: captured cells are
        finished runs, and probes hold references to per-cell engines.
        """
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "samples": self.samples,
            "points": {key: list(pts) for key, pts in self._points.items()},
        }

    def install_state(self, state: dict[str, object], merge: bool = False) -> None:
        """Load a :meth:`capture_state` blob back into the recorder.

        With ``merge=False`` the recorder is replaced wholesale (interval
        and capacity restored from the blob).  With ``merge=True`` each
        series' points are *appended* in blob order — callers merge cells
        in deterministic cell-index order, so the combined rings (and any
        export of them) are identical whether cells ran serially or
        across N workers.
        """
        if not merge:
            self.reset()
            self.interval = _t.cast(float, state["interval"])
            self.capacity = _t.cast(int, state["capacity"])
        self.samples += _t.cast(int, state["samples"])
        for key, pts in _t.cast(dict, state["points"]).items():
            ring = self._points.get(key)
            if ring is None:
                ring = self._points[key] = deque(maxlen=self.capacity)
            ring.extend(pts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TimeSeriesRecorder {'on' if self.enabled else 'off'} "
            f"interval={self.interval} series={len(self._points)} "
            f"samples={self.samples}>"
        )


#: The process-wide recorder (mirrors ``metrics.registry`` / ``trace.tracer``).
recorder = TimeSeriesRecorder()


def enable(
    interval: float = DEFAULT_INTERVAL,
    capacity: int = DEFAULT_CAPACITY,
    reset: bool = True,
) -> TimeSeriesRecorder:
    return recorder.enable(interval=interval, capacity=capacity, reset=reset)


def disable() -> TimeSeriesRecorder:
    return recorder.disable()


def reset() -> None:
    recorder.reset()


def install_sampler(
    env: "Environment", registry: MetricsRegistry | None = None
) -> object | None:
    """Install a sampler process on ``env`` ticking at the grid interval.

    The process wakes at each ``k * interval`` boundary, samples, and
    returns as soon as it is the only work left in the environment —
    so it never keeps ``env.run()`` spinning past the scenario's real
    end, and ``env.run(until=event)`` still sees the queue drain when
    the scenario deadlocks.  Returns the process (or ``None`` when the
    recorder is disabled).
    """
    rec = recorder
    if not rec.enabled:
        return None

    def _tick():
        while rec.enabled:
            boundary = math.floor(env.now / rec.interval + 1.0) * rec.interval
            if boundary < rec._next_due:
                boundary = rec._next_due
            yield env.timeout_until(boundary)
            rec.sample_due(env.now, registry)
            if not env._queue and not env._immediate:
                return

    return env.process(_tick(), name="obs.sampler")
