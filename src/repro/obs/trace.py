"""The virtual-time span tracer.

Records where virtual time goes — engine startup phases, filesystem IO
bursts, scheduler passes, registry transfers — as Chrome/Perfetto trace
events.  Three event styles map onto the three shapes of timed work in
this repository:

``span(name, **labels)``
    A context manager for code that *advances the virtual clock while it
    runs* (simulation processes yielding timeouts): records a ``B``
    (begin) event on entry and an ``E`` (end) event on exit, both
    stamped with the current virtual time.  Spans opened inside a
    simulation process land on that process's "thread" row (the tracer
    maps :attr:`Environment.active_process` to a stable ``tid``), so
    nesting is correct even while the environment interleaves dozens of
    processes: each process's spans form their own properly nested
    stack.

``complete(name, duration, **labels)`` / ``complete_at(...)``
    A single ``X`` (complete) event with an explicit duration, for
    *analytic* costs: code that computes a time cost as a number (engine
    ``run`` phase timings, registry transfer costs, ``est_*`` IO sums)
    without itself yielding to the simulator.  The caller typically
    sleeps the same amount right after, so the slice lines up with the
    virtual timeline around it.

``instant(name, **labels)``
    A zero-duration ``i`` marker (a scheduler bind, a job state flip).

The tracer is **off by default and zero-cost when disabled**: every
recording helper starts with one predicate check against
:attr:`Tracer.enabled`, and hot paths guard with the same check before
building any label dict.  Timestamps are *virtual* seconds (exported as
microseconds), so an exported trace is fully deterministic: two runs of
the same scenario produce byte-identical JSON.  Wall-clock deltas (for
profiling the simulator itself) are recorded only when
``enable(wall_clock=True)`` — they are deliberately excluded from the
deterministic default.

Clock sources: an :class:`~repro.sim.environment.Environment` created
while tracing is enabled attaches itself automatically (last one wins —
the CLI entry points create exactly one).  With no environment attached
(e.g. the analytic ``repro startup`` sweep), the tracer keeps a
*synthetic* cursor that ``complete()`` advances, so back-to-back
analytic phases still lay out sequentially instead of stacking at t=0.
"""

from __future__ import annotations

import time
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports us)
    from repro.sim.environment import Environment

#: event record: (ph, name, ts_seconds, tid, args|None, dur_seconds|None)
_EventTuple = tuple[str, str, float, int, dict | None, float | None]

#: tid the tracer assigns to code running outside any simulation process
MAIN_TID = 0


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span; records ``E`` with the entry tid so B/E stay balanced
    per thread row even across exception exits."""

    __slots__ = ("_tracer", "_name", "_labels", "_tid", "_wall0")

    def __init__(self, tracer: "Tracer", name: str, labels: dict | None):
        self._tracer = tracer
        self._name = name
        self._labels = labels

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._tid = tracer._tid()
        tracer._record("B", self._name, tracer.now(), self._tid, self._labels, None)
        self._wall0 = time.perf_counter() if tracer.wall_clock else 0.0
        return self

    def __exit__(self, *exc: object) -> bool:
        tracer = self._tracer
        args = None
        if tracer.wall_clock:
            args = {"wall_ms": round((time.perf_counter() - self._wall0) * 1e3, 3)}
        tracer._record("E", self._name, tracer.now(), self._tid, args, None)
        return False


class Tracer:
    """Collects trace events against the attached environment's clock."""

    __slots__ = (
        "enabled",
        "wall_clock",
        "_events",
        "_env",
        "_synthetic",
        "_tids",
        "_thread_names",
        "_pinned",
        "_next_tid",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.wall_clock = False
        self._events: list[_EventTuple] = []
        self._env: "Environment | None" = None
        #: synthetic clock cursor used when no environment is attached
        self._synthetic = 0.0
        #: id(process) -> tid (insertion order == first-traced order)
        self._tids: dict[int, int] = {}
        #: tid -> display name
        self._thread_names: dict[int, str] = {MAIN_TID: "main"}
        #: strong refs so id() keys cannot be recycled mid-trace
        self._pinned: list[object] = []
        #: next tid to hand out — covers both live processes (:meth:`_tid`)
        #: and rows adopted from other shards (:meth:`absorb`)
        self._next_tid = 1

    # -- lifecycle ----------------------------------------------------------
    def enable(self, wall_clock: bool = False, reset: bool = True) -> "Tracer":
        if reset:
            self.reset()
        self.enabled = True
        self.wall_clock = wall_clock
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def reset(self) -> None:
        self._events.clear()
        self._env = None
        self._synthetic = 0.0
        self._tids.clear()
        self._thread_names = {MAIN_TID: "main"}
        self._pinned.clear()
        self._next_tid = 1

    def attach(self, env: "Environment") -> None:
        """Adopt ``env``'s virtual clock and active-process tracking.

        Called by :class:`Environment` on construction while tracing is
        enabled; with several live environments the most recent wins
        (the CLI entry points build exactly one per run).
        """
        self._env = env

    # -- clock / thread mapping --------------------------------------------
    def now(self) -> float:
        env = self._env
        return env._now if env is not None else self._synthetic

    def _tid(self) -> int:
        env = self._env
        process = env._active_process if env is not None else None
        if process is None:
            return MAIN_TID
        key = id(process)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._next_tid
            self._next_tid += 1
            self._tids[key] = tid
            self._thread_names[tid] = getattr(process, "name", "process")
            self._pinned.append(process)
        return tid

    # -- recording ----------------------------------------------------------
    def _record(
        self,
        ph: str,
        name: str,
        ts: float,
        tid: int,
        args: dict | None,
        dur: float | None,
    ) -> None:
        self._events.append((ph, name, ts, tid, args, dur))

    def span(self, name: str, **labels: object) -> "_Span | _NullSpan":
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, labels or None)

    def complete(self, name: str, duration: float, **labels: object) -> None:
        """An ``X`` slice of ``duration`` starting at the current time."""
        if not self.enabled:
            return
        ts = self.now()
        self._record("X", name, ts, self._tid(), labels or None, duration)
        if self._env is None:
            # Analytic mode: advance the synthetic cursor so consecutive
            # complete() calls lay out sequentially.
            self._synthetic = ts + duration

    def complete_at(
        self, name: str, start: float, duration: float, **labels: object
    ) -> None:
        """An ``X`` slice with an explicit start (e.g. a phase breakdown
        replayed from an engine's timing dict)."""
        if not self.enabled:
            return
        self._record("X", name, start, self._tid(), labels or None, duration)

    def instant(self, name: str, **labels: object) -> None:
        if not self.enabled:
            return
        self._record("i", name, self.now(), self._tid(), labels or None, None)

    def instant_at(self, name: str, ts: float, **labels: object) -> None:
        """An ``i`` marker at an explicit timestamp — for events derived
        *after* the run (SLO alert fire/resolve points evaluated over the
        sampled series); the export sorts by ts, so they interleave into
        the timeline as if recorded live."""
        if not self.enabled:
            return
        self._record("i", name, ts, self._tid(), labels or None, None)

    # -- state transfer (shard runner) ---------------------------------------
    def capture_state(self) -> dict[str, object]:
        """A picklable copy of the recorded events and thread names.

        Event tuples carry only strings, numbers and plain dicts, so the
        blob crosses a ``multiprocessing`` boundary unchanged; the
        live-process bookkeeping (``_tids``/``_pinned``) is deliberately
        left behind — the receiving side re-keys rows via :meth:`absorb`.
        """
        return {
            "events": list(self._events),
            "thread_names": dict(self._thread_names),
        }

    def absorb(self, state: dict[str, object], label: str | None = None) -> None:
        """Adopt another shard's :meth:`capture_state` blob.

        Every foreign tid — *including* its main row — is remapped onto a
        fresh tid here, in first-appearance order, so rows from different
        cells never interleave on one thread row (B/E nesting stays valid
        per row no matter how cells' virtual timelines overlap).  Callers
        absorb cells in deterministic cell-index order, which makes the
        resulting tid assignment — and thus the exported JSON — identical
        whether the cells ran serially or across N workers.  ``label``
        prefixes the adopted row names (e.g. ``seed=7:main``).
        """
        thread_names = _t.cast(dict, state["thread_names"])
        remap: dict[int, int] = {}
        for ph, name, ts, tid, args, dur in _t.cast(list, state["events"]):
            new_tid = remap.get(tid)
            if new_tid is None:
                new_tid = self._next_tid
                self._next_tid += 1
                remap[tid] = new_tid
                base = thread_names.get(tid, f"tid-{tid}")
                self._thread_names[new_tid] = f"{label}:{base}" if label else base
            self._events.append((ph, name, ts, new_tid, args, dur))

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[_EventTuple]:
        """The raw event tuples, in record order (tests / export)."""
        return self._events

    def thread_name(self, tid: int) -> str:
        return self._thread_names.get(tid, f"tid-{tid}")

    def categories(self) -> set[str]:
        """Subsystem prefixes (text before the first '.') seen so far."""
        return {name.split(".", 1)[0] for _ph, name, *_rest in self._events}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} events={len(self._events)} tids={len(self._tids)}>"


#: The process-wide tracer every instrumentation point feeds.
tracer = Tracer()


# -- module-level convenience (what instrumentation sites import) -----------

def enable(wall_clock: bool = False, reset: bool = True) -> Tracer:
    """Start tracing (resetting by default); returns the tracer."""
    return tracer.enable(wall_clock=wall_clock, reset=reset)


def disable() -> Tracer:
    """Stop tracing; recorded events stay exportable."""
    return tracer.disable()


def reset() -> None:
    tracer.reset()


def span(name: str, **labels: object):
    """``with trace.span("engine.run", engine="sarus"): ...`` — no-op
    (one predicate check, shared null object) while tracing is off."""
    return tracer.span(name, **labels)


def complete(name: str, duration: float, **labels: object) -> None:
    tracer.complete(name, duration, **labels)


def complete_at(name: str, start: float, duration: float, **labels: object) -> None:
    tracer.complete_at(name, start, duration, **labels)


def instant(name: str, **labels: object) -> None:
    tracer.instant(name, **labels)


def instant_at(name: str, ts: float, **labels: object) -> None:
    tracer.instant_at(name, ts, **labels)


def export_json(path: str | None = None, indent: int | None = None) -> str:
    """Export the recorded events as Chrome trace JSON (see
    :func:`repro.obs.export.to_chrome_json`)."""
    from repro.obs.export import to_chrome_json

    text = to_chrome_json(tracer, indent=indent)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text
