"""The OCI (Open Container Initiative) stack.

Implements the interoperability layer the paper's §3.1 describes: the
image format (manifests, configs, content-addressed layers), the runtime
specification (bundles, lifecycle, hooks), two reference runtimes (runc
and crun), image builders (Dockerfile and Singularity definition files)
with layer caching, the flat SIF format, and OCI→SquashFS conversion.
"""

from repro.oci.digest import digest_bytes, digest_str, short_digest
from repro.oci.layer import Layer, diff_trees
from repro.oci.image import ImageConfig, ImageReference, Manifest, OCIImage
from repro.oci.bundle import Bundle, NamespaceRequest, RuntimeSpec
from repro.oci.hooks import Hook, HookError, HookPoint, HookRegistry
from repro.oci.runtime import Container, ContainerState, CrunRuntime, OCIRuntime, RuncRuntime
from repro.oci.builder import (
    BuildCache,
    Builder,
    BuildError,
    DockerfileParser,
    SingularityDefParser,
)
from repro.oci.sif import SIFImage, SIFPartition
from repro.oci.squash import flatten_image, oci_to_squash

__all__ = [
    "Bundle",
    "BuildCache",
    "BuildError",
    "Builder",
    "Container",
    "ContainerState",
    "CrunRuntime",
    "DockerfileParser",
    "Hook",
    "HookError",
    "HookPoint",
    "HookRegistry",
    "ImageConfig",
    "ImageReference",
    "Layer",
    "Manifest",
    "NamespaceRequest",
    "OCIImage",
    "OCIRuntime",
    "RuncRuntime",
    "RuntimeSpec",
    "SIFImage",
    "SIFPartition",
    "SingularityDefParser",
    "diff_trees",
    "digest_bytes",
    "digest_str",
    "flatten_image",
    "oci_to_squash",
    "short_digest",
]
