"""Image builders: Dockerfile and Singularity definition files.

Reproduces the §4.1.4 contrast: Dockerfiles place commands in *layers*
("manually grouping commands into layers poses an important concept to
allow incremental container builds"), with a content-addressed build
cache; Singularity definitions put everything into one ``%post`` section
and produce a flat SIF with no layering (and therefore no incremental
rebuild).
"""

from __future__ import annotations

import dataclasses
import shlex
import typing as _t

from repro.fs.tree import FileTree
from repro.oci.catalog import BaseImageCatalog
from repro.oci.digest import digest_str
from repro.oci.image import ImageConfig, OCIImage
from repro.oci.layer import Layer, diff_trees
from repro.oci.shell import run_commands
from repro.oci.sif import SIFImage


class BuildError(ValueError):
    """Malformed build file or failing build step."""


@dataclasses.dataclass
class Instruction:
    keyword: str
    argument: str
    line_no: int


class DockerfileParser:
    """Parses the Dockerfile subset used by the simulation."""

    KEYWORDS = {
        "FROM", "RUN", "COPY", "ENV", "WORKDIR", "ENTRYPOINT", "CMD",
        "LABEL", "USER", "EXPOSE",
    }

    @classmethod
    def parse(cls, text: str) -> list[Instruction]:
        instructions: list[Instruction] = []
        continued = ""
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.endswith("\\"):
                continued += line[:-1] + " "
                continue
            line = continued + line
            continued = ""
            parts = line.split(None, 1)
            keyword = parts[0].upper()
            if keyword not in cls.KEYWORDS:
                raise BuildError(f"line {line_no}: unknown instruction {parts[0]!r}")
            argument = parts[1] if len(parts) > 1 else ""
            instructions.append(Instruction(keyword, argument, line_no))
        if not instructions or instructions[0].keyword != "FROM":
            raise BuildError("Dockerfile must start with FROM")
        return instructions


class BuildCache:
    """Content-addressed layer cache: (parent chain, instruction) -> Layer."""

    def __init__(self) -> None:
        self._layers: dict[str, Layer] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(chain_digest: str, instruction: str, context_digest: str = "") -> str:
        return digest_str(f"{chain_digest}|{instruction}|{context_digest}")

    def get(self, key: str) -> Layer | None:
        layer = self._layers.get(key)
        if layer is not None:
            self.hits += 1
        return layer

    def put(self, key: str, layer: Layer) -> None:
        self.misses += 1
        self._layers[key] = layer

    def __len__(self) -> int:
        return len(self._layers)


#: synthetic cost of executing one RUN step, seconds per byte written
RUN_COST_PER_BYTE = 1 / 200e6
RUN_BASE_COST = 0.5


class Builder:
    """Builds OCI images from Dockerfiles and SIFs from definition files."""

    def __init__(self, catalog: BaseImageCatalog | None = None, cache: BuildCache | None = None):
        self.catalog = catalog or BaseImageCatalog()
        self.cache = cache or BuildCache()
        #: build statistics for the layer-cache ablation bench
        self.last_build_stats: dict[str, float] = {}

    # -- Dockerfile --------------------------------------------------------------
    def build_dockerfile(
        self,
        text: str,
        context: FileTree | None = None,
        build_uid: int = 0,
    ) -> OCIImage:
        """Build an OCI image, replaying identical prefix builds.

        Context-free builds go through the shard prefix-replay cache:
        keyed by the dockerfile *and* the exact global counter
        fingerprint, so a hit only ever occurs when the world state
        matches the recorded build bit-for-bit (a warm-snapshot fork).
        Everything else — including every build in a normally advancing
        process — takes the cold path below.
        """
        if context is not None:
            return self._build_dockerfile_cold(text, context, build_uid)
        from repro.shard.state import replay_prefix

        image, stats = replay_prefix(
            "build_dockerfile",
            f"{build_uid}\n{text}",
            lambda: (
                self._build_dockerfile_cold(text, None, build_uid),
                dict(self.last_build_stats),
            ),
        )
        self.last_build_stats = dict(stats)
        return image

    def _build_dockerfile_cold(
        self,
        text: str,
        context: FileTree | None,
        build_uid: int,
    ) -> OCIImage:
        instructions = DockerfileParser.parse(text)
        context = context or FileTree()
        context_digest = self._context_digest(context)

        base = self.catalog.get(instructions[0].argument.strip())
        layers: list[Layer] = list(base.layers)
        config = dataclasses.replace(base.config)
        config.env = dict(base.config.env)
        config.labels = dict(base.config.labels)
        tree = base.flatten()
        chain = digest_str("|".join(l.digest for l in layers))

        executed = 0
        cached = 0
        cost = 0.0
        for ins in instructions[1:]:
            if ins.keyword in ("RUN", "COPY"):
                key = BuildCache.key(
                    chain, f"{ins.keyword} {ins.argument}",
                    context_digest if ins.keyword == "COPY" else "",
                )
                layer = self.cache.get(key)
                if layer is None:
                    new_tree = tree.clone()
                    if ins.keyword == "RUN":
                        run_commands(new_tree, ins.argument, uid=build_uid)
                    else:
                        self._copy(context, new_tree, ins.argument, build_uid)
                    layer = diff_trees(tree, new_tree, created_by=f"{ins.keyword} {ins.argument}")
                    self.cache.put(key, layer)
                    executed += 1
                    cost += RUN_BASE_COST + layer.uncompressed_size * RUN_COST_PER_BYTE
                else:
                    cached += 1
                layer.apply_to(tree)
                layers.append(layer)
                chain = digest_str(chain + "|" + layer.digest)
            else:
                self._apply_metadata(config, ins)
                chain = digest_str(chain + "|" + f"{ins.keyword} {ins.argument}")

        self.last_build_stats = {
            "executed_steps": executed,
            "cached_steps": cached,
            "build_cost_s": cost,
        }
        return OCIImage(config, layers)

    @staticmethod
    def _context_digest(context: FileTree) -> str:
        """Layer digest of the build context, memoized in its scan cache.

        Rebuilds with an unchanged context used to re-walk and re-hash it
        every time; the memo lives with the tree content (invalidated by
        any mutation, shared once the context is frozen), so only the
        first build of a given context pays the hash.
        """
        cache = context.scan_cache("/")
        digest = cache.get("context_layer_digest")
        if digest is None:
            digest = Layer(context.clone(), created_by="context").digest
            cache["context_layer_digest"] = digest
        return digest

    @staticmethod
    def _copy(context: FileTree, tree: FileTree, argument: str, uid: int) -> None:
        parts = shlex.split(argument)
        if len(parts) != 2:
            raise BuildError(f"COPY expects SRC DST, got {argument!r}")
        src, dst = parts
        node = context.lookup(src)
        if node is None:
            raise BuildError(f"COPY source not in build context: {src}")
        from repro.fs.inode import DirNode, FileNode

        if isinstance(node, FileNode):
            target = dst.rstrip("/") + "/" + src.rsplit("/", 1)[-1] if dst.endswith("/") else dst
            tree.create_file(
                target, data=node.data, size=None if node.data is not None else node.size, uid=uid
            )
        elif isinstance(node, DirNode):
            sub = FileTree(root=node.clone())
            tree.merge_from(sub, at=dst)
        else:
            raise BuildError(f"COPY cannot handle {src}")

    @staticmethod
    def _apply_metadata(config: ImageConfig, ins: Instruction) -> None:
        if ins.keyword == "ENV":
            if "=" not in ins.argument:
                raise BuildError(f"ENV expects KEY=VALUE, got {ins.argument!r}")
            key, value = ins.argument.split("=", 1)
            config.env[key.strip()] = value.strip()
        elif ins.keyword == "WORKDIR":
            config.workdir = ins.argument.strip()
        elif ins.keyword == "ENTRYPOINT":
            config.entrypoint = tuple(shlex.split(ins.argument))
        elif ins.keyword == "CMD":
            config.cmd = tuple(shlex.split(ins.argument))
        elif ins.keyword == "LABEL":
            if "=" not in ins.argument:
                raise BuildError(f"LABEL expects KEY=VALUE, got {ins.argument!r}")
            key, value = ins.argument.split("=", 1)
            config.labels[key.strip()] = value.strip().strip('"')
        elif ins.keyword == "USER":
            config.user = ins.argument.strip()
        elif ins.keyword == "EXPOSE":
            config.exposed_ports = config.exposed_ports + (int(ins.argument.strip()),)

    # -- Singularity definition files ---------------------------------------------
    def build_definition(self, text: str, build_uid: int = 0) -> SIFImage:
        sections = SingularityDefParser.parse(text)
        bootstrap = sections.get("bootstrap", "docker")
        if bootstrap not in ("docker", "library", "localimage"):
            raise BuildError(f"unsupported bootstrap agent: {bootstrap!r}")
        base_name = sections.get("from", "")
        if not base_name:
            raise BuildError("definition file needs a From: line")
        base = self.catalog.get(base_name)
        tree = base.flatten()
        config = dataclasses.replace(base.config)
        config.env = dict(base.config.env)
        config.labels = dict(base.config.labels)

        # All %post commands land in ONE flat image: no layering (§4.1.4).
        if "post" in sections:
            run_commands(tree, sections["post"], uid=build_uid)
        if "files" in sections:
            for line in sections["files"].splitlines():
                line = line.strip()
                if not line:
                    continue
                parts = line.split()
                if len(parts) != 2:
                    raise BuildError(f"%files expects SRC DST per line, got {line!r}")
                tree.create_file(parts[1], size=1000, uid=build_uid)
        if "environment" in sections:
            for line in sections["environment"].splitlines():
                line = line.strip().removeprefix("export ").strip()
                if line and "=" in line:
                    key, value = line.split("=", 1)
                    config.env[key.strip()] = value.strip()
        if "labels" in sections:
            for line in sections["labels"].splitlines():
                parts = line.strip().split(None, 1)
                if len(parts) == 2:
                    config.labels[parts[0]] = parts[1]
        if "runscript" in sections:
            config.entrypoint = tuple(shlex.split(sections["runscript"].strip().splitlines()[0]))
            config.cmd = ()

        return SIFImage(tree, config, definition=text, built_by_uid=build_uid)


class SingularityDefParser:
    """Parses Singularity/Apptainer definition files."""

    SECTIONS = {"post", "files", "environment", "runscript", "labels", "help", "test"}

    @classmethod
    def parse(cls, text: str) -> dict[str, str]:
        sections: dict[str, str] = {}
        current: str | None = None
        body: list[str] = []
        for raw in text.splitlines():
            line = raw.rstrip()
            stripped = line.strip()
            if stripped.startswith("%"):
                if current is not None:
                    sections[current] = "\n".join(body)
                name = stripped[1:].split()[0].lower()
                if name not in cls.SECTIONS:
                    raise BuildError(f"unknown section %{name}")
                current, body = name, []
            elif current is not None:
                body.append(line)
            elif ":" in stripped:
                key, value = stripped.split(":", 1)
                sections[key.strip().lower()] = value.strip()
        if current is not None:
            sections[current] = "\n".join(body)
        return sections
