"""OCI runtime bundles: rootfs plus the config.json runtime spec."""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.fs.drivers import MountedView
from repro.fs.tree import FileTree
from repro.kernel.namespaces import NamespaceKind
from repro.oci.hooks import HookRegistry
from repro.oci.image import ImageConfig


@dataclasses.dataclass
class NamespaceRequest:
    """Which namespaces the runtime should create/join for the container.

    Cloud-native defaults create all of them; HPC engines deliberately
    skip NET and IPC ("unused isolations ... are not set up to reduce
    complexity and attack surface, or because they may interfere with
    HPC applications", §3.2).
    """

    create: frozenset[NamespaceKind] = frozenset(
        {
            NamespaceKind.USER,
            NamespaceKind.MNT,
            NamespaceKind.PID,
            NamespaceKind.NET,
            NamespaceKind.IPC,
            NamespaceKind.UTS,
        }
    )

    @classmethod
    def hpc_minimal(cls) -> "NamespaceRequest":
        """User + mount only: the HPC weak-isolation setup."""
        return cls(create=frozenset({NamespaceKind.USER, NamespaceKind.MNT}))

    @classmethod
    def full(cls) -> "NamespaceRequest":
        return cls()

    def __contains__(self, kind: NamespaceKind) -> bool:
        return kind in self.create


@dataclasses.dataclass
class BindMountSpec:
    """A host path to overlay into the container (device libs, datasets)."""

    source_tree: FileTree
    source_path: str
    target_path: str
    read_only: bool = True


@dataclasses.dataclass
class RuntimeSpec:
    """config.json: process, mounts, namespaces, hooks."""

    args: tuple[str, ...]
    env: dict[str, str] = dataclasses.field(default_factory=dict)
    user: str = "root"
    cwd: str = "/"
    namespaces: NamespaceRequest = dataclasses.field(default_factory=NamespaceRequest)
    bind_mounts: list[BindMountSpec] = dataclasses.field(default_factory=list)
    hooks: HookRegistry = dataclasses.field(default_factory=HookRegistry)
    #: cgroup path the container process should be placed in
    cgroup_path: str | None = None
    #: devices the container needs exposed (e.g. "nvidia0")
    devices: tuple[str, ...] = ()
    readonly_rootfs: bool = False

    @classmethod
    def from_image_config(
        cls, config: ImageConfig, namespaces: NamespaceRequest | None = None
    ) -> "RuntimeSpec":
        return cls(
            args=config.argv(),
            env=dict(config.env),
            user=config.user,
            cwd=config.workdir,
            namespaces=namespaces or NamespaceRequest(),
        )


@dataclasses.dataclass
class Bundle:
    """A runtime bundle: a root filesystem view and its spec.

    ``rootfs`` is a mounted view (overlay of image layers, a squash
    mount, or an extracted directory) — which one it is determines the
    IO behaviour of the running container.
    """

    rootfs: MountedView
    spec: RuntimeSpec
    #: free-form origin note for diagnostics ("overlay of 5 layers", ...)
    origin: str = ""

    def validate(self) -> list[str]:
        """Return a list of spec problems (empty when valid)."""
        problems = []
        if not self.spec.args:
            problems.append("process args are empty")
        if not self.rootfs.exists("/"):
            problems.append("rootfs is empty")
        for bind in self.spec.bind_mounts:
            if not bind.source_tree.exists(bind.source_path):
                problems.append(f"bind source missing: {bind.source_path}")
        return problems
