"""Synthetic base images with realistic file-count/size profiles.

The profiles matter: the paper's shared-filesystem argument (§3.2,
§4.1.4) hinges on interpreter stacks shipping *thousands of small files*
(Python) versus compiled stacks shipping *few large ones*.
"""

from __future__ import annotations

import typing as _t

from repro.fs.tree import FileTree
from repro.oci.image import ImageConfig, OCIImage
from repro.oci.layer import Layer


def _make_distro_base(tree: FileTree, n_libs: int, lib_size: int) -> None:
    tree.create_file("/bin/sh", size=120_000, mode=0o755)
    tree.create_file("/etc/os-release", data=b"ID=repro-linux\n")
    tree.create_file("/etc/nsswitch.conf", data=b"passwd: files\ngroup: files\n")
    tree.create_file("/etc/passwd", data=b"root:x:0:0:root:/root:/bin/sh\n")
    tree.create_file("/etc/group", data=b"root:x:0:\n")
    tree.create_file("/usr/lib/libc.so.6", size=2_000_000, mode=0o755)
    tree.symlink("/lib", "/usr/lib")
    for i in range(n_libs):
        tree.create_file(f"/usr/lib/lib{i:03}.so", size=lib_size, mode=0o755)
    # locale data the paper calls out as surprise startup IO (§4.1.4)
    for loc in ("en_US", "C.UTF-8", "POSIX"):
        tree.create_file(f"/usr/lib/locale/{loc}/LC_ALL", size=5_000)


def build_ubuntu_base() -> OCIImage:
    """A glibc distro base: moderately many medium files (~60 MB)."""
    tree = FileTree()
    _make_distro_base(tree, n_libs=110, lib_size=500_000)
    config = ImageConfig(cmd=("sh",), labels={"org.opencontainers.image.ref.name": "ubuntu"})
    return OCIImage(config, [Layer(tree, created_by="FROM scratch (ubuntu base)")])


def build_alpine_base() -> OCIImage:
    """A musl micro base: few small files (~8 MB)."""
    tree = FileTree()
    tree.create_file("/bin/sh", size=80_000, mode=0o755)
    tree.create_file("/etc/os-release", data=b"ID=alpine-sim\n")
    tree.create_file("/etc/nsswitch.conf", data=b"passwd: files\n")
    tree.create_file("/etc/passwd", data=b"root:x:0:0:root:/root:/bin/sh\n")
    tree.create_file("/lib/ld-musl.so.1", size=600_000, mode=0o755)
    for i in range(14):
        tree.create_file(f"/lib/lib{i:02}.so", size=250_000, mode=0o755)
    config = ImageConfig(cmd=("sh",), labels={"org.opencontainers.image.ref.name": "alpine"})
    return OCIImage(config, [Layer(tree, created_by="FROM scratch (alpine base)")])


def build_python_base(n_stdlib_files: int = 3000) -> OCIImage:
    """An interpreter stack: thousands of small files — the shared-FS
    stress case."""
    base = build_ubuntu_base()
    tree = FileTree()
    tree.create_file("/usr/bin/python3.11", size=6_000_000, mode=0o755)
    for i in range(n_stdlib_files):
        tree.create_file(f"/usr/lib/python3.11/stdlib_{i:04}.py", size=3_000)
    config = ImageConfig(
        entrypoint=("python3.11",),
        cmd=(),
        env={"PYTHONPATH": "/usr/lib/python3.11"},
        labels={"org.opencontainers.image.ref.name": "python"},
    )
    return OCIImage(config, [*base.layers, Layer(tree, created_by="python 3.11 runtime")])


def build_mpi_app_base() -> OCIImage:
    """A compiled MPI application: few large files — the easy case."""
    base = build_ubuntu_base()
    tree = FileTree()
    tree.create_file("/usr/lib/libmpi.so.40", size=8_000_000, mode=0o755)
    tree.create_file("/opt/app/bin/solver", size=45_000_000, mode=0o755)
    tree.create_file("/opt/app/share/params.dat", size=120_000_000)
    config = ImageConfig(
        entrypoint=("/opt/app/bin/solver",),
        cmd=(),
        labels={"org.opencontainers.image.ref.name": "mpi-solver"},
        target_microarch="x86-64-v3",
    )
    return OCIImage(config, [*base.layers, Layer(tree, created_by="mpi solver install")])


class BaseImageCatalog:
    """Named base images for ``FROM``/``Bootstrap`` resolution."""

    def __init__(self) -> None:
        self._builders: dict[str, _t.Callable[[], OCIImage]] = {
            "scratch": lambda: OCIImage(ImageConfig(), [Layer(FileTree(), created_by="scratch")]),
            "ubuntu": build_ubuntu_base,
            "ubuntu:22.04": build_ubuntu_base,
            "alpine": build_alpine_base,
            "alpine:3.18": build_alpine_base,
            "python": build_python_base,
            "python:3.11": build_python_base,
            "mpi-solver": build_mpi_app_base,
        }
        self._cache: dict[str, OCIImage] = {}

    def register(self, name: str, builder: _t.Callable[[], OCIImage]) -> None:
        self._builders[name] = builder
        self._cache.pop(name, None)

    def register_image(self, name: str, image: OCIImage) -> None:
        self._builders[name] = lambda: image
        self._cache[name] = image

    def names(self) -> list[str]:
        return sorted(self._builders)

    def get(self, name: str) -> OCIImage:
        if name not in self._cache:
            builder = self._builders.get(name)
            if builder is None:
                raise KeyError(f"unknown base image: {name!r} (known: {self.names()})")
            self._cache[name] = builder()
        return self._cache[name]
