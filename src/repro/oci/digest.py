"""Content addressing (sha256 digests) used throughout the OCI stack."""

from __future__ import annotations

import hashlib


def digest_bytes(data: bytes) -> str:
    return "sha256:" + hashlib.sha256(data).hexdigest()


def digest_str(text: str) -> str:
    return digest_bytes(text.encode())


def short_digest(digest: str, length: int = 12) -> str:
    """The familiar truncated form shown by docker/podman CLIs."""
    if ":" in digest:
        digest = digest.split(":", 1)[1]
    return digest[:length]


def is_digest(value: str) -> bool:
    return value.startswith("sha256:") and len(value) == 7 + 64
