"""OCI image encryption (ocicrypt, §4.1.5 / conclusion).

"registry-supported solutions for [encryption and signing] are being
introduced in the cloud compute ecosystem via the Notary, sigstore and
ocicrypt projects."  Layers are encrypted per-recipient; a runtime with
ocicrypt support decrypts at pull/run time, one without it must refuse.
"""

from __future__ import annotations

import dataclasses

from repro.oci.digest import digest_str
from repro.oci.image import ImageConfig, OCIImage
from repro.oci.layer import Layer
from repro.signing.keys import KeyPair, SignatureError

ENCRYPTED_MEDIA_TYPE = "application/vnd.oci.image.layer.v1.tar+gzip+encrypted"


@dataclasses.dataclass(frozen=True)
class EncryptedLayer:
    """An encrypted layer blob: content is opaque until unwrapped."""

    wrapped: Layer
    key_id: str

    @property
    def digest(self) -> str:
        return digest_str(f"enc:{self.key_id}:{self.wrapped.digest}")

    @property
    def compressed_size(self) -> int:
        return self.wrapped.compressed_size + 512  # key-wrap envelope

    def unwrap(self, key: KeyPair) -> Layer:
        if key.public_id != self.key_id:
            raise SignatureError(
                f"layer encrypted for key {self.key_id}, got {key.public_id}"
            )
        return self.wrapped


class EncryptedOCIImage:
    """An OCI image whose layers are ocicrypt-encrypted."""

    def __init__(self, config: ImageConfig, layers: list[EncryptedLayer], source_digest: str):
        self.config = config
        self.encrypted_layers = layers
        self.source_digest = source_digest
        self.media_type = ENCRYPTED_MEDIA_TYPE

    @property
    def digest(self) -> str:
        return digest_str("encimg:" + ":".join(l.digest for l in self.encrypted_layers))

    @property
    def compressed_size(self) -> int:
        return sum(l.compressed_size for l in self.encrypted_layers)

    @property
    def key_id(self) -> str:
        return self.encrypted_layers[0].key_id

    def decrypt(self, key: KeyPair) -> OCIImage:
        layers = [l.unwrap(key) for l in self.encrypted_layers]
        image = OCIImage(self.config, layers)
        if image.digest != self.source_digest:
            raise SignatureError("decrypted image digest mismatch (tampered?)")
        return image

    def __repr__(self) -> str:
        return f"<EncryptedOCIImage {len(self.encrypted_layers)} layers for {self.key_id}>"


def encrypt_image(image: OCIImage, recipient: KeyPair) -> EncryptedOCIImage:
    """Encrypt every layer for ``recipient`` (ocicrypt per-layer model)."""
    layers = [EncryptedLayer(wrapped=layer, key_id=recipient.public_id)
              for layer in image.layers]
    return EncryptedOCIImage(image.config, layers, source_digest=image.digest)
