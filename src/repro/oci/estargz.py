"""eStargz-style lazy-pullable images (§7 outlook).

"With registries like Quay or Dragonfly providing eStargz or EroFS
images, which can be either generated on-the-fly or uploaded in addition
to the OCI compatible layers, we assume it won't be long until these
formats will be evaluated and possibly adopted for HPC usage as an
alternative to SIF."

An eStargz image is a *seekable* layer format: a table of contents maps
each file to a byte range, so a client can mount the image immediately and
fetch chunks over HTTP range requests on first access, instead of
pulling everything up front.  Startup becomes proportional to the bytes
actually touched; the price is a per-miss network round trip and
background prefetch traffic.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.fs.inode import FileNode, Node
from repro.fs.tree import FileTree, FsError
from repro.oci.digest import digest_str
from repro.oci.image import OCIImage

#: estargz compresses per-chunk, slightly worse than whole-image gzip
ESTARGZ_COMPRESSION_RATIO = 0.55
CHUNK_SIZE = 4 * 2**20


@dataclasses.dataclass(frozen=True)
class TocEntry:
    path: str
    offset: int
    compressed_size: int
    uncompressed_size: int


class EStargzImage:
    """A seekable image with a table of contents."""

    def __init__(self, image: OCIImage, prefetch_landmarks: _t.Sequence[str] = ()):
        self.source_digest = image.digest
        self.config = image.config
        self.tree = image.flatten()
        self.toc: dict[str, TocEntry] = {}
        offset = 0
        for path, node in self.tree.files():
            compressed = int(node.size * ESTARGZ_COMPRESSION_RATIO)
            self.toc[path] = TocEntry(path, offset, compressed, node.size)
            offset += compressed
        self.total_compressed = offset
        #: files the producer marked for eager prefetch (the "landmark"
        #: mechanism: entrypoint binary, config files)
        self.prefetch_landmarks = tuple(p for p in prefetch_landmarks if p in self.toc)

    @property
    def digest(self) -> str:
        return digest_str(f"estargz:{self.source_digest}")

    @property
    def toc_size(self) -> int:
        # ~100 bytes of JSON per entry
        return 100 * len(self.toc)


def to_estargz(image: OCIImage, prefetch_landmarks: _t.Sequence[str] = ()) -> EStargzImage:
    """Convert an OCI image to the seekable format (registry-side,
    'generated on-the-fly or uploaded in addition')."""
    return EStargzImage(image, prefetch_landmarks)


class LazyPullTransport:
    """HTTP range-request cost model between node and registry."""

    def __init__(self, latency: float = 15e-3, bandwidth: float = 1.0e9):
        self.latency = latency
        self.bandwidth = bandwidth
        self.stats = {"range_requests": 0, "bytes_fetched": 0}

    def fetch(self, nbytes: int) -> float:
        self.stats["range_requests"] += 1
        self.stats["bytes_fetched"] += nbytes
        return self.latency + nbytes / self.bandwidth


class LazyMountedView:
    """A mounted view over an eStargz image that faults chunks in.

    Reads of not-yet-present content pay a range request; subsequent
    reads hit the local chunk cache.  Mount time is just the TOC fetch
    plus the landmark prefetch — the lazy-pull win.
    """

    def __init__(self, image: EStargzImage, transport: LazyPullTransport | None = None):
        self.image = image
        self.transport = transport or LazyPullTransport()
        self._present: set[str] = set()
        self.driver_name = "estargz-lazy"
        self.stats = {"opens": 0, "bytes_read": 0, "faults": 0}
        #: decompression cost per byte on fault
        self._decompress_bw = 600e6

    def mount_cost(self) -> float:
        """Fetch the TOC + prefetch landmarks; the container can start."""
        cost = self.transport.fetch(self.image.toc_size)
        for path in self.image.prefetch_landmarks:
            cost += self._fault(path)
        return cost

    def _fault(self, path: str) -> float:
        entry = self.image.toc[path]
        self._present.add(path)
        self.stats["faults"] += 1
        return (
            self.transport.fetch(entry.compressed_size)
            + entry.uncompressed_size / self._decompress_bw
        )

    # -- the MountedView-ish surface used by workloads ---------------------------
    def lookup(self, path: str) -> Node | None:
        return self.image.tree.lookup(path)

    def exists(self, path: str) -> bool:
        return self.image.tree.exists(path)

    def open(self, path: str) -> float:
        if not self.image.tree.exists(path):
            raise FsError(f"no such path: {path}")
        self.stats["opens"] += 1
        # metadata is fully local after the TOC fetch
        return 20e-6

    def read(self, path: str, random: bool = False) -> tuple[float, int]:
        node = self.image.tree.get(path)
        if not isinstance(node, FileNode):
            raise FsError(f"not a file: {path}")
        cost = 0.0
        if path not in self._present:
            cost += self._fault(path)
        # local (cached) read after the fault
        cost += node.size / 2.0e9
        self.stats["bytes_read"] += node.size
        return cost, node.size

    def resident_fraction(self) -> float:
        """Fraction of image bytes actually pulled so far."""
        pulled = sum(self.image.toc[p].compressed_size for p in self._present)
        return pulled / self.image.total_compressed if self.image.total_compressed else 1.0

    def _all_trees_top_down(self) -> list[FileTree]:
        return [self.image.tree]
