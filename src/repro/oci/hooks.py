"""OCI runtime hooks.

The OCI runtime spec defines entry points "to inject code to be run at
various phases of the container lifetime" (§3.1).  HPC engines use hooks
for GPU/accelerator enablement, host-library bind-mounting, and WLM
integration (§4.1.3, §4.1.6) instead of patching the runtime.
"""

from __future__ import annotations

import dataclasses
import enum
import typing as _t

from repro.faults.injector import injector as _faults


class HookPoint(enum.Enum):
    """Lifecycle points of the OCI runtime specification."""

    PRESTART = "prestart"              # deprecated but widely used
    CREATE_RUNTIME = "createRuntime"
    CREATE_CONTAINER = "createContainer"
    START_CONTAINER = "startContainer"
    POSTSTART = "poststart"
    POSTSTOP = "poststop"


class HookError(RuntimeError):
    """A hook failed; per spec this aborts the container lifecycle."""


@dataclasses.dataclass
class Hook:
    """A named hook registered at one lifecycle point.

    The callable receives the hook context (a mapping the runtime
    populates with the container, bundle, and engine state) and may
    mutate the container's rootfs/spec or raise :class:`HookError`.
    """

    name: str
    point: HookPoint
    fn: _t.Callable[[dict], None]
    #: hooks ordered by ascending priority within a point
    priority: int = 50

    def run(self, context: dict) -> None:
        try:
            self.fn(context)
        except HookError:
            raise
        except Exception as exc:  # noqa: BLE001 - spec: any failure aborts
            raise HookError(f"hook {self.name!r} failed: {exc}") from exc


class HookRegistry:
    """Ordered hooks per lifecycle point."""

    def __init__(self) -> None:
        self._hooks: dict[HookPoint, list[Hook]] = {p: [] for p in HookPoint}
        self.executed: list[tuple[HookPoint, str]] = []

    def register(self, hook: Hook) -> None:
        bucket = self._hooks[hook.point]
        bucket.append(hook)
        bucket.sort(key=lambda h: h.priority)

    def add(
        self,
        point: HookPoint,
        fn: _t.Callable[[dict], None],
        name: str | None = None,
        priority: int = 50,
    ) -> Hook:
        hook = Hook(name=name or fn.__name__, point=point, fn=fn, priority=priority)
        self.register(hook)
        return hook

    def hooks_at(self, point: HookPoint) -> list[Hook]:
        return list(self._hooks[point])

    def run(self, point: HookPoint, context: dict) -> None:
        """Run the hooks registered at ``point`` in priority order.

        Injection point ``"engine.hooks"``: an active HOOK_FAILURE fault
        makes the first hook at this point raise :class:`HookError`,
        aborting the lifecycle exactly as a real misbehaving hook would.
        POSTSTOP is exempt — the spec runs poststop best-effort, and the
        engines' cleanup guarantee relies on teardown never raising.
        """
        for hook in self._hooks[point]:
            if _faults.enabled and point is not HookPoint.POSTSTOP:
                fault = _faults.active("engine.hooks", target=hook.name)
                if fault is not None:
                    raise HookError(
                        f"hook {hook.name!r} failed: injected fault"
                        f" (until t={fault.until:.1f})"
                    )
            hook.run(context)
            self.executed.append((point, hook.name))

    def merged_with(self, other: "HookRegistry") -> "HookRegistry":
        combined = HookRegistry()
        for point in HookPoint:
            for hook in (*self._hooks[point], *other._hooks[point]):
                combined.register(hook)
        return combined

    def __len__(self) -> int:
        return sum(len(v) for v in self._hooks.values())
