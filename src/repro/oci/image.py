"""OCI images: config, manifest, and the assembled image object."""

from __future__ import annotations

import dataclasses
import functools
import json
import typing as _t

from repro.fs.tree import FileTree
from repro.oci.digest import digest_str
from repro.oci.layer import Layer
from repro.sim import profile as _profile


@dataclasses.dataclass
class ImageConfig:
    """The OCI image config (docker-compatible subset)."""

    entrypoint: tuple[str, ...] = ()
    cmd: tuple[str, ...] = ("sh",)
    env: dict[str, str] = dataclasses.field(default_factory=dict)
    user: str = "root"
    workdir: str = "/"
    labels: dict[str, str] = dataclasses.field(default_factory=dict)
    architecture: str = "amd64"
    os: str = "linux"
    #: microarchitecture the content was optimized for (HPC extension used
    #: by the adaptive-containerization optimizer, paper §7 outlook)
    target_microarch: str = "x86-64-v2"
    #: exposed service ports — relevant because HPC engines break the
    #: isolated network namespace such services expect (§4.1.3)
    exposed_ports: tuple[int, ...] = ()
    #: additional uids the containerized software expects to exist
    required_uids: tuple[int, ...] = ()

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @property
    def digest(self) -> str:
        return digest_str(self.to_json())

    def argv(self) -> tuple[str, ...]:
        return tuple(self.entrypoint) + tuple(self.cmd)


@dataclasses.dataclass(frozen=True)
class Manifest:
    """The OCI manifest: config digest plus ordered layer digests."""

    config_digest: str
    layer_digests: tuple[str, ...]
    annotations: tuple[tuple[str, str], ...] = ()

    # cached: every field is immutable, and registries look manifests up
    # by digest on every push/pull — recomputing the JSON + hash per
    # access is measurable at fleet scale.  (cached_property writes
    # straight into __dict__, which the frozen dataclass permits.)
    @functools.cached_property
    def digest(self) -> str:
        payload = json.dumps(
            {
                "config": self.config_digest,
                "layers": list(self.layer_digests),
                "annotations": sorted(self.annotations),
            },
            sort_keys=True,
        )
        return digest_str(payload)


class OCIImage:
    """A fully materialized OCI image."""

    def __init__(self, config: ImageConfig, layers: _t.Sequence[Layer]):
        if not layers:
            raise ValueError("an image needs at least one layer")
        self.config = config
        self.layers = list(layers)
        self.manifest = Manifest(
            config_digest=config.digest,
            layer_digests=tuple(layer.digest for layer in self.layers),
        )
        self._flat: FileTree | None = None

    @property
    def digest(self) -> str:
        return self.manifest.digest

    @property
    def compressed_size(self) -> int:
        return sum(layer.compressed_size for layer in self.layers)

    @property
    def uncompressed_size(self) -> int:
        return sum(layer.uncompressed_size for layer in self.layers)

    @property
    def num_files(self) -> int:
        return self.flatten().num_files()

    def flatten(self) -> FileTree:
        """Apply all layers bottom-up into a single root filesystem.

        The first call materializes a master tree and memoizes it; every
        call returns an O(1) copy-on-write clone, so callers may mutate
        their copy freely while repeated flattens of the same image stay
        free.  (Clones are distinct trees: diffing one against another
        keeps the historical "bulk files always differ" semantics of
        :func:`repro.oci.layer.diff_trees`.)
        """
        if self._flat is None:
            tree = FileTree()
            for layer in self.layers:
                layer.apply_to(tree)
            self._flat = tree
        else:
            counters = _profile.counters
            if counters.enabled:
                counters.flatten_cache_hits += 1
        return self._flat.clone()

    def __repr__(self) -> str:
        return f"<OCIImage {self.digest[:19]} layers={len(self.layers)}>"


@dataclasses.dataclass(frozen=True)
class ImageReference:
    """Parsed form of ``registry.example.com/project/name:tag``."""

    registry: str
    repository: str
    tag: str = "latest"

    @classmethod
    def parse(cls, ref: str, default_registry: str = "docker.io") -> "ImageReference":
        registry = default_registry
        rest = ref
        if "/" in ref:
            head, tail = ref.split("/", 1)
            # A registry component contains a dot, a colon, or is localhost.
            if "." in head or ":" in head or head == "localhost":
                registry, rest = head, tail
        if ":" in rest:
            repository, tag = rest.rsplit(":", 1)
        else:
            repository, tag = rest, "latest"
        if not repository:
            raise ValueError(f"invalid image reference: {ref!r}")
        return cls(registry=registry, repository=repository, tag=tag)

    def __str__(self) -> str:
        return f"{self.registry}/{self.repository}:{self.tag}"
