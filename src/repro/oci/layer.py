"""OCI image layers: content-addressed filesystem diffs.

A layer captures changes relative to the previous layer (§3.1).  Layers
are the unit of deduplication in registries and local caches
(content-addressable storage), and the unit the HPC conversion step
flattens away.
"""

from __future__ import annotations

import hashlib
import typing as _t

from repro.fs.inode import DirNode, FileNode, Node, SymlinkNode, WhiteoutNode
from repro.fs.tree import FileTree

#: gzip-ish compression ratio for layer tarballs in transit
LAYER_COMPRESSION_RATIO = 0.5


class Layer:
    """An immutable filesystem diff with a content digest."""

    def __init__(self, tree: FileTree, created_by: str = ""):
        self.tree = tree
        # Layers are the unit of content-addressed sharing: freeze the
        # tree so applying the layer aliases its nodes instead of copying
        # them, and nothing can mutate layer content in place afterwards.
        tree.root._freeze()
        self.created_by = created_by
        self.uncompressed_size = tree.total_size()
        self.compressed_size = int(self.uncompressed_size * LAYER_COMPRESSION_RATIO)
        self.num_files = tree.num_files()
        self._digest = self._compute_digest()

    def _compute_digest(self) -> str:
        """Digest over the sorted (path, kind, content-digest) entries, so
        identical content yields identical digests — the property layer
        deduplication relies on."""
        h = hashlib.sha256()
        h.update(self.created_by.encode())
        for path, node in self.tree.walk():
            h.update(path.encode())
            h.update(node.kind.encode())
            if isinstance(node, FileNode):
                h.update(node.digest().encode())
                h.update(str(node.mode).encode())
                h.update(f"{node.uid}:{node.gid}".encode())
            elif isinstance(node, SymlinkNode):
                h.update(node.target.encode())
        return "sha256:" + h.hexdigest()

    @property
    def digest(self) -> str:
        return self._digest

    def apply_to(self, tree: FileTree) -> None:
        """Apply this diff (including whiteouts) onto ``tree`` in place."""
        tree.merge_from(self.tree)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Layer) and other.digest == self.digest

    def __hash__(self) -> int:
        return hash(self.digest)

    def __repr__(self) -> str:
        return f"<Layer {self.digest[:19]} files={self.num_files} size={self.uncompressed_size}>"


def diff_trees(base: FileTree, new: FileTree, created_by: str = "") -> Layer:
    """Compute the layer that transforms ``base`` into ``new``.

    Additions and modifications appear as content; deletions appear as
    whiteout entries (the ``.wh.`` convention of the OCI layer format).
    """
    delta = FileTree()

    new_nodes: dict[str, Node] = dict(new.walk())
    base_nodes: dict[str, Node] = dict(base.walk())
    same_tree = new is base

    def _file_unchanged(old: FileNode, node: FileNode) -> bool:
        if old.data is not None or node.data is not None:
            return old.digest() == node.digest()
        # Size-only (bulk) files hash their inode identity.  A deep clone
        # used to reallocate inodes, so bulk files in two distinct trees
        # *never* compared equal — committed layer sizes and build costs
        # depend on that inflation.  CoW clones now share the node object,
        # so preserve the historical semantics explicitly: a bulk file
        # only counts as unchanged when diffing a tree against itself.
        return same_tree and old is node

    for path, node in new_nodes.items():
        if path == "/":
            continue
        old = base_nodes.get(path)
        if isinstance(node, FileNode):
            if not isinstance(old, FileNode) or not _file_unchanged(old, node) or old.mode != node.mode:
                delta.create_file(
                    path, data=node.data, size=None if node.data is not None else node.size,
                    uid=node.uid, gid=node.gid, mode=node.mode,
                )
        elif isinstance(node, SymlinkNode):
            if not isinstance(old, SymlinkNode) or old.target != node.target:
                delta.symlink(path, node.target, uid=node.uid, gid=node.gid)
        elif isinstance(node, DirNode) and old is None:
            delta.mkdir(path, parents=True, uid=node.uid, gid=node.gid)

    for path in base_nodes:
        if path != "/" and path not in new_nodes:
            # Only whiteout the topmost deleted entry, not every descendant.
            parent = path.rsplit("/", 1)[0] or "/"
            if parent == "/" or parent in new_nodes:
                delta.whiteout(path)

    return Layer(delta, created_by=created_by)
