"""OCI runtimes (runc, crun) and the container lifecycle.

The runtime is "a lower-level component that handles image and process
management [and] sets up the user namespace, thus starting the container
process" (§3.1).  Engines call into a runtime; the runtime calls into
the (simulated) kernel, so every namespace/mount permission rule applies
exactly once, here.
"""

from __future__ import annotations

import enum
import itertools
import typing as _t

from repro.fs.drivers import MountedView, mount_bind
from repro.fs.inode import DirNode, FileNode
from repro.fs.perf import PROFILES
from repro.fs.tree import FileTree
from repro.kernel.credentials import Capability
from repro.kernel.errors import EINVAL, EPERM
from repro.kernel.namespaces import IdMapping, NamespaceKind
from repro.kernel.process import SimProcess
from repro.kernel.syscalls import Kernel
from repro.oci.bundle import Bundle
from repro.oci.hooks import HookPoint, HookRegistry

_container_counter = itertools.count(1)


class ContainerState(enum.Enum):
    CREATING = "creating"
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    DELETED = "deleted"


class Container:
    """A created/running container instance."""

    def __init__(self, container_id: str, bundle: Bundle, runtime: "OCIRuntime"):
        self.id = container_id
        self.bundle = bundle
        self.runtime = runtime
        self.state = ContainerState.CREATING
        self.proc: SimProcess | None = None
        self.exit_code: int | None = None
        #: extra mounts inside the container: target -> view
        self.mounts: dict[str, MountedView] = {}
        #: diagnostics trail (namespaces created, hooks run, mounts made)
        self.events: list[str] = []

    @property
    def rootfs(self) -> MountedView:
        return self.bundle.rootfs

    def resolve(self, path: str):
        """Resolve a path through bind mounts, then the rootfs."""
        for target in sorted(self.mounts, key=len, reverse=True):
            if path == target or path.startswith(target.rstrip("/") + "/"):
                inner = path[len(target.rstrip("/")) :] or "/"
                node = self.mounts[target].lookup(inner)
                if node is not None:
                    return node
        return self.rootfs.lookup(path)

    def exists(self, path: str) -> bool:
        return self.resolve(path) is not None

    def namespaces_created(self) -> set[NamespaceKind]:
        assert self.proc is not None
        kernel = self.runtime.kernel
        created = set()
        for kind, ns in self.proc.namespaces.items():
            if ns is not kernel.initial_namespaces.get(kind):
                created.add(kind)
        return created

    def log(self, message: str) -> None:
        self.events.append(message)

    def __repr__(self) -> str:
        return f"<Container {self.id} {self.state.value}>"


class OCIRuntime:
    """Base OCI runtime: create → start → kill → delete, with hooks."""

    name = "oci-runtime"
    implementation_language = "?"
    #: process startup overhead in seconds (fork/exec, cgroup setup, ...)
    startup_overhead = 0.050
    supports_hooks = True

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.containers: dict[str, Container] = {}

    # -- lifecycle -------------------------------------------------------------
    def create(
        self,
        bundle: Bundle,
        owner: SimProcess,
        container_id: str | None = None,
        extra_hooks: HookRegistry | None = None,
    ) -> Container:
        problems = bundle.validate()
        if problems:
            raise EINVAL(f"invalid bundle: {problems}")
        cid = container_id or f"ctr-{next(_container_counter)}"
        if cid in self.containers:
            raise EINVAL(f"container id {cid} already in use")
        container = Container(cid, bundle, self)
        self.containers[cid] = container
        try:
            return self._create_inner(container, bundle, owner, extra_hooks)
        except BaseException:
            # failed create must not leak a half-built container record
            self.containers.pop(cid, None)
            raise

    def _create_inner(
        self,
        container: Container,
        bundle: Bundle,
        owner: SimProcess,
        extra_hooks: HookRegistry | None,
    ) -> Container:
        hooks = bundle.spec.hooks
        if extra_hooks is not None:
            hooks = hooks.merged_with(extra_hooks)
        context = {
            "container": container,
            "bundle": bundle,
            "kernel": self.kernel,
            "runtime": self,
            "owner": owner,
        }

        proc = self.kernel.spawn(parent=owner, argv=bundle.spec.args)
        container.proc = proc
        context["proc"] = proc

        # 1. namespaces (USER first — see Kernel.unshare)
        requested = bundle.spec.namespaces.create
        self.kernel.unshare(proc, requested)
        if NamespaceKind.USER in requested:
            self.kernel.write_uid_map(
                proc.userns,
                [IdMapping(inside=self._inside_uid(bundle), outside=proc.euid)],
                writer=proc,
            )
        container.log(f"namespaces: {sorted(k.value for k in requested)}")

        hooks.run(HookPoint.CREATE_RUNTIME, context)

        # 2. rootfs mount + pivot_root
        self.kernel.mount(proc, bundle.rootfs, "/run/oci/rootfs")
        self.kernel.pivot_root(proc, "/run/oci/rootfs")
        container.log("rootfs mounted and pivoted")

        # 3. bind mounts (host libraries, datasets, device libs)
        for bind in bundle.spec.bind_mounts:
            view = self._bind_view(bind.source_tree, bind.source_path)
            self.kernel.mount(proc, view, bind.target_path)
            container.mounts[bind.target_path] = view
            container.log(f"bind {bind.source_path} -> {bind.target_path}")

        # 4. devices — privilege comes from the invoking daemon/user (the
        # WLM grants devices to the job's user process, §4.1.6)
        for device in bundle.spec.devices:
            self.kernel.expose_device(proc, device, by=owner)
            container.log(f"device {device}")

        # 5. cgroup placement
        if bundle.spec.cgroup_path is not None:
            by_uid = 0 if owner.creds.is_root else owner.creds.uid
            mgr = self.kernel.cgroups
            if not mgr.exists(bundle.spec.cgroup_path):
                mgr.create(bundle.spec.cgroup_path, by_uid=by_uid)
            mgr.attach(bundle.spec.cgroup_path, proc.pid, by_uid=by_uid)

        hooks.run(HookPoint.CREATE_CONTAINER, context)
        hooks.run(HookPoint.PRESTART, context)
        container.state = ContainerState.CREATED
        container._context = context  # type: ignore[attr-defined]
        container._hooks = hooks  # type: ignore[attr-defined]
        return container

    def start(self, container: Container) -> None:
        if container.state is not ContainerState.CREATED:
            raise EINVAL(f"cannot start container in state {container.state.value}")
        hooks: HookRegistry = container._hooks  # type: ignore[attr-defined]
        context: dict = container._context  # type: ignore[attr-defined]
        hooks.run(HookPoint.START_CONTAINER, context)
        container.state = ContainerState.RUNNING
        hooks.run(HookPoint.POSTSTART, context)
        container.log("started")

    def kill(self, container: Container, exit_code: int = 137) -> None:
        if container.state is not ContainerState.RUNNING:
            raise EINVAL(f"cannot kill container in state {container.state.value}")
        assert container.proc is not None
        self.kernel.exit(container.proc, exit_code)
        container.exit_code = exit_code
        container.state = ContainerState.STOPPED
        container.log(f"killed ({exit_code})")

    def finish(self, container: Container, exit_code: int = 0) -> None:
        """Normal process exit."""
        if container.state is not ContainerState.RUNNING:
            raise EINVAL(f"container not running: {container.state.value}")
        assert container.proc is not None
        self.kernel.exit(container.proc, exit_code)
        container.exit_code = exit_code
        container.state = ContainerState.STOPPED

    def delete(self, container: Container) -> None:
        if container.state is ContainerState.RUNNING:
            raise EPERM("cannot delete a running container")
        hooks: HookRegistry = getattr(container, "_hooks", HookRegistry())
        context: dict = getattr(container, "_context", {})
        hooks.run(HookPoint.POSTSTOP, context)
        container.state = ContainerState.DELETED
        self.containers.pop(container.id, None)

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _inside_uid(bundle: Bundle) -> int:
        user = bundle.spec.user
        if user in ("root", "0"):
            return 0
        try:
            return int(user)
        except ValueError:
            return 1000

    @staticmethod
    def _bind_view(source_tree: FileTree, source_path: str) -> MountedView:
        node = source_tree.get(source_path)
        if isinstance(node, DirNode):
            sub = FileTree(root=node)
        elif isinstance(node, FileNode):
            sub = FileTree()
            sub.create_file("/" + source_path.rsplit("/", 1)[-1], data=node.data, size=None if node.data is not None else node.size)
        else:
            raise EINVAL(f"cannot bind-mount {source_path}")
        return mount_bind(sub, PROFILES["nvme"])

    def startup_cost(self) -> float:
        return self.startup_overhead

    def __repr__(self) -> str:
        return f"<{type(self).__name__} containers={len(self.containers)}>"


class RuncRuntime(OCIRuntime):
    """The OCI reference runtime, split off from Docker (Go)."""

    name = "runc"
    implementation_language = "Go"
    startup_overhead = 0.055


class CrunRuntime(OCIRuntime):
    """The containers-project runtime (C): faster, lighter."""

    name = "crun"
    implementation_language = "C"
    startup_overhead = 0.018
