"""The miniature shell the image builders execute.

Real Dockerfiles run arbitrary shell; a simulation cannot, so ``RUN``
lines (and ``%post`` sections) are written in a small command language
whose effects on the filesystem tree are explicit:

=====================================  ==========================================
command                                effect
=====================================  ==========================================
``mkdir [-p] PATH``                    create a directory
``touch PATH``                         create an empty file
``write PATH SIZE``                    create a size-only file of SIZE bytes
``echo TEXT > PATH``                   create a data file with TEXT
``rm [-rf] PATH``                      remove a path
``chmod MODE PATH``                    change mode (octal)
``ln -s TARGET PATH``                  create a symlink
``install-pkg NAME NFILES SIZE``       OS package: NFILES files of SIZE bytes
                                       under /opt/NAME + an SBOM marker
``pip-install NAME [NFILES]``          Python package: many small .py files in
                                       site-packages + an SBOM marker
``compile SRC OUT SIZE``               produce a binary of SIZE bytes at OUT
=====================================  ==========================================

Multiple commands may be chained with ``&&``.  An unknown command leaves
a deterministic marker file so distinct commands still yield distinct
layers (and cache keys).
"""

from __future__ import annotations

import hashlib
import json
import shlex

from repro.fs.tree import FileTree

#: where package installs record their SBOM markers (see signing.sbom)
MANIFEST_DIR = "/var/lib/repro-pkg"

#: default python minor version used for site-packages paths
SITE_PACKAGES = "/usr/lib/python3.11/site-packages"


class ShellError(ValueError):
    """A build command failed (bad syntax or bad target)."""


def run_commands(tree: FileTree, script: str, uid: int = 0) -> None:
    """Execute a script (newlines and ``&&`` both separate commands)."""
    for raw_line in script.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        for command in line.split("&&"):
            command = command.strip()
            if command:
                _run_one(tree, command, uid)


def _record_pkg(tree: FileTree, name: str, version: str, origin: str, uid: int) -> None:
    meta = json.dumps({"name": name, "version": version, "origin": origin})
    tree.create_file(f"{MANIFEST_DIR}/{origin}-{name}.json", data=meta.encode(), uid=uid)


def _run_one(tree: FileTree, command: str, uid: int) -> None:
    try:
        argv = shlex.split(command)
    except ValueError as exc:
        raise ShellError(f"unparseable command {command!r}: {exc}") from exc
    if not argv:
        return
    cmd, *args = argv

    if cmd == "mkdir":
        args = [a for a in args if a != "-p"]
        if not args:
            raise ShellError("mkdir: missing path")
        for path in args:
            tree.mkdir(path, parents=True, uid=uid)
    elif cmd == "touch":
        for path in args:
            tree.create_file(path, data=b"", uid=uid)
    elif cmd == "write":
        if len(args) != 2:
            raise ShellError(f"write: expected PATH SIZE, got {args}")
        tree.create_file(args[0], size=int(args[1]), uid=uid)
    elif cmd == "echo":
        if ">" not in args:
            raise ShellError("echo: only the 'echo TEXT > PATH' form is supported")
        split = args.index(">")
        text, target = " ".join(args[:split]), args[split + 1]
        tree.create_file(target, data=text.encode(), uid=uid)
    elif cmd == "rm":
        args = [a for a in args if a not in ("-r", "-f", "-rf")]
        for path in args:
            tree.remove(path)
    elif cmd == "chmod":
        if len(args) != 2:
            raise ShellError("chmod: expected MODE PATH")
        tree.chmod(args[1], int(args[0], 8))
    elif cmd == "ln":
        if len(args) != 3 or args[0] != "-s":
            raise ShellError("ln: only 'ln -s TARGET PATH' is supported")
        tree.symlink(args[2], args[1], uid=uid)
    elif cmd == "install-pkg":
        if len(args) not in (3, 4):
            raise ShellError("install-pkg: expected NAME NFILES SIZE [VERSION]")
        name, nfiles, size = args[0], int(args[1]), int(args[2])
        version = args[3] if len(args) == 4 else "1.0"
        for i in range(nfiles):
            tree.create_file(f"/opt/{name}/lib/file_{i:04}.so", size=size, uid=uid)
        _record_pkg(tree, name, version, "os-package", uid)
    elif cmd == "pip-install":
        if not args:
            raise ShellError("pip-install: missing package name")
        name = args[0]
        nfiles = int(args[1]) if len(args) > 1 else 120
        for i in range(nfiles):
            tree.create_file(f"{SITE_PACKAGES}/{name}/mod_{i:04}.py", size=2_000, uid=uid)
        _record_pkg(tree, name, "1.0", "pip", uid)
    elif cmd == "compile":
        if len(args) != 3:
            raise ShellError("compile: expected SRC OUT SIZE")
        src, out, size = args
        if not tree.exists(src):
            raise ShellError(f"compile: source {src} does not exist")
        tree.create_file(out, size=int(size), uid=uid, mode=0o755)
    else:
        # Unknown command: deterministic marker so layers still differ.
        marker = hashlib.sha256(command.encode()).hexdigest()[:16]
        tree.create_file(f"/.build/{marker}", data=command.encode(), uid=uid)
