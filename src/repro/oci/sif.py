"""The Singularity Image Format (SIF).

A flat single-file format (§4.1.4): one SquashFS partition carries the
whole root filesystem (no layering), with optional definition metadata,
embedded PGP signatures, an optional writable overlay partition, and
optional encryption.  "SIF integrates writable overlay data, which may
be useful to bundle either models or output data with the code using or
generating it."
"""

from __future__ import annotations

import dataclasses
import enum
import itertools

from repro.fs.images import DEFAULT_COMPRESSION_RATIO, SquashImage, pack_squash
from repro.fs.tree import FileTree
from repro.oci.digest import digest_str
from repro.oci.image import ImageConfig
from repro.signing.keys import KeyPair, Signature, SignatureError

_sif_counter = itertools.count(1)


class SIFPartition(enum.Enum):
    DEFINITION = "definition"
    SQUASHFS = "squashfs"
    OVERLAY = "overlay"
    SIGNATURE = "signature"


class SIFImage:
    """A flat, single-file container image."""

    def __init__(
        self,
        tree: FileTree,
        config: ImageConfig,
        definition: str = "",
        built_by_uid: int = 0,
        compression_ratio: float = DEFAULT_COMPRESSION_RATIO,
    ):
        self.sif_id = next(_sif_counter)
        self.config = config
        self.definition = definition
        self.built_by_uid = built_by_uid
        self.squash: SquashImage = pack_squash(
            tree, compression_ratio=compression_ratio, built_by_uid=built_by_uid
        )
        self.overlay: FileTree | None = None
        self.signatures: list[Signature] = []
        self.encrypted = False
        self._encryption_key_id: str | None = None

    # -- identity ---------------------------------------------------------------
    @property
    def tree(self) -> FileTree:
        return self.squash.tree

    @property
    def digest(self) -> str:
        return digest_str(f"sif:{self.squash.digest}:{self.config.digest}:{self.definition}")

    @property
    def file_size(self) -> int:
        size = self.squash.compressed_size + len(self.definition.encode())
        if self.overlay is not None:
            size += self.overlay.total_size()
        return size

    def partitions(self) -> list[SIFPartition]:
        parts = [SIFPartition.DEFINITION, SIFPartition.SQUASHFS]
        if self.overlay is not None:
            parts.append(SIFPartition.OVERLAY)
        if self.signatures:
            parts.append(SIFPartition.SIGNATURE)
        return parts

    # -- overlay -----------------------------------------------------------------
    def add_overlay(self) -> FileTree:
        """Attach a writable overlay partition (created empty)."""
        if self.encrypted:
            raise SignatureError("cannot attach an overlay to an encrypted image")
        if self.overlay is None:
            self.overlay = FileTree()
        return self.overlay

    # -- signing (PGP embedded in the SIF, §4.1.5) ----------------------------------
    def sign(self, key: KeyPair) -> Signature:
        signature = key.sign(self.digest.encode())
        self.signatures.append(signature)
        return signature

    def verify(self, key: KeyPair) -> bool:
        return any(key.verify(self.digest.encode(), sig) for sig in self.signatures)

    # -- encryption ------------------------------------------------------------------
    def encrypt(self, key: KeyPair) -> None:
        """Encrypt the squash partition (kernel dm-crypt route in the
        real implementation, hence root/driver requirements at runtime)."""
        if self.encrypted:
            raise SignatureError("image already encrypted")
        self.encrypted = True
        self._encryption_key_id = key.public_id

    def decrypt(self, key: KeyPair) -> None:
        if not self.encrypted:
            raise SignatureError("image is not encrypted")
        if key.public_id != self._encryption_key_id:
            raise SignatureError("wrong decryption key")
        self.encrypted = False
        self._encryption_key_id = None

    def readable_tree(self) -> FileTree:
        """The root filesystem — refuses to serve encrypted content."""
        if self.encrypted:
            raise SignatureError("image is encrypted; decrypt before use")
        return self.squash.tree

    def __repr__(self) -> str:
        flags = []
        if self.encrypted:
            flags.append("encrypted")
        if self.signatures:
            flags.append(f"{len(self.signatures)} sig")
        return f"<SIFImage #{self.sif_id} {self.file_size}B {' '.join(flags)}>"
