"""OCI → single-file image conversion.

"One solution ... is to flatten the OCI bundle either to a node-local
directory, or to a filesystem image on a shared storage" (§4.1.4).  The
conversion cost (flatten + mksquashfs) is what engines amortize with
their native-format caches (Table 2).
"""

from __future__ import annotations

from repro.fs.images import DEFAULT_COMPRESSION_RATIO, PACK_BANDWIDTH, SquashImage, pack_squash
from repro.fs.tree import FileTree
from repro.oci.image import OCIImage

#: layer extraction throughput (untar + decompress), bytes/second
EXTRACT_BANDWIDTH = 450e6


def flatten_image(image: OCIImage) -> FileTree:
    """Apply all layers into a single root tree (extraction step)."""
    return image.flatten()


def extract_cost(image: OCIImage) -> float:
    """Seconds to decompress and untar every layer."""
    return image.uncompressed_size / EXTRACT_BANDWIDTH


def oci_to_squash(
    image: OCIImage,
    built_by_uid: int = 0,
    compression_ratio: float = DEFAULT_COMPRESSION_RATIO,
) -> tuple[SquashImage, float]:
    """Convert an OCI image to a SquashFS image.

    Returns the image and the conversion cost in seconds (extract all
    layers, then repack).  ``built_by_uid`` records provenance: when the
    conversion runs inside a setuid helper or a root-owned cache the
    result is safe for the in-kernel driver; a user-run conversion is not
    (§4.1.2).
    """
    tree = flatten_image(image)
    squash = pack_squash(tree, compression_ratio=compression_ratio, built_by_uid=built_by_uid)
    cost = extract_cost(image) + tree.total_size() / PACK_BANDWIDTH
    return squash, cost
