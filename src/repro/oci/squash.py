"""OCI → single-file image conversion.

"One solution ... is to flatten the OCI bundle either to a node-local
directory, or to a filesystem image on a shared storage" (§4.1.4).  The
conversion cost (flatten + mksquashfs) is what engines amortize with
their native-format caches (Table 2).

This module is also the process-wide content-addressed cache for the
materialization work itself: flatten results and squash conversions are
keyed by the image's manifest digest, so each distinct image is
flattened and packed exactly once no matter how many engines, registries
or benchmark sweeps ask for it.  Cached flattens are handed out as O(1)
copy-on-write clones; cached conversions return the same (immutable)
:class:`SquashImage` — the simulated *cost* of a conversion is
deterministic, so virtual-time results are unchanged, only the
wall-clock work disappears.
"""

from __future__ import annotations

from repro.fs.images import DEFAULT_COMPRESSION_RATIO, PACK_BANDWIDTH, SquashImage, pack_squash
from repro.fs.tree import FileTree
from repro.oci.image import OCIImage
from repro.sim import profile as _profile

#: layer extraction throughput (untar + decompress), bytes/second
EXTRACT_BANDWIDTH = 450e6

#: manifest digest -> master flattened tree (never handed out directly;
#: callers always get a CoW clone of it)
_FLATTEN_CACHE: dict[str, FileTree] = {}

#: (manifest digest, built_by_uid, compression_ratio) -> (image, cost)
_CONVERT_CACHE: dict[tuple[str, int, float], tuple[SquashImage, float]] = {}


def _count_flatten_hit() -> None:
    counters = _profile.counters
    if counters.enabled:
        counters.flatten_cache_hits += 1


def clear_caches() -> None:
    """Drop the content-addressed caches (test isolation helper)."""
    _FLATTEN_CACHE.clear()
    _CONVERT_CACHE.clear()


def flatten_image(image: OCIImage) -> FileTree:
    """Apply all layers into a single root tree (extraction step).

    Content-addressed across *all* images in the process: two images
    assembled from identical layers share one master tree, and every
    call returns a copy-on-write clone of it.
    """
    master = _FLATTEN_CACHE.get(image.digest)
    if master is None:
        master = image.flatten()
        _FLATTEN_CACHE[image.digest] = master
    else:
        _count_flatten_hit()
    return master.clone()


def extract_cost(image: OCIImage) -> float:
    """Seconds to decompress and untar every layer."""
    return image.uncompressed_size / EXTRACT_BANDWIDTH


def oci_to_squash(
    image: OCIImage,
    built_by_uid: int = 0,
    compression_ratio: float = DEFAULT_COMPRESSION_RATIO,
) -> tuple[SquashImage, float]:
    """Convert an OCI image to a SquashFS image.

    Returns the image and the conversion cost in seconds (extract all
    layers, then repack).  ``built_by_uid`` records provenance: when the
    conversion runs inside a setuid helper or a root-owned cache the
    result is safe for the in-kernel driver; a user-run conversion is not
    (§4.1.2).

    Conversions are cached by (manifest digest, uid, ratio): the returned
    :class:`SquashImage` is immutable and its cost deterministic, so
    repeated conversions of the same image are free wall-clock-wise while
    the simulated cost each caller charges stays identical.
    """
    key = (image.digest, built_by_uid, compression_ratio)
    cached = _CONVERT_CACHE.get(key)
    if cached is not None:
        _count_flatten_hit()
        return cached
    tree = flatten_image(image)
    squash = pack_squash(tree, compression_ratio=compression_ratio, built_by_uid=built_by_uid)
    cost = extract_cost(image) + tree.total_size() / PACK_BANDWIDTH
    _CONVERT_CACHE[key] = (squash, cost)
    return squash, cost
