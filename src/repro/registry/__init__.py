"""Container registries: OCI distribution v2, Library API, and the seven
concrete registry products the paper compares (Tables 4 and 5).

Includes the infrastructure concerns §5 discusses: blob storage backends,
authentication providers, multi-tenancy and quotas, rate limiting (the
DockerHub problem), pull-through proxying, and mirroring/replication.
"""

from repro.registry.storage import BlobStore, FSBlobStore, S3BlobStore, StorageError
from repro.registry.auth import (
    AuthError,
    AuthProvider,
    AuthService,
    InternalAuth,
    KerberosAuth,
    LDAPAuth,
    OIDCAuth,
    PAMAuth,
    SAMLAuth,
)
from repro.registry.ratelimit import RateLimiter, RateLimitExceeded
from repro.registry.distribution import (
    OCIDistributionRegistry,
    RegistryError,
    RegistryRateLimited,
    RegistryTimeout,
    RegistryUnavailable,
    Transport,
)
from repro.registry.library_api import LibraryAPIRegistry
from repro.registry.proxy import PullThroughProxy
from repro.registry.mirror import MirrorDirection, MirrorRule, Replicator
from repro.registry.quota import QuotaManager, QuotaExceeded
from repro.registry.registries import (
    ALL_REGISTRIES,
    Gitea,
    GitLabRegistry,
    Harbor,
    Hinkskalle,
    Quay,
    RegistryProduct,
    RegistryTraits,
    Shpc,
    Zot,
)

__all__ = [
    "ALL_REGISTRIES",
    "AuthError",
    "AuthProvider",
    "AuthService",
    "BlobStore",
    "FSBlobStore",
    "Gitea",
    "GitLabRegistry",
    "Harbor",
    "Hinkskalle",
    "InternalAuth",
    "KerberosAuth",
    "LDAPAuth",
    "LibraryAPIRegistry",
    "MirrorDirection",
    "MirrorRule",
    "OCIDistributionRegistry",
    "OIDCAuth",
    "PAMAuth",
    "PullThroughProxy",
    "Quay",
    "QuotaExceeded",
    "QuotaManager",
    "RateLimitExceeded",
    "RateLimiter",
    "RegistryError",
    "RegistryProduct",
    "RegistryRateLimited",
    "RegistryTimeout",
    "RegistryUnavailable",
    "RegistryTraits",
    "Replicator",
    "S3BlobStore",
    "SAMLAuth",
    "Shpc",
    "StorageError",
    "Transport",
    "Zot",
]
