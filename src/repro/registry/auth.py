"""Authentication providers (Table 4's "Authentication Providers").

Each provider validates credentials against its own user source; a
registry's :class:`AuthService` chains the providers it supports and
mints scoped bearer tokens.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import typing as _t

_token_counter = itertools.count(1)


class AuthError(PermissionError):
    pass


@dataclasses.dataclass(frozen=True)
class Token:
    value: str
    username: str
    provider: str
    scopes: frozenset[str]

    def allows(self, scope: str) -> bool:
        return scope in self.scopes or "admin" in self.scopes


class AuthProvider:
    """Base provider: a named credential validator."""

    name = "base"

    def __init__(self) -> None:
        self._users: dict[str, str] = {}

    def add_user(self, username: str, secret: str) -> None:
        self._users[username] = hashlib.sha256(secret.encode()).hexdigest()

    def authenticate(self, username: str, secret: str) -> bool:
        stored = self._users.get(username)
        return stored is not None and stored == hashlib.sha256(secret.encode()).hexdigest()


class InternalAuth(AuthProvider):
    name = "internal"


class LDAPAuth(AuthProvider):
    """Directory-backed auth — the baseline every HPC site has."""

    name = "ldap"


class OIDCAuth(AuthProvider):
    """OpenID Connect federation (tokens instead of passwords)."""

    name = "oidc"

    def authenticate(self, username: str, secret: str) -> bool:
        # OIDC: the "secret" is an identity-provider token; accept tokens
        # minted via issue_idp_token.
        return self._users.get(username) == hashlib.sha256(secret.encode()).hexdigest()

    def issue_idp_token(self, username: str) -> str:
        token = f"idp-{username}-{next(_token_counter)}"
        self.add_user(username, token)
        return token


class PAMAuth(AuthProvider):
    name = "pam"


class KerberosAuth(AuthProvider):
    name = "kerberos"


class SAMLAuth(AuthProvider):
    name = "saml"


class UAAAuth(AuthProvider):
    name = "uaa"


class KeystoneAuth(AuthProvider):
    name = "keystone"


class AuthService:
    """Chains providers and mints scoped tokens."""

    def __init__(self, providers: _t.Sequence[AuthProvider]):
        if not providers:
            raise ValueError("an AuthService needs at least one provider")
        self.providers = list(providers)
        self._tokens: dict[str, Token] = {}

    def provider_names(self) -> list[str]:
        return [p.name for p in self.providers]

    def login(self, username: str, secret: str, scopes: _t.Iterable[str] = ("pull",)) -> Token:
        for provider in self.providers:
            if provider.authenticate(username, secret):
                token = Token(
                    value=f"tok-{next(_token_counter)}",
                    username=username,
                    provider=provider.name,
                    scopes=frozenset(scopes),
                )
                self._tokens[token.value] = token
                return token
        raise AuthError(f"authentication failed for {username!r}")

    def validate(self, token_value: str, scope: str) -> Token:
        token = self._tokens.get(token_value)
        if token is None:
            raise AuthError("invalid token")
        if not token.allows(scope):
            raise AuthError(f"token lacks scope {scope!r}")
        return token

    def revoke(self, token_value: str) -> None:
        self._tokens.pop(token_value, None)
