"""The OCI distribution (v2) protocol over a blob store.

Push/pull with content-addressed layer deduplication, tag listing,
multi-tenancy, per-project quotas, optional authentication and rate
limiting, OCI artifact storage (cosign signatures, Helm charts,
user-defined), and on-demand image squashing.

All operations return their simulated time cost so benchmark harnesses
can account for transfer behaviour without a live environment.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.faults.injector import injector as _faults
from repro.faults.plan import FaultKind
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.oci.image import ImageConfig, Manifest, OCIImage
from repro.oci.layer import Layer
from repro.registry.auth import AuthService
from repro.registry.quota import QuotaManager
from repro.registry.ratelimit import RateLimiter
from repro.registry.storage import BlobStore, FSBlobStore


class RegistryError(RuntimeError):
    """Permanent registry failure (unknown image, auth, policy).

    Callers must **not** retry these: the same request will fail the
    same way.  Transient conditions raise :class:`RegistryUnavailable`
    subclasses instead, which engine pull loops retry with deterministic
    backoff (see :meth:`repro.engines.base.ContainerEngine.pull`).
    """


class RegistryUnavailable(RegistryError):
    """Transient registry failure — retrying later can succeed.

    ``cost`` is the virtual time the failed request consumed (one
    round trip for a 429, a full client timeout for a hang); retry
    loops add it to their accounted elapsed time so backoff interacts
    correctly with fault windows.
    """

    def __init__(self, message: str, cost: float = 0.0, retry_after: float | None = None):
        super().__init__(message)
        self.cost = cost
        self.retry_after = retry_after


class RegistryRateLimited(RegistryUnavailable):
    """HTTP 429: the registry throttled this client."""


class RegistryTimeout(RegistryUnavailable):
    """The request hung until the client-side timeout fired."""


@dataclasses.dataclass(frozen=True)
class Transport:
    """Client↔registry network cost model."""

    latency: float = 20e-3
    bandwidth: float = 1.0e9
    #: how long a client waits on a hung request before giving up
    client_timeout: float = 30.0

    def request_cost(self, nbytes: int = 0) -> float:
        return self.latency + nbytes / self.bandwidth


@dataclasses.dataclass
class Artifact:
    media_type: str
    digest: str
    size: int
    payload: object = None


#: media types every OCI v2 registry accepts
CORE_MEDIA_TYPES = frozenset(
    {
        "application/vnd.oci.image.layer.v1.tar+gzip",
        "application/vnd.oci.image.config.v1+json",
        "application/vnd.oci.image.manifest.v1+json",
    }
)


class OCIDistributionRegistry:
    """A registry speaking the OCI distribution protocol."""

    def __init__(
        self,
        name: str = "registry",
        store: BlobStore | None = None,
        auth: AuthService | None = None,
        rate_limiter: RateLimiter | None = None,
        quotas: QuotaManager | None = None,
        multi_tenant: bool = False,
        extra_media_types: frozenset[str] = frozenset(),
        user_defined_artifacts: bool = False,
        supports_squashing: bool = False,
        transport: Transport = Transport(),
    ):
        self.name = name
        # note: BlobStore defines __len__, so `store or ...` would discard
        # an *empty* store — the None check is load-bearing
        self.store = store if store is not None else FSBlobStore()
        self.auth = auth
        self.rate_limiter = rate_limiter
        self.quotas = quotas
        self.multi_tenant = multi_tenant
        self.allowed_media_types = CORE_MEDIA_TYPES | extra_media_types
        self.user_defined_artifacts = user_defined_artifacts
        self.supports_squashing = supports_squashing
        self.transport = transport
        #: repo -> tag -> manifest digest
        self._tags: dict[str, dict[str, str]] = {}
        #: manifest digest -> (Manifest, ImageConfig)
        self._manifests: dict[str, tuple[Manifest, ImageConfig]] = {}
        #: repo/ref -> artifact
        self._artifacts: dict[str, Artifact] = {}
        #: manifest digest -> the assembled OCIImage handed to pullers.
        #: Images are immutable, so repeat pulls of the same manifest can
        #: share one object instead of re-deriving the manifest + config
        #: digests per pull — at fleet scale that is one sha256/JSON
        #: round per container start.  Cost accounting is unaffected:
        #: the per-layer store reads below still run every pull.
        self._pull_cache: dict[str, OCIImage] = {}
        #: declared tenants (orgs/projects)
        self._tenants: set[str] = set()
        self.stats = {"pushes": 0, "pulls": 0, "blob_uploads_skipped": 0}

    # -- tenancy -------------------------------------------------------------------
    def create_tenant(self, tenant: str) -> None:
        if not self.multi_tenant:
            raise RegistryError(f"{self.name} has no multi-tenancy support")
        self._tenants.add(tenant)

    def _project_of(self, repository: str) -> str | None:
        if not self.multi_tenant:
            return None
        project = repository.split("/", 1)[0]
        if project not in self._tenants:
            raise RegistryError(f"unknown project/organization: {project!r}")
        return project

    # -- auth / limits -----------------------------------------------------------------
    def _authorize(self, token: str | None, scope: str) -> None:
        if self.auth is None:
            return
        if token is None:
            raise RegistryError(f"{self.name} requires authentication for {scope}")
        self.auth.validate(token, scope)

    def _rate_check(self, ip: str, now: float) -> None:
        if self.rate_limiter is not None:
            self.rate_limiter.check(ip, now)

    # -- push ---------------------------------------------------------------------------
    def push_image(
        self,
        repository: str,
        tag: str,
        image: OCIImage,
        token: str | None = None,
    ) -> float:
        """Push an image; returns the time cost.  Existing blobs are
        skipped after a HEAD check (layer dedup)."""
        self._authorize(token, "push")
        project = self._project_of(repository)
        cost = 0.0
        new_bytes = 0
        for layer in image.layers:
            if self.store.has(layer.digest):
                cost += self.store.stat(layer.digest) + self.transport.request_cost()
                self.stats["blob_uploads_skipped"] += 1
            else:
                cost += self.transport.request_cost(layer.compressed_size)
                cost += self.store.put(
                    layer.digest,
                    layer.compressed_size,
                    payload=layer,
                    media_type="application/vnd.oci.image.layer.v1.tar+gzip",
                )
                new_bytes += layer.compressed_size
        # the manifest already snapshotted the config digest at image
        # construction; re-deriving it (JSON + sha256) per push is pure
        # waste when tenants re-push a shared catalog
        config_digest = image.manifest.config_digest
        if not self.store.has(config_digest):
            config_payload = image.config.to_json().encode()
            cost += self.transport.request_cost(len(config_payload))
            cost += self.store.put(
                config_digest,
                len(config_payload),
                payload=image.config,
                media_type="application/vnd.oci.image.config.v1+json",
            )
            new_bytes += len(config_payload)
        if project is not None and self.quotas is not None and new_bytes:
            self.quotas.charge(project, new_bytes)
        self._manifests[image.digest] = (image.manifest, image.config)
        self._tags.setdefault(repository, {})[tag] = image.digest
        cost += self.transport.request_cost(1024)  # manifest PUT
        self.stats["pushes"] += 1
        if _trace.tracer.enabled:
            _trace.complete(
                "registry.push", cost, registry=self.name, ref=f"{repository}:{tag}"
            )
        if _metrics.registry.enabled:
            _metrics.inc("registry.pushes", registry=self.name)
            _metrics.inc("registry.bytes", new_bytes, registry=self.name, op="push")
        return cost

    # -- pull ----------------------------------------------------------------------------
    def resolve(self, repository: str, tag: str) -> str:
        """Resolve ``repository:tag`` to its manifest digest.

        Raises :class:`RegistryError` (permanent — callers must not
        retry) when the repository or tag does not exist.
        """
        tags = self._tags.get(repository)
        if tags is None or tag not in tags:
            raise RegistryError(f"{self.name}: no such image {repository}:{tag}")
        return tags[tag]

    def pull_image(
        self,
        repository: str,
        tag: str,
        token: str | None = None,
        ip: str = "10.0.0.1",
        now: float = 0.0,
        have_digests: _t.Container[str] = frozenset(),
    ) -> tuple[OCIImage, float]:
        """Pull an image; blobs in ``have_digests`` (the client's local
        cache) are skipped.  Returns the image and the time cost.

        Raises:
            RegistryError: permanently, for an unknown ``repository:tag``
                or failed authorization — do not retry.
            RegistryRateLimited: transiently, while an armed fault plan
                has a ``registry_429`` window open; carries the wasted
                round-trip as ``cost``.
            RegistryTimeout: transiently, during a ``registry_timeout``
                window; carries one full ``transport.client_timeout``.

        A ``registry_slow_blob`` fault does not raise — it multiplies the
        returned cost by the fault's factor.  ``now`` keys the fault
        window lookup (and the rate limiter), so analytic retry loops
        pass ``now + cost_so_far`` to model time moving forward between
        attempts.
        """
        self._authorize(token, "pull")
        self._rate_check(ip, now)
        slow_factor = 1.0
        if _faults.enabled:
            fault = _faults.active("registry.pull", at=now, target=self.name)
            if fault is not None:
                if fault.kind is FaultKind.REGISTRY_429:
                    raise RegistryRateLimited(
                        f"{self.name}: 429 Too Many Requests (fault window "
                        f"until t={fault.until:.1f})",
                        cost=self.transport.request_cost(),
                        retry_after=max(0.0, fault.until - now),
                    )
                if fault.kind is FaultKind.REGISTRY_TIMEOUT:
                    raise RegistryTimeout(
                        f"{self.name}: request hung (fault window until "
                        f"t={fault.until:.1f})",
                        cost=self.transport.client_timeout,
                    )
                if fault.kind is FaultKind.REGISTRY_SLOW_BLOB:
                    slow_factor = max(1.0, fault.factor)
        digest = self.resolve(repository, tag)
        manifest, config = self._manifests[digest]
        cost = self.transport.request_cost(2048)  # manifest GET
        layers: list[Layer] = []
        transferred = 0
        for layer_digest in manifest.layer_digests:
            blob, store_cost = self.store.get(layer_digest)
            layer = blob.payload
            assert isinstance(layer, Layer)
            layers.append(layer)
            if layer_digest not in have_digests:
                cost += store_cost + self.transport.request_cost(blob.size)
                transferred += blob.size
        cost *= slow_factor
        self.stats["pulls"] += 1
        if _trace.tracer.enabled:
            _trace.complete(
                "registry.pull",
                cost,
                registry=self.name,
                ref=f"{repository}:{tag}",
                bytes=transferred,
            )
        if _metrics.registry.enabled:
            _metrics.inc("registry.pulls", registry=self.name)
            _metrics.inc("registry.bytes", transferred, registry=self.name, op="pull")
            _metrics.observe("registry.pull_seconds", cost, registry=self.name)
        image = self._pull_cache.get(digest)
        if image is None:
            image = self._pull_cache[digest] = OCIImage(config, layers)
        return image, cost

    def delete_tag(self, repository: str, tag: str, token: str | None = None) -> None:
        self._authorize(token, "push")
        self.resolve(repository, tag)  # raises if absent
        del self._tags[repository][tag]
        if not self._tags[repository]:
            del self._tags[repository]

    def garbage_collect(self) -> int:
        """Drop manifests and blobs no tag references anymore; returns the
        number of blobs purged (registry GC, run offline in real life)."""
        referenced_manifests = {
            digest for tags in self._tags.values() for digest in tags.values()
        }
        referenced_blobs: set[str] = set()
        for digest in list(self._manifests):
            if digest not in referenced_manifests:
                del self._manifests[digest]
        for manifest, config in self._manifests.values():
            referenced_blobs.update(manifest.layer_digests)
            referenced_blobs.add(config.digest)
        purged = 0
        for blob_digest in list(self.store._blobs):
            blob = self.store._blobs[blob_digest]
            if (
                blob_digest not in referenced_blobs
                and blob.media_type.startswith("application/vnd.oci.image")
            ):
                del self.store._blobs[blob_digest]
                purged += 1
        return purged

    def list_tags(self, repository: str) -> list[str]:
        return sorted(self._tags.get(repository, {}))

    def list_repositories(self) -> list[str]:
        return sorted(self._tags)

    # -- artifacts (cosign signatures, helm charts, user-defined) --------------------------
    def push_artifact(
        self,
        repository: str,
        reference: str,
        media_type: str,
        size: int,
        payload: object = None,
        token: str | None = None,
    ) -> float:
        self._authorize(token, "push")
        self._project_of(repository)
        if media_type not in self.allowed_media_types and not self.user_defined_artifacts:
            raise RegistryError(
                f"{self.name} does not accept artifacts of type {media_type!r}"
            )
        from repro.oci.digest import digest_str

        digest = digest_str(f"{repository}:{reference}:{media_type}")
        cost = self.transport.request_cost(size) + self.store.put(
            digest, size, payload=payload, media_type=media_type
        )
        self._artifacts[f"{repository}/{reference}"] = Artifact(media_type, digest, size, payload)
        return cost

    def get_artifact(self, repository: str, reference: str) -> Artifact:
        artifact = self._artifacts.get(f"{repository}/{reference}")
        if artifact is None:
            raise RegistryError(f"no artifact {repository}/{reference}")
        return artifact

    # -- squashing (Table 5: Quay "on-demand") ------------------------------------------------
    def squashed_image(self, repository: str, tag: str) -> OCIImage:
        if not self.supports_squashing:
            raise RegistryError(f"{self.name} does not support image squashing")
        digest = self.resolve(repository, tag)
        manifest, config = self._manifests[digest]
        layers = []
        for layer_digest in manifest.layer_digests:
            blob, _ = self.store.get(layer_digest)
            assert isinstance(blob.payload, Layer)
            layers.append(blob.payload)
        flat = OCIImage(config, layers).flatten()
        return OCIImage(config, [Layer(flat, created_by=f"squash {repository}:{tag}")])

    def __repr__(self) -> str:
        return f"<OCIDistributionRegistry {self.name} repos={len(self._tags)}>"
