"""The Singularity Library API protocol.

SIF-native registries (§5.1.1): flat images addressed as
``entity/collection/container:tag``, with signature metadata preserved
(no repackaging), as opposed to pushing SIF files into OCI registries as
opaque artifacts.
"""

from __future__ import annotations

import dataclasses

from repro.oci.sif import SIFImage
from repro.registry.distribution import RegistryError, Transport
from repro.registry.storage import BlobStore, FSBlobStore


@dataclasses.dataclass(frozen=True)
class LibraryRef:
    entity: str
    collection: str
    container: str
    tag: str = "latest"

    @classmethod
    def parse(cls, ref: str) -> "LibraryRef":
        ref = ref.removeprefix("library://")
        if ":" in ref:
            path, tag = ref.rsplit(":", 1)
        else:
            path, tag = ref, "latest"
        parts = path.split("/")
        if len(parts) != 3 or not all(parts):
            raise RegistryError(
                f"library ref must be entity/collection/container[:tag], got {ref!r}"
            )
        return cls(parts[0], parts[1], parts[2], tag)

    def __str__(self) -> str:
        return f"library://{self.entity}/{self.collection}/{self.container}:{self.tag}"


class LibraryAPIRegistry:
    """A SIF registry speaking the Library API."""

    def __init__(self, name: str = "library", store: BlobStore | None = None,
                 transport: Transport = Transport()):
        self.name = name
        self.store = store if store is not None else FSBlobStore()
        self.transport = transport
        #: (entity, collection, container) -> tag -> sif digest
        self._tags: dict[tuple[str, str, str], dict[str, str]] = {}
        self.stats = {"pushes": 0, "pulls": 0}

    def push_sif(self, ref: str | LibraryRef, image: SIFImage) -> float:
        parsed = LibraryRef.parse(ref) if isinstance(ref, str) else ref
        cost = self.transport.request_cost(image.file_size)
        cost += self.store.put(image.digest, image.file_size, payload=image,
                               media_type="application/vnd.sylabs.sif.layer.v1.sif")
        key = (parsed.entity, parsed.collection, parsed.container)
        self._tags.setdefault(key, {})[parsed.tag] = image.digest
        self.stats["pushes"] += 1
        return cost

    def pull_sif(self, ref: str | LibraryRef) -> tuple[SIFImage, float]:
        parsed = LibraryRef.parse(ref) if isinstance(ref, str) else ref
        key = (parsed.entity, parsed.collection, parsed.container)
        tags = self._tags.get(key)
        if tags is None or parsed.tag not in tags:
            raise RegistryError(f"{self.name}: no such image {parsed}")
        blob, store_cost = self.store.get(tags[parsed.tag])
        image = blob.payload
        assert isinstance(image, SIFImage)
        self.stats["pulls"] += 1
        return image, store_cost + self.transport.request_cost(blob.size)

    def list_containers(self, entity: str, collection: str) -> list[str]:
        return sorted(
            container
            for (e, c, container) in self._tags
            if e == entity and c == collection
        )
