"""Mirroring / replication between registries (Table 4's "Repl./Mirroring").

Two directions (§5.1.3): *push* replication propagates local content to a
peer on every push (Harbor); *pull* replication periodically syncs
remote repositories onto local infrastructure (Quay, zot, Harbor).
"""

from __future__ import annotations

import dataclasses
import enum
import fnmatch

from repro.registry.distribution import OCIDistributionRegistry, RegistryError


class MirrorDirection(enum.Enum):
    PUSH = "push"
    PULL = "pull"


@dataclasses.dataclass
class MirrorRule:
    direction: MirrorDirection
    #: glob over repository names ("hpc/*")
    repository_pattern: str
    peer: OCIDistributionRegistry

    def matches(self, repository: str) -> bool:
        return fnmatch.fnmatch(repository, self.repository_pattern)


class Replicator:
    """Applies mirror rules for one local registry."""

    def __init__(self, local: OCIDistributionRegistry):
        self.local = local
        self.rules: list[MirrorRule] = []
        self.stats = {"push_replications": 0, "pull_syncs": 0}

    def add_rule(self, rule: MirrorRule) -> None:
        self.rules.append(rule)

    # -- push replication ------------------------------------------------------
    def on_push(self, repository: str, tag: str) -> float:
        """Call after a local push; replicates to matching push peers."""
        cost = 0.0
        image, pull_cost = self.local.pull_image(repository, tag)
        for rule in self.rules:
            if rule.direction is MirrorDirection.PUSH and rule.matches(repository):
                cost += pull_cost + rule.peer.push_image(repository, tag, image)
                self.stats["push_replications"] += 1
        return cost

    # -- pull (sync) replication ---------------------------------------------------
    def sync(self, now: float = 0.0) -> float:
        """Periodic sync: copy matching remote repositories into local."""
        cost = 0.0
        for rule in self.rules:
            if rule.direction is not MirrorDirection.PULL:
                continue
            for repository in rule.peer.list_repositories():
                if not rule.matches(repository):
                    continue
                for tag in rule.peer.list_tags(repository):
                    remote_digest = rule.peer.resolve(repository, tag)
                    try:
                        local_digest = self.local.resolve(repository, tag)
                    except RegistryError:
                        local_digest = None
                    if local_digest == remote_digest:
                        continue
                    image, pull_cost = rule.peer.pull_image(repository, tag, now=now)
                    cost += pull_cost + self.local.push_image(repository, tag, image)
                    self.stats["pull_syncs"] += 1
        return cost
