"""Pull-through proxy cache.

"A registry implementing proxy capabilities by means of transparently
forwarding and caching requests in a namespace to an upstream registry"
(§5.1.3).  The proxy absorbs the upstream's per-IP rate limit: hundreds
of compute nodes behind one NAT IP hit the cache instead of DockerHub.
"""

from __future__ import annotations

from repro.oci.image import OCIImage
from repro.registry.distribution import OCIDistributionRegistry, Transport


class PullThroughProxy:
    """A caching proxy in front of an upstream OCI registry."""

    def __init__(
        self,
        upstream: OCIDistributionRegistry,
        name: str = "proxy-cache",
        #: the single public IP the site's egress NAT presents upstream
        egress_ip: str = "198.51.100.1",
        #: LAN transport between compute nodes and the proxy — fast
        local_transport: Transport = Transport(latency=0.5e-3, bandwidth=5e9),
    ):
        self.upstream = upstream
        self.name = name
        self.egress_ip = egress_ip
        self.cache = OCIDistributionRegistry(name=f"{name}-store", transport=local_transport)
        self.stats = {"hits": 0, "misses": 0, "upstream_requests": 0, "upstream_bytes": 0}

    def pull_image(
        self,
        repository: str,
        tag: str,
        token: str | None = None,
        ip: str = "10.0.0.1",
        now: float = 0.0,
        have_digests=frozenset(),
    ) -> tuple[OCIImage, float]:
        """Pull through the cache; one upstream fetch per (repo, tag).

        Accepts the full :meth:`OCIDistributionRegistry.pull_image`
        surface so engines can point at a proxy transparently: ``ip`` is
        the client's LAN address (rate-limited against the *cache*, not
        upstream — the whole point of the proxy), while upstream only
        ever sees the site's single egress IP.  ``token`` is unused; the
        cache is anonymous on the LAN side.
        """
        try:
            self.cache.resolve(repository, tag)
            cached = True
        except Exception:
            cached = False
        cost = 0.0
        if not cached:
            self.stats["misses"] += 1
            self.stats["upstream_requests"] += 1
            image, upstream_cost = self.upstream.pull_image(
                repository, tag, ip=self.egress_ip, now=now
            )
            self.stats["upstream_bytes"] += image.compressed_size
            cost += upstream_cost
            self.cache.push_image(repository, tag, image)
        else:
            self.stats["hits"] += 1
        image, local_cost = self.cache.pull_image(
            repository, tag, ip=ip, now=now, have_digests=have_digests
        )
        return image, cost + local_cost

    @property
    def hit_rate(self) -> float:
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else 0.0
