"""Per-project storage quotas (Table 5's "Quota" column)."""

from __future__ import annotations


class QuotaExceeded(RuntimeError):
    def __init__(self, project: str, used: int, limit: int, requested: int):
        super().__init__(
            f"quota exceeded for project {project!r}: {used} + {requested} > {limit}"
        )
        self.project = project


class QuotaManager:
    """Tracks per-project byte budgets."""

    def __init__(self) -> None:
        self._limits: dict[str, int] = {}
        self._used: dict[str, int] = {}

    def set_limit(self, project: str, limit_bytes: int) -> None:
        self._limits[project] = limit_bytes

    def limit(self, project: str) -> int | None:
        return self._limits.get(project)

    def used(self, project: str) -> int:
        return self._used.get(project, 0)

    def charge(self, project: str, nbytes: int) -> None:
        limit = self._limits.get(project)
        used = self._used.get(project, 0)
        if limit is not None and used + nbytes > limit:
            raise QuotaExceeded(project, used, limit, nbytes)
        self._used[project] = used + nbytes

    def release(self, project: str, nbytes: int) -> None:
        self._used[project] = max(0, self._used.get(project, 0) - nbytes)
