"""Rate limiting, keyed by client IP.

"The most popular public OCI registry DockerHub introduced rate
limiting.  Any site with a small number of public IP addresses for a
large number of clients is quickly affected by this." (§5.1.3)

A sliding-window limiter over simulated time: HPC clusters NAT hundreds
of nodes behind one or two IPs, so they exhaust the per-IP budget almost
immediately — the behaviour the pull-through proxy bench reproduces.
"""

from __future__ import annotations

import collections


class RateLimitExceeded(RuntimeError):
    def __init__(self, ip: str, retry_after: float):
        super().__init__(f"rate limit exceeded for {ip}; retry after {retry_after:.0f}s")
        self.ip = ip
        self.retry_after = retry_after


class RateLimiter:
    """Sliding-window request limiter (DockerHub: 100 pulls / 6 h / IP)."""

    def __init__(self, max_requests: int = 100, window_seconds: float = 6 * 3600):
        if max_requests < 1:
            raise ValueError("max_requests must be >= 1")
        self.max_requests = max_requests
        self.window_seconds = window_seconds
        self._history: dict[str, collections.deque[float]] = collections.defaultdict(
            collections.deque
        )
        self.rejections = 0

    def check(self, ip: str, now: float) -> None:
        """Record one request at virtual time ``now``; raise when over."""
        history = self._history[ip]
        cutoff = now - self.window_seconds
        while history and history[0] <= cutoff:
            history.popleft()
        if len(history) >= self.max_requests:
            self.rejections += 1
            retry_after = history[0] + self.window_seconds - now
            raise RateLimitExceeded(ip, retry_after)
        history.append(now)

    def remaining(self, ip: str, now: float) -> int:
        history = self._history[ip]
        cutoff = now - self.window_seconds
        live = sum(1 for t in history if t > cutoff)
        return max(0, self.max_requests - live)
