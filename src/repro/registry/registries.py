"""The seven registry products of Tables 4 and 5.

Every trait in the paper's tables is represented either as *behaviour*
(proxying, mirroring, quotas, tenancy, signing, squashing, protocols —
all exercised by tests and benches) or as *literature metadata* (version,
champion, affiliation — facts about the real projects, marked as such).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.registry.auth import (
    AuthProvider,
    AuthService,
    InternalAuth,
    KerberosAuth,
    KeystoneAuth,
    LDAPAuth,
    OIDCAuth,
    PAMAuth,
    SAMLAuth,
    UAAAuth,
)
from repro.registry.distribution import OCIDistributionRegistry, RegistryError
from repro.registry.library_api import LibraryAPIRegistry
from repro.registry.mirror import MirrorDirection, MirrorRule, Replicator
from repro.registry.proxy import PullThroughProxy
from repro.registry.quota import QuotaManager

#: cosign signature artifacts attached next to images
COSIGN_MEDIA_TYPE = "application/vnd.dev.cosign.simplesigning.v1+json"
HELM_MEDIA_TYPE = "application/vnd.cncf.helm.chart.content.v1.tar+gzip"
ZSTD_LAYER_MEDIA_TYPE = "application/vnd.oci.image.layer.v1.tar+zstd"
NOTATION_MEDIA_TYPE = "application/vnd.cncf.notary.signature"
SIF_MEDIA_TYPE = "application/vnd.sylabs.sif.layer.v1.sif"


@dataclasses.dataclass(frozen=True)
class RegistryTraits:
    """Static facts from Tables 4/5 (literature metadata + feature flags)."""

    name: str
    version: str          # literature: release surveyed by the paper
    champion: str         # literature
    affiliation: str      # literature
    focus: str
    protocols: tuple[str, ...]            # "OCI v2", "OCI v1", "Library API"
    proxying: str                         # "auto", "manual", "none"
    mirroring: tuple[str, ...]            # subset of ("push", "pull", "manual")
    storage_backends: tuple[str, ...]
    auth_provider_names: tuple[str, ...]
    image_squashing: str                  # "on-demand" or "no"
    image_formats: tuple[str, ...]        # "OCI", "SIF"
    multi_tenancy: str                    # label ("Organization", "Project") or "no"
    quota: str                            # "per-project", "minimal", "no"
    signing: bool
    deployment: tuple[str, ...]
    build_integration: str

    @property
    def supports_oci(self) -> bool:
        return any(p.startswith("OCI") for p in self.protocols)

    @property
    def supports_library_api(self) -> bool:
        return "Library API" in self.protocols


_AUTH_CLASSES: dict[str, type[AuthProvider]] = {
    "internal": InternalAuth,
    "ldap": LDAPAuth,
    "oidc": OIDCAuth,
    "pam": PAMAuth,
    "kerberos": KerberosAuth,
    "saml": SAMLAuth,
    "uaa": UAAAuth,
    "keystone": KeystoneAuth,
}


class RegistryProduct:
    """A deployable registry product assembled from its traits."""

    traits: RegistryTraits
    #: extra artifact media types the product accepts
    artifact_media_types: frozenset[str] = frozenset()
    user_defined_artifacts: bool = False

    def __init__(self) -> None:
        providers = [_AUTH_CLASSES[n]() for n in self.traits.auth_provider_names
                     if n in _AUTH_CLASSES]
        self.auth = AuthService(providers) if providers else None
        self.quotas = QuotaManager() if self.traits.quota == "per-project" else None
        self.oci: OCIDistributionRegistry | None = None
        if self.traits.supports_oci:
            self.oci = OCIDistributionRegistry(
                name=self.traits.name,
                quotas=self.quotas,
                multi_tenant=self.traits.multi_tenancy != "no",
                extra_media_types=self.artifact_media_types,
                user_defined_artifacts=self.user_defined_artifacts,
                supports_squashing=self.traits.image_squashing == "on-demand",
            )
        self.library: LibraryAPIRegistry | None = None
        if self.traits.supports_library_api:
            self.library = LibraryAPIRegistry(name=f"{self.traits.name}-library")
        self.replicator = Replicator(self.oci) if self.oci else None

    # -- gated capabilities -----------------------------------------------------------
    def create_proxy(self, upstream: OCIDistributionRegistry) -> PullThroughProxy:
        if self.traits.proxying == "none":
            raise RegistryError(f"{self.traits.name} has no proxying support")
        if self.oci is None:
            raise RegistryError(f"{self.traits.name} cannot proxy without OCI support")
        return PullThroughProxy(upstream, name=f"{self.traits.name}-proxy")

    def add_mirror(self, direction: MirrorDirection, pattern: str,
                   peer: OCIDistributionRegistry) -> MirrorRule:
        if direction.value not in self.traits.mirroring:
            raise RegistryError(
                f"{self.traits.name} does not support {direction.value} mirroring"
            )
        assert self.replicator is not None
        rule = MirrorRule(direction, pattern, peer)
        self.replicator.add_rule(rule)
        return rule

    def attach_signature(self, repository: str, image_digest: str,
                         payload: object = None) -> None:
        if not self.traits.signing:
            raise RegistryError(f"{self.traits.name} cannot store signatures")
        if self.oci is not None:
            ref = f"sha256-{image_digest.split(':', 1)[1]}.sig"
            self.oci.push_artifact(repository, ref, COSIGN_MEDIA_TYPE, size=2048,
                                   payload=payload)
        # Library-API-only products store signatures inside the SIF itself.

    def get_signature(self, repository: str, image_digest: str) -> object:
        if self.oci is None:
            raise RegistryError(f"{self.traits.name} has no OCI artifact store")
        ref = f"sha256-{image_digest.split(':', 1)[1]}.sig"
        return self.oci.get_artifact(repository, ref).payload


class Quay(RegistryProduct):
    traits = RegistryTraits(
        name="quay", version="v3.8.10", champion="RedHat/IBM", affiliation="-",
        focus="Registry", protocols=("OCI v2",),
        proxying="auto", mirroring=("pull",),
        storage_backends=("fs", "s3", "gcs", "swift", "ceph"),
        auth_provider_names=("internal", "ldap", "keystone", "oidc"),
        image_squashing="on-demand", image_formats=("OCI",),
        multi_tenancy="Organization", quota="per-project", signing=True,
        deployment=("kubernetes-operator",),
        build_integration="build on Kubernetes, EC2",
    )
    artifact_media_types = frozenset({HELM_MEDIA_TYPE, COSIGN_MEDIA_TYPE, ZSTD_LAYER_MEDIA_TYPE})


class Harbor(RegistryProduct):
    traits = RegistryTraits(
        name="harbor", version="v2.8.3", champion="VMWare", affiliation="CNCF",
        focus="Registry", protocols=("OCI v2",),
        proxying="auto", mirroring=("push", "pull"),
        storage_backends=("fs", "azure", "gcs", "s3", "swift", "oss"),
        auth_provider_names=("internal", "ldap", "uaa", "oidc"),
        image_squashing="no", image_formats=("OCI",),
        multi_tenancy="Project", quota="per-project", signing=True,
        deployment=("docker-compose", "helm-chart"),
        build_integration="via CI/CD",
    )
    artifact_media_types = frozenset({HELM_MEDIA_TYPE, COSIGN_MEDIA_TYPE})
    user_defined_artifacts = True


class GitLabRegistry(RegistryProduct):
    traits = RegistryTraits(
        name="gitlab", version="v16.2", champion="GitLab", affiliation="-",
        focus="Git hosting, CI/CD", protocols=("OCI v2",),
        proxying="manual", mirroring=(),
        storage_backends=("fs", "azure", "gcs", "s3", "swift", "oss"),
        auth_provider_names=("ldap",),
        image_squashing="no", image_formats=("OCI",),
        multi_tenancy="Organization", quota="minimal", signing=False,
        deployment=("linux-packages", "helm-chart", "kubernetes-operator", "docker", "get"),
        build_integration="via CI/CD",
    )


class Gitea(RegistryProduct):
    traits = RegistryTraits(
        name="gitea", version="v1.20.2", champion="(OSS community)", affiliation="-",
        focus="Git hosting, CI/CD", protocols=("OCI v2",),
        proxying="none", mirroring=(),
        storage_backends=("fs", "minio-s3"),
        auth_provider_names=("internal", "ldap", "pam", "kerberos"),
        image_squashing="no", image_formats=("OCI",),
        multi_tenancy="no", quota="no", signing=False,
        deployment=("docker-compose", "binary", "helm-chart"),
        build_integration="via CI/CD",
    )
    artifact_media_types = frozenset({HELM_MEDIA_TYPE})


class Shpc(RegistryProduct):
    traits = RegistryTraits(
        name="shpc", version="v2.1.0", champion="vsoch", affiliation="LLNL",
        focus="Registry", protocols=("Library API",),
        proxying="none", mirroring=("manual",),
        storage_backends=("minio", "gcs", "s3"),
        auth_provider_names=("ldap", "pam", "saml"),
        image_squashing="no", image_formats=("SIF",),
        multi_tenancy="no", quota="no", signing=True,
        deployment=("docker-compose",),
        build_integration="build on GCC",
    )


class Hinkskalle(RegistryProduct):
    traits = RegistryTraits(
        name="hinkskalle", version="v4.6.0", champion="h3kker",
        affiliation="University of Vienna",
        focus="Registry", protocols=("Library API", "OCI v2"),
        proxying="none", mirroring=(),
        storage_backends=("fs",),
        auth_provider_names=("ldap",),
        image_squashing="no", image_formats=("SIF", "OCI"),
        multi_tenancy="no", quota="no", signing=True,
        deployment=("docker-compose",),
        build_integration="no",
    )


class Zot(RegistryProduct):
    traits = RegistryTraits(
        name="zot", version="v1.4.3", champion="Cisco", affiliation="CNCF",
        focus="Registry", protocols=("OCI v1",),
        proxying="none", mirroring=("pull",),
        storage_backends=("fs", "s3"),
        auth_provider_names=("internal", "ldap"),
        image_squashing="no", image_formats=("OCI",),
        multi_tenancy="no", quota="no", signing=True,
        deployment=("docker", "helm", "podman"),
        build_integration="via CI/CD",
    )
    artifact_media_types = frozenset({HELM_MEDIA_TYPE, COSIGN_MEDIA_TYPE, NOTATION_MEDIA_TYPE})


ALL_REGISTRIES: tuple[type[RegistryProduct], ...] = (
    Quay, Harbor, GitLabRegistry, Gitea, Shpc, Hinkskalle, Zot,
)
