"""Blob storage backends for registries.

Registries deduplicate layers by digest (content-addressable storage,
§3.1); the backend determines latency/bandwidth and which deployment
styles are possible (Table 4's "Storage Support" column).
"""

from __future__ import annotations

import dataclasses
import typing as _t


class StorageError(RuntimeError):
    pass


@dataclasses.dataclass
class StoredBlob:
    digest: str
    size: int
    media_type: str = "application/octet-stream"
    #: opaque payload (e.g. a Layer, SIFImage, or manifest JSON)
    payload: object = None
    ref_count: int = 0


class BlobStore:
    """Content-addressed blob store with per-op cost accounting."""

    name = "fs"
    #: seconds per request (metadata round trip)
    request_latency = 2e-3
    #: bytes/second streaming
    bandwidth = 1.0e9

    def __init__(self, capacity_bytes: float = float("inf")):
        self._blobs: dict[str, StoredBlob] = {}
        self.capacity_bytes = capacity_bytes
        self.stats = {"puts": 0, "gets": 0, "dedup_hits": 0, "bytes_stored": 0}

    # -- operations: each returns (result, cost_seconds) -------------------------
    def put(
        self, digest: str, size: int, payload: object = None, media_type: str = "application/octet-stream"
    ) -> float:
        """Store a blob; deduplicates on digest.  Returns the time cost."""
        self.stats["puts"] += 1
        existing = self._blobs.get(digest)
        if existing is not None:
            existing.ref_count += 1
            self.stats["dedup_hits"] += 1
            return self.request_latency  # existence check only
        if self.used_bytes + size > self.capacity_bytes:
            raise StorageError(
                f"store full: {self.used_bytes} + {size} > {self.capacity_bytes}"
            )
        self._blobs[digest] = StoredBlob(digest, size, media_type, payload, ref_count=1)
        self.stats["bytes_stored"] += size
        return self.request_latency + size / self.bandwidth

    def get(self, digest: str) -> tuple[StoredBlob, float]:
        self.stats["gets"] += 1
        blob = self._blobs.get(digest)
        if blob is None:
            raise StorageError(f"blob not found: {digest[:19]}")
        return blob, self.request_latency + blob.size / self.bandwidth

    def has(self, digest: str) -> bool:
        return digest in self._blobs

    def stat(self, digest: str) -> float:
        """Existence-check cost."""
        return self.request_latency

    def delete(self, digest: str) -> None:
        blob = self._blobs.get(digest)
        if blob is None:
            raise StorageError(f"blob not found: {digest[:19]}")
        blob.ref_count -= 1
        if blob.ref_count <= 0:
            del self._blobs[digest]

    @property
    def used_bytes(self) -> int:
        return sum(b.size for b in self._blobs.values())

    def __len__(self) -> int:
        return len(self._blobs)


class FSBlobStore(BlobStore):
    """Local/cluster filesystem-backed store."""

    name = "fs"
    request_latency = 1e-3
    bandwidth = 1.5e9


class S3BlobStore(BlobStore):
    """Object-storage backend: higher per-request latency, good streaming."""

    name = "s3"
    request_latency = 25e-3
    bandwidth = 0.8e9
