"""The five Kubernetes/WLM integration scenarios of §6, behind one
common interface so §6.6's comparison is apples-to-apples."""

from repro.scenarios.base import IntegrationScenario, ScenarioMetrics
from repro.scenarios.reallocation import OnDemandReallocationScenario
from repro.scenarios.wlm_in_k8s import WLMInKubernetesScenario
from repro.scenarios.k8s_in_wlm import KubernetesInWLMScenario
from repro.scenarios.bridge import BridgeOperatorScenario
from repro.scenarios.knoc import KNoCScenario
from repro.scenarios.kubelet_in_allocation import KubeletInAllocationScenario
from repro.scenarios.fleet_replay import (
    FleetReplayResult,
    FleetReplayScenario,
    run_fleet_replay,
)
from repro.scenarios.evaluate import ALL_SCENARIOS, evaluate_all, run_scenario

__all__ = [
    "ALL_SCENARIOS",
    "BridgeOperatorScenario",
    "FleetReplayResult",
    "FleetReplayScenario",
    "IntegrationScenario",
    "KNoCScenario",
    "KubeletInAllocationScenario",
    "KubernetesInWLMScenario",
    "OnDemandReallocationScenario",
    "ScenarioMetrics",
    "evaluate_all",
    "run_fleet_replay",
    "run_scenario",
]
