"""Common scenario interface and metrics.

Every scenario provisions its control plane, accepts the *same* pod
workload, and reports the dimensions §6.6 compares: provisioning and pod
startup latency, WLM accounting coverage, effective utilization,
workflow transparency, environment standardness, and isolation.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.cluster.node import HostNode
from repro.engines.podman import PodmanEngine
from repro.k8s.objects import Pod, PodPhase
from repro.kernel.config import KernelConfig
from repro.oci.builder import Builder
from repro.oci.catalog import BaseImageCatalog
from repro.registry.distribution import OCIDistributionRegistry
from repro.sim import Environment

#: image every scenario's pods run
WORKFLOW_IMAGE = "registry.site.local/pipelines/step:v1"

#: the recipe behind it — one definition so the scenario base and the
#: shard warm-snapshot build byte-identical images
WORKFLOW_DOCKERFILE = (
    "FROM alpine:3.18\nRUN write /srv/step 2000000\nENTRYPOINT /srv/step"
)


@dataclasses.dataclass
class ScenarioMetrics:
    scenario: str
    section: str
    provision_time: float
    pods_submitted: int
    pods_completed: int
    pod_startup_latencies: list[float]
    wlm_accounting_coverage: float
    effective_utilization: float
    workflow_transparency: bool
    standard_pod_environment: bool
    isolation: str
    makespan: float
    notes: list[str] = dataclasses.field(default_factory=list)

    @property
    def mean_pod_startup(self) -> float:
        lat = self.pod_startup_latencies
        return sum(lat) / len(lat) if lat else float("nan")

    def satisfies_section6_requirements(self) -> bool:
        """§6's three requirements: continuously-run cluster (fast pod
        submission without per-user cluster bootstrap), WLM accounting,
        and transparent pod scheduling."""
        return (
            self.wlm_accounting_coverage >= 0.99
            and self.workflow_transparency
            and self.pods_completed == self.pods_submitted
        )


class IntegrationScenario:
    """Base: builds the shared site (nodes, registry, image)."""

    name = "scenario"
    section = "§6"
    workflow_transparency = False
    standard_pod_environment = False
    isolation = "shared-cluster"

    def __init__(self, env: Environment, n_nodes: int = 4, seed: int = 0):
        self.env = env
        self.n_nodes = n_nodes
        self.hosts = [
            HostNode(name=f"nid{i:04}", kernel_config=KernelConfig.modern_hpc(), env=env)
            for i in range(n_nodes)
        ]
        self.engines = {h.name: PodmanEngine(h) for h in self.hosts}
        self.registry = OCIDistributionRegistry(name="site-registry")
        image = Builder(BaseImageCatalog()).build_dockerfile(WORKFLOW_DOCKERFILE)
        #: the built workflow image (the shard warm-snapshot replays this
        #: exact build to pre-seed the materialization caches)
        self.image = image
        self.registry.push_image("pipelines/step", "v1", image)
        self.provisioned_at: float | None = None
        self.pods: list[Pod] = []
        self.notes: list[str] = []

    # -- scenario API -----------------------------------------------------------
    def provision(self):
        """Start control planes; returns a sim Process that triggers when
        workload submission becomes possible."""
        raise NotImplementedError

    def submit(self, pods: _t.Sequence[Pod]) -> None:
        raise NotImplementedError

    # -- metric helpers ------------------------------------------------------------
    def _pod_cpu_seconds(self) -> float:
        total = 0.0
        for pod in self.pods:
            if pod.start_time is not None and pod.end_time is not None:
                total += (pod.end_time - pod.start_time) * pod.spec.total_requests().cpu
        return total

    def _accounted_cpu_seconds(self) -> float:
        """CPU seconds visible in WLM accounting attributable to the pod
        workload — scenario-specific."""
        return 0.0

    def _startup_latencies(self) -> list[float]:
        out = []
        for pod in self.pods:
            submitted = getattr(pod, "_submitted_at", None)
            if submitted is not None and pod.start_time is not None:
                out.append(pod.start_time - submitted)
        return out

    def metrics(self) -> ScenarioMetrics:
        completed = [p for p in self.pods if p.phase is PodPhase.SUCCEEDED]
        pod_cpu = self._pod_cpu_seconds()
        accounted = self._accounted_cpu_seconds()
        coverage = 0.0 if pod_cpu == 0 else min(1.0, accounted / pod_cpu)
        cores = self.hosts[0].cpu.cores
        elapsed = self.env.now
        capacity = self.n_nodes * cores * elapsed if elapsed > 0 else 1.0
        ends = [p.end_time for p in completed if p.end_time is not None]
        subs = [getattr(p, "_submitted_at", 0.0) for p in self.pods]
        makespan = (max(ends) - min(subs)) if ends and subs else float("nan")
        return ScenarioMetrics(
            scenario=self.name,
            section=self.section,
            provision_time=self.provisioned_at if self.provisioned_at is not None else float("nan"),
            pods_submitted=len(self.pods),
            pods_completed=len(completed),
            pod_startup_latencies=self._startup_latencies(),
            wlm_accounting_coverage=coverage,
            effective_utilization=pod_cpu / capacity,
            workflow_transparency=self.workflow_transparency,
            standard_pod_environment=self.standard_pod_environment,
            isolation=self.isolation,
            makespan=makespan,
            notes=list(self.notes),
        )
