"""§6.4 (first modality) — the Kubernetes 'Bridge' operator.

Kubernetes schedules *external* WLM resources through a custom resource:
full accounting, but "the drawback of this approach is the required
explicit formulation in the resource description" — users rewrite their
workflows from Pods into WLMJobRequests.
"""

from __future__ import annotations

import typing as _t

from repro.k8s.k3s import K3sServer
from repro.k8s.objects import ObjectMeta, Pod
from repro.k8s.operators import BridgeOperator, WLMJobRequest
from repro.scenarios.base import WORKFLOW_IMAGE, IntegrationScenario
from repro.sim import Environment
from repro.sim.signal import count_skipped_ticks, next_tick
from repro.wlm.slurm import SlurmController


class BridgeOperatorScenario(IntegrationScenario):
    name = "bridge-operator"
    section = "§6.4a"
    workflow_transparency = False   # explicit WLMJobRequest reformulation
    standard_pod_environment = False  # work runs as WLM jobs, not pods
    isolation = "wlm-job-per-request"

    def __init__(self, env: Environment, n_nodes: int = 4, seed: int = 0):
        super().__init__(env, n_nodes, seed)
        self.wlm = SlurmController(env, self.hosts)
        self.k8s = K3sServer(env)  # persistent service control plane
        self.operator: BridgeOperator | None = None
        self._requests: list[WLMJobRequest] = []

    def provision(self):
        def ready(env):
            yield self.k8s.ready
            self.operator = BridgeOperator(
                env, self.k8s.api, self.wlm, engines=self.engines, registry=self.registry
            )
            self.provisioned_at = env.now
            return env.now

        return self.env.process(ready(self.env), name="provision-6.4a")

    def submit(self, pods: _t.Sequence[Pod]) -> None:
        """The explicit-reformulation step the paper criticizes: each pod
        must be hand-translated into a WLMJobRequest by the user."""
        assert self.operator is not None, "provision first"
        for pod in pods:
            pod._submitted_at = self.env.now  # type: ignore[attr-defined]
            self.pods.append(pod)
            request = WLMJobRequest(
                metadata=ObjectMeta(name=f"req-{pod.metadata.name}"),
                nodes=1,
                user_uid=pod.spec.user_uid,
                duration=pod.spec.duration or 60.0,
                cores_per_node=int(pod.spec.total_requests().cpu) or 1,
                image=pod.spec.containers[0].image,
            )
            request._pod = pod  # type: ignore[attr-defined]
            self._requests.append(request)
            self.k8s.api.create(BridgeOperator.KIND, request)
            self.env.process(self._mirror_status(request, pod))

    def _mirror_status(self, request: WLMJobRequest, pod: Pod):
        """Reflect job progress back onto the pod record for comparison.

        Tickless: instead of polling the CRD and squeue on fixed grids,
        the mirror parks on the operator's `request_events` and the WLM's
        `job_state` signals.  The mirrored values are exact copies of job
        fields (never poll-tick times), so going event-driven changes no
        observable result — only the thousands of idle polls, tallied in
        ``poll_ticks_skipped`` against the grids the spinner would have
        walked.
        """
        from repro.k8s.objects import PodPhase

        assert self.operator is not None
        request_events = self.operator.request_events
        while request.wlm_job_id is None:
            token = request_events.park()
            yield token
            request_events.unpark(token)
        job = self.wlm.job(request.wlm_job_id)
        job_state = self.wlm.job_state
        epoch = self.env.now
        waited = False
        while job.start_time is None:
            waited = True
            token = job_state.park()
            yield token
            job_state.unpark(token)
        if waited:
            epoch, skipped = next_tick(epoch, 0.5, self.env.now)
            count_skipped_ticks(skipped + 1)
        pod.phase = PodPhase.RUNNING
        pod.start_time = job.start_time
        waited = False
        while not job.state.is_terminal:
            waited = True
            token = job_state.park()
            yield token
            job_state.unpark(token)
        if waited:
            _, skipped = next_tick(epoch, 1.0, self.env.now)
            count_skipped_ticks(skipped + 1)
        pod.end_time = job.end_time
        pod.phase = PodPhase.SUCCEEDED if job.exit_code == 0 else PodPhase.FAILED

    def _accounted_cpu_seconds(self) -> float:
        records = self.wlm.accounting.by_comment_prefix("bridge-operator:")
        return sum(r.cpu_seconds for r in records)
