"""Run every §6 scenario on an identical pod workload and compare —
the quantitative version of the paper's §6.6 summary."""

from __future__ import annotations

import typing as _t

from repro.scenarios.base import WORKFLOW_IMAGE, IntegrationScenario, ScenarioMetrics
from repro.scenarios.bridge import BridgeOperatorScenario
from repro.scenarios.k8s_in_wlm import KubernetesInWLMScenario
from repro.scenarios.knoc import KNoCScenario
from repro.scenarios.kubelet_in_allocation import KubeletInAllocationScenario
from repro.scenarios.reallocation import OnDemandReallocationScenario
from repro.scenarios.wlm_in_k8s import WLMInKubernetesScenario
from repro.sim import Environment
from repro.workload.generators import PodBatchGenerator

ALL_SCENARIOS: tuple[type[IntegrationScenario], ...] = (
    OnDemandReallocationScenario,
    WLMInKubernetesScenario,
    KubernetesInWLMScenario,
    BridgeOperatorScenario,
    KNoCScenario,
    KubeletInAllocationScenario,
)


def run_scenario(
    scenario_cls: type[IntegrationScenario],
    n_nodes: int = 4,
    n_pods: int = 8,
    seed: int = 0,
    horizon: float = 4000.0,
) -> ScenarioMetrics:
    """Provision, submit the standard pod batch, run to quiescence."""
    env = Environment()
    scenario = scenario_cls(env, n_nodes=n_nodes, seed=seed)
    ready = scenario.provision()
    env.run(until=ready)
    generator = PodBatchGenerator(WORKFLOW_IMAGE, seed=seed)
    pods = generator.batch(n_pods)
    scenario.submit(pods)
    env.run(until=horizon)
    if hasattr(scenario, "teardown"):
        scenario.teardown()
        env.run(until=horizon + 100)
    return scenario.metrics()


def evaluate_all(
    n_nodes: int = 4, n_pods: int = 8, seed: int = 0
) -> list[ScenarioMetrics]:
    return [run_scenario(cls, n_nodes=n_nodes, n_pods=n_pods, seed=seed)
            for cls in ALL_SCENARIOS]


def summary_rows(metrics: _t.Sequence[ScenarioMetrics]) -> list[dict[str, object]]:
    """Rows for the §6.6-style comparison table."""
    return [
        {
            "scenario": m.scenario,
            "section": m.section,
            "provision_s": round(m.provision_time, 1),
            "mean_pod_startup_s": round(m.mean_pod_startup, 2),
            "pods": f"{m.pods_completed}/{m.pods_submitted}",
            "wlm_accounting": round(m.wlm_accounting_coverage, 2),
            "transparent": m.workflow_transparency,
            "standard_env": m.standard_pod_environment,
            "isolation": m.isolation,
        }
        for m in metrics
    ]
