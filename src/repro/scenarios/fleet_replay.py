"""Fleet → scenario bridge: replay fleet traces through the §6.5 stack.

:mod:`repro.workload.fleet` models fleet-shape load (diurnal Poisson
arrivals, Zipf tenants and images) against an *abstracted* capacity and
cache model.  This module feeds the **same traces** — byte-identical
arrays from :func:`repro.workload.fleet.generate_shard_trace` — through
the real control plane instead: every start becomes a Pod created on
the apiserver, scheduled by :class:`~repro.k8s.scheduler.K8sScheduler`,
started by a rootless :class:`~repro.k8s.kubelet.Kubelet` inside a WLM
allocation, pulling its tenant's image through the engine and the site
registry.  That is the §6.5 architecture under §4's workload.

Shards are independent sub-clusters (the fleet's tenant partitions,
each with the shard's share of nodes and starts), executed as
:class:`~repro.shard.cells.FleetReplayCell` values by the shard runner
— ``--jobs N`` output is byte-identical to serial.

The churn path is pooled: a harvested (terminal) pod is deleted from
the apiserver and its record recycled for a later arrival — only the
:class:`~repro.k8s.objects.ObjectMeta` is fresh per logical pod — so a
100k-start replay holds O(live pods), not O(starts), objects.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from repro.k8s.objects import (
    ContainerSpec,
    ObjectMeta,
    Pod,
    PodPhase,
    PodSpec,
    ResourceRequests,
)
from repro.k8s.apiserver import WatchEvent, WatchEventType
from repro.obs import metrics as _metrics
from repro.obs import timeseries as _timeseries
from repro.scenarios.kubelet_in_allocation import KubeletInAllocationScenario
from repro.sim import Environment
from repro.workload.fleet import FleetConfig, ImageCatalog, generate_shard_trace


@dataclasses.dataclass
class FleetReplayShardResult:
    """One shard's replay outcome (plain picklable fields)."""

    shard: int
    nodes: int = 0
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: submission -> RUNNING latency, accumulated
    wait_sum: float = 0.0
    wait_max: float = 0.0
    #: per-allocation (steady-state) provision time of the shard cluster
    provision_time: float = 0.0
    #: first submission -> last pod end
    makespan: float = 0.0
    binds: int = 0
    unschedulable_events: int = 0
    pulls: int = 0
    coalesced_pulls: int = 0
    leaks: list[str] = dataclasses.field(default_factory=list)

    @property
    def mean_wait(self) -> float:
        started = self.completed + self.failed
        return self.wait_sum / started if started else 0.0


class FleetReplayScenario:
    """One fleet shard replayed through the real §6.5 control plane.

    Builds a :class:`KubeletInAllocationScenario` sized to the shard's
    node share, mirrors the shard's tenants' image catalogs into the
    site registry, then pumps the shard's arrival trace as timed Pod
    creations and harvests terminal pods back into the record pool.
    """

    name = "fleet-replay"
    section = "§6.5 under the §4 fleet workload"

    def __init__(self, env: Environment, config: FleetConfig, shard: int):
        self.env = env
        self.config = config
        self.shard = shard
        self.tenant_ids = config.shard_tenant_ids(shard)
        self.n_starts = config.shard_start_counts()[shard]
        n_nodes = max(1, config.shard_node_count(shard))
        self.scenario = KubeletInAllocationScenario(
            env, n_nodes=n_nodes, seed=config.seed, naive=config.naive
        )
        self.api = self.scenario.k3s.api
        self.trace = generate_shard_trace(
            config, shard, n_starts=self.n_starts, tenant_ids=self.tenant_ids
        )
        self.catalog = ImageCatalog.build(config.images)
        #: image refs by (local tenant index, image index)
        self._refs: list[list[str]] = []
        for gid in self.tenant_ids:
            refs = []
            for img in range(len(self.catalog)):
                repo = f"t{gid:05}/img{img:03}"
                self.scenario.registry.push_image(repo, "v1", self.catalog.images[img])
                refs.append(f"registry.site.local/{repo}:v1")
            self._refs.append(refs)
        # -- pooled pod records (recycled after harvest) -------------------
        self._free: list[Pod] = []
        self._live_uids: set[str] = set()
        self._seq = 0
        self._harvested = 0
        self._base = 0.0
        self._done = env.event()
        self.result = FleetReplayShardResult(shard=shard, nodes=n_nodes)

    # -- the run -------------------------------------------------------------
    def run(self) -> FleetReplayShardResult:
        env = self.env
        rec = _timeseries.recorder
        if rec.enabled:
            rec.add_probe(self._sample_timeseries)
            registry = _metrics.registry if _metrics.registry.enabled else None
            _timeseries.install_sampler(env, registry)
        ready = self.scenario.provision()
        env.run(until=ready)
        self.result.provision_time = self.scenario.steady_state_provision_time
        self._base = env.now
        # Harvest watch: unkeyed, so it sees every Pod event; the phase
        # check keeps it to one dict-free branch per event.
        self.api.watch("Pod", self._on_pod_event, replay_existing=False)
        if self.n_starts:
            env.process(self._pump(), name=f"replay-pump-{self.shard}")
            env.run(until=self._done)
        if self._harvested < self.n_starts:
            self.result.leaks.append(
                f"{self.n_starts - self._harvested} pods never reached a "
                "terminal phase"
            )
        self.scenario.teardown()
        env.run(until=env.now + 100.0)
        self._collect_stats()
        return self.result

    def _sample_timeseries(self, t: float) -> None:
        """Probe: per-shard replay state the registry never sees."""
        rec = _timeseries.recorder
        shard = f"s{self.shard}"
        res = self.result
        rec.record("replay.inflight", t, float(len(self._live_uids)), shard=shard)
        rec.record("replay.submitted_total", t, float(res.submitted), shard=shard)
        rec.record("replay.harvested_total", t, float(self._harvested), shard=shard)
        rec.record("replay.wait_max", t, res.wait_max, shard=shard)

    def _collect_stats(self) -> None:
        from repro.oci.runtime import ContainerState

        res = self.result
        lingering = 0
        for engine in self.scenario.engines.values():
            res.pulls += engine.stats["pulls"]
            res.coalesced_pulls += engine.stats["coalesced_pulls"]
            for container in engine.runtime.containers.values():
                if container.state not in (
                    ContainerState.STOPPED, ContainerState.DELETED
                ):
                    lingering += 1
        if lingering:
            res.leaks.append(f"{lingering} containers not terminal after teardown")
        scheduler = self.scenario.k3s.scheduler
        if scheduler is not None:
            res.binds = scheduler.stats["scheduled"]
            res.unschedulable_events = scheduler.stats["unschedulable_events"]
        res.wait_sum = round(res.wait_sum, 6)
        res.wait_max = round(res.wait_max, 6)
        res.provision_time = round(res.provision_time, 6)
        res.makespan = round(res.makespan, 6)

    # -- submission ----------------------------------------------------------
    def _pump(self):
        base = self._base
        for k in range(self.n_starts):
            at = base + self.trace.times[k]
            if at > self.env.now:
                yield self.env.timeout(at - self.env.now)
            self._submit_one(k)

    def _next_pod(self) -> Pod:
        if self._free:
            pod = self._free.pop()
            pod.phase = PodPhase.PENDING
            pod.node_name = None
            pod.start_time = None
            pod.end_time = None
            pod.message = ""
            pod.container_results = []
            return pod
        return Pod(
            metadata=ObjectMeta(name="replay-blank"),
            spec=PodSpec(containers=[ContainerSpec(name="main", image="")]),
        )

    def _submit_one(self, k: int) -> None:
        trace = self.trace
        pod = self._next_pod()
        self._seq += 1
        # A fresh ObjectMeta per logical pod: uid/resource-version draws
        # stay deterministic and recycled records can't alias in the
        # apiserver store.
        pod.metadata = ObjectMeta(name=f"r{self._seq:06}")
        cspec = pod.spec.containers[0]
        cspec.image = self._refs[trace.tenants_local[k]][trace.images[k]]
        cspec.resources = ResourceRequests(cpu=float(trace.cpus[k]))
        pod.spec.duration = trace.durations[k]
        pod.spec.user_uid = self.scenario.allocation_user
        pod.spec.node_selector["hpc.allocation"] = str(self.scenario.job.job_id)
        pod._submitted_at = self.env.now  # type: ignore[attr-defined]
        self._live_uids.add(pod.metadata.uid)
        self.result.submitted += 1
        self.api.create("Pod", pod)

    # -- harvest -------------------------------------------------------------
    def _on_pod_event(self, event: WatchEvent) -> None:
        if event.type is not WatchEventType.MODIFIED:
            return
        pod = event.obj
        if not isinstance(pod, Pod) or pod.phase not in (
            PodPhase.SUCCEEDED, PodPhase.FAILED
        ):
            return
        uid = pod.metadata.uid
        if uid not in self._live_uids:
            return
        self._live_uids.discard(uid)
        res = self.result
        if pod.phase is PodPhase.SUCCEEDED:
            res.completed += 1
        else:
            res.failed += 1
        submitted_at = getattr(pod, "_submitted_at", None)
        if submitted_at is not None and pod.start_time is not None:
            wait = pod.start_time - submitted_at
            res.wait_sum += wait
            if wait > res.wait_max:
                res.wait_max = wait
        end = pod.end_time if pod.end_time is not None else self.env.now
        if end - self._base > res.makespan:
            res.makespan = end - self._base
        # Retire the record: off the apiserver (the store stays O(live
        # pods)), back into the pool for a later arrival.
        self.api.delete("Pod", pod.metadata.name)
        self._free.append(pod)
        self._harvested += 1
        if self._harvested == self.n_starts and not self._done.triggered:
            self._done.succeed(self.env.now)


def run_replay_shard(
    config: FleetConfig, shard: int, plan_json: str | None = None
) -> FleetReplayShardResult:
    """Run one replay shard in a fresh environment (cell entry point).

    ``plan_json`` arms the plan's *pull-style* window events (registry
    outages/429/slow-blob hit the real engine pull path).  Push-style
    node crashes are dropped here: fleet ``fleet-node-NNNNN`` targets
    don't name the replay sub-cluster's WLM nodes, so delivering them
    would be a silent no-op pretending to be coverage.
    """
    from repro.faults.injector import injector as _faults
    from repro.faults.plan import PUSH_KINDS, FaultPlan

    env = Environment()
    plan = FaultPlan.from_json(plan_json) if plan_json else None
    if plan is not None:
        pull_plan = FaultPlan(
            [e for e in plan if e.kind not in PUSH_KINDS], seed=plan.seed
        )
        _faults.arm(pull_plan, env)
    try:
        return FleetReplayScenario(env, config, shard).run()
    finally:
        if plan is not None:
            _faults.disarm()


# -- fleet-level orchestration ------------------------------------------------

@dataclasses.dataclass
class FleetReplayResult:
    """Merged view over all shards."""

    config: FleetConfig
    shards: list[FleetReplayShardResult]

    @property
    def submitted(self) -> int:
        return sum(s.submitted for s in self.shards)

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.shards)

    @property
    def failed(self) -> int:
        return sum(s.failed for s in self.shards)

    @property
    def mean_wait(self) -> float:
        done = self.completed + self.failed
        return sum(s.wait_sum for s in self.shards) / done if done else 0.0

    @property
    def max_wait(self) -> float:
        return max((s.wait_max for s in self.shards), default=0.0)

    @property
    def makespan(self) -> float:
        return max((s.makespan for s in self.shards), default=0.0)

    @property
    def pulls(self) -> int:
        return sum(s.pulls for s in self.shards)

    @property
    def coalesced_pulls(self) -> int:
        return sum(s.coalesced_pulls for s in self.shards)

    @property
    def binds(self) -> int:
        return sum(s.binds for s in self.shards)

    @property
    def leaks(self) -> list[str]:
        out: list[str] = []
        for s in self.shards:
            out.extend(f"shard {s.shard}: {leak}" for leak in s.leaks)
        return out


def replay_cells(config: FleetConfig, plan=None) -> list:
    from repro.shard.cells import FleetReplayCell

    text = config.to_json()
    plan_json = plan.to_json(indent=None) if plan is not None else None
    return [
        FleetReplayCell(config_json=text, shard=shard, plan_json=plan_json)
        for shard in range(config.effective_shards)
    ]


def run_fleet_replay(
    config: FleetConfig,
    jobs: int = 1,
    metrics: bool = False,
    sample_interval: float | None = None,
    plan=None,
) -> FleetReplayResult:
    """Run every shard through the shard runner and merge.  ``plan``
    delivers a fault plan's pull windows (see :func:`run_replay_shard`)."""
    from repro.shard import ObsConfig, run_cells

    result = run_cells(
        replay_cells(config, plan=plan),
        jobs=jobs,
        obs=ObsConfig(metrics=metrics, timeseries=sample_interval),
    )
    return FleetReplayResult(config=config, shards=result.values())


# -- reporting ----------------------------------------------------------------

def replay_report_document(result: FleetReplayResult) -> dict:
    """JSON document (schema ``repro-fleet-replay-report/1``)."""
    return {
        "schema": "repro-fleet-replay-report/1",
        "config": json.loads(result.config.to_json()),
        "totals": {
            "submitted": result.submitted,
            "completed": result.completed,
            "failed": result.failed,
            "mean_wait_s": round(result.mean_wait, 6),
            "max_wait_s": round(result.max_wait, 6),
            "makespan_s": round(result.makespan, 6),
            "binds": result.binds,
            "pulls": result.pulls,
            "coalesced_pulls": result.coalesced_pulls,
        },
        "shards": [
            {
                "shard": s.shard,
                "nodes": s.nodes,
                "submitted": s.submitted,
                "completed": s.completed,
                "failed": s.failed,
                "mean_wait_s": round(s.mean_wait, 6),
                "max_wait_s": s.wait_max,
                "provision_s": s.provision_time,
                "makespan_s": s.makespan,
                "binds": s.binds,
                "unschedulable_events": s.unschedulable_events,
                "pulls": s.pulls,
                "coalesced_pulls": s.coalesced_pulls,
            }
            for s in result.shards
        ],
        "leaks": result.leaks,
    }


def render_replay_summary(result: FleetReplayResult) -> str:
    config = result.config
    lines = [
        "fleet replay — §6.5 stack under the §4 fleet workload",
        f"  config:     {config.tenants} tenants, {config.nodes} nodes, "
        f"{config.starts} starts, {config.effective_shards} shards"
        f"{', naive' if config.naive else ''}",
        f"  pods:       {result.completed}/{result.submitted} completed"
        + (f", {result.failed} failed" if result.failed else ""),
        f"  wait:       mean {result.mean_wait:.3f}s, max {result.max_wait:.3f}s",
        f"  makespan:   {result.makespan:.1f}s",
        f"  pulls:      {result.pulls} ({result.coalesced_pulls} coalesced), "
        f"{result.binds} binds",
    ]
    if result.leaks:
        lines.append(f"  LEAKS:      {len(result.leaks)}")
        lines.extend(f"    - {leak}" for leak in result.leaks)
    else:
        lines.append("  leaks:      none")
    return "\n".join(lines)
