"""§6.3 — Kubernetes in WLM.

The user's job allocation bootstraps an entire private Kubernetes: K3s
server on the first node, rootless kubelets on the rest.  Perfect
per-user isolation and full WLM accounting — but "it can introduce
considerable startup overhead.  Until the Kubernetes cluster is ready,
scheduling Pods or running workflows is not possible", and the workflow
must be changed to bootstrap the cluster first.
"""

from __future__ import annotations

import typing as _t

from repro.k8s.cri import CRIRuntime
from repro.k8s.k3s import K3sServer
from repro.k8s.kubelet import Kubelet
from repro.k8s.objects import Pod, ResourceRequests
from repro.scenarios.base import IntegrationScenario
from repro.sim import Environment
from repro.wlm.jobs import JobSpec
from repro.wlm.slurm import SlurmController


class KubernetesInWLMScenario(IntegrationScenario):
    name = "kubernetes-in-wlm"
    section = "§6.3"
    workflow_transparency = False    # user must bootstrap a cluster first
    standard_pod_environment = True  # mainline K3s once it is up
    isolation = "per-user-cluster"

    def __init__(self, env: Environment, n_nodes: int = 4, seed: int = 0):
        super().__init__(env, n_nodes, seed)
        self.wlm = SlurmController(env, self.hosts)
        self.k3s: K3sServer | None = None
        self.kubelets: list[Kubelet] = []
        self.job = None
        self._cluster_ready = env.event()

    def provision(self):
        """Submit the cluster-bootstrap job and wait for K3s + kubelets."""
        spec = JobSpec(
            name="k8s-cluster",
            user_uid=1000,
            nodes=self.n_nodes,
            duration=None,  # holds the allocation until cancelled
            time_limit=24 * 3600,
            on_start=self._node_up,
        )
        self.job = self.wlm.submit(spec)
        return self.env.process(self._wait_ready(), name="provision-6.3")

    def _node_up(self, node, job, user_proc) -> None:
        first = node.name == job.allocated_nodes[0]
        if first:
            # K3s server starts on the head node of the allocation.
            self.k3s = K3sServer(self.env)
            self.env.process(self._join_agents(job), name="join-agents")

    def _join_agents(self, job):
        assert self.k3s is not None
        yield self.k3s.ready
        for name in job.allocated_nodes:
            host = next(h for h in self.hosts if h.name == name)
            user_proc = job.node_procs[name]
            cg_path = f"/slurm/uid_{job.spec.user_uid}/job_{job.job_id}"
            cri = CRIRuntime(self.engines[name], self.registry)
            kubelet = Kubelet(
                self.env, self.k3s.api, name, cri,
                capacity=ResourceRequests(cpu=host.cpu.cores, memory=256 * 2**30),
                user_proc=user_proc,
                cgroup_path=cg_path,
            )
            kubelet.start()
            self.kubelets.append(kubelet)
        yield self.env.timeout(Kubelet.startup_cost + 1.0)
        self._cluster_ready.succeed(self.env.now)

    def _wait_ready(self):
        yield self._cluster_ready
        self.provisioned_at = self.env.now
        self.notes.append(
            f"private cluster bootstrap inside the allocation took "
            f"{self.provisioned_at:.1f}s of allocated (billed!) node time"
        )
        return self.env.now

    def submit(self, pods: _t.Sequence[Pod]) -> None:
        assert self.k3s is not None, "provision first"
        for pod in pods:
            pod._submitted_at = self.env.now  # type: ignore[attr-defined]
            self.pods.append(pod)
            self.k3s.api.create("Pod", pod)

    def teardown(self) -> None:
        for kubelet in self.kubelets:
            kubelet.stop()
        if self.job is not None:
            self.wlm.cancel(self.job)

    def _accounted_cpu_seconds(self) -> float:
        """The hosting job covers all pod work (and more: the whole
        allocation is billed, idle or not)."""
        if self.job is None:
            return 0.0
        if self.job.end_time is not None:
            records = [r for r in self.wlm.accounting.all() if r.job_id == self.job.job_id]
            return sum(r.cpu_seconds for r in records)
        # still running: bill so far
        if self.job.start_time is None:
            return 0.0
        cores = self.hosts[0].cpu.cores
        return (self.env.now - self.job.start_time) * cores * self.n_nodes
