"""§6.4 (second modality) — KNoC: a virtual kubelet over the WLM.

"A more elegant approach": a service impersonates a kubelet, translating
bound pods into WLM jobs that start containers inside allocations —
"almost transparent ... to the user of the Kubernetes cluster and to the
operators of the HPC cluster".
"""

from __future__ import annotations

import typing as _t

from repro.k8s.k3s import K3sServer
from repro.k8s.objects import Pod
from repro.k8s.virtual_kubelet import VirtualKubelet
from repro.scenarios.base import IntegrationScenario
from repro.sim import Environment
from repro.wlm.slurm import SlurmController


class KNoCScenario(IntegrationScenario):
    name = "knoc-virtual-kubelet"
    section = "§6.4b"
    workflow_transparency = True       # plain pods, unchanged workflows
    standard_pod_environment = False   # virtual kubelet, not mainline
    isolation = "wlm-job-per-pod"

    def __init__(self, env: Environment, n_nodes: int = 4, seed: int = 0):
        super().__init__(env, n_nodes, seed)
        self.wlm = SlurmController(env, self.hosts)
        self.k8s = K3sServer(env)
        self.vk = VirtualKubelet(env, self.k8s.api, self.wlm, self.engines, self.registry)

    def provision(self):
        def ready(env):
            yield self.k8s.ready
            yield self.vk.start()
            self.provisioned_at = env.now
            return env.now

        return self.env.process(ready(self.env), name="provision-6.4b")

    def submit(self, pods: _t.Sequence[Pod]) -> None:
        for pod in pods:
            pod._submitted_at = self.env.now  # type: ignore[attr-defined]
            self.pods.append(pod)
            self.k8s.api.create("Pod", pod)

    def _accounted_cpu_seconds(self) -> float:
        records = self.wlm.accounting.by_comment_prefix("kubernetes-pod:")
        return sum(r.cpu_seconds for r in records)
