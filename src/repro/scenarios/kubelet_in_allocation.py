"""§6.5 — Kubernetes agents (kubelets) in a WLM allocation: the paper's
proposed approach and the proof of concept of Figure 1.

A *continuously running* K3s control plane lives on a service node;
user allocations start rootless kubelets (one per node) that join back
over the high-speed network.  Pods are scheduled onto the allocation's
nodes via a node selector, "so as to use Slurm's accounting and compute
resources", with "a fully mainline K3s, and therefore a standard
environment for Pods to run".
"""

from __future__ import annotations

import typing as _t

from repro.cluster.network import Interconnect
from repro.k8s.cri import CRIRuntime
from repro.k8s.k3s import K3sServer
from repro.k8s.kubelet import Kubelet
from repro.k8s.objects import Pod, ResourceRequests
from repro.scenarios.base import IntegrationScenario
from repro.sim import Environment
from repro.wlm.jobs import JobSpec
from repro.wlm.slurm import SlurmController


class KubeletInAllocationScenario(IntegrationScenario):
    name = "kubelet-in-allocation"
    section = "§6.5"
    workflow_transparency = True      # plain pods onto the standing cluster
    standard_pod_environment = True   # mainline K3s kubelets
    isolation = "per-allocation nodes, shared control plane"

    def __init__(self, env: Environment, n_nodes: int = 4, seed: int = 0,
                 allocation_user: int = 1000,
                 allocation_time_limit: float = 24 * 3600,
                 naive: bool = False):
        super().__init__(env, n_nodes, seed)
        self.allocation_time_limit = allocation_time_limit
        #: ``naive=True`` retains the pre-optimization linear-scan
        #: scheduler/kubelet paths — the oracle the indexed control
        #: plane is held byte-identical to
        self.naive = naive
        self.wlm = SlurmController(env, self.hosts, indexed=not naive)
        #: the standing control plane on a service node (outside compute)
        self.k3s = K3sServer(env, indexed=not naive)
        #: Slingshot interconnect carrying kubelet <-> server traffic (Fig. 1)
        self.network = Interconnect(self.hosts[0].nic)
        self.allocation_user = allocation_user
        self.kubelets: list[Kubelet] = []
        #: agents stopped by a requeue, kept visible for leak checks
        self.retired_kubelets: list[Kubelet] = []
        self.job = None
        self._agents_ready = env.event()
        self._joined = 0

    def provision(self):
        return self.env.process(self._provision(), name="provision-6.5")

    def _provision(self):
        # The control plane is a standing service: in steady state it is
        # already up; we still count its one-time start here, but also
        # record the steady-state (per-allocation) provision time, which
        # is what a user actually waits for — contrast §6.3 where every
        # workflow pays the full cluster bootstrap.
        yield self.k3s.ready
        self._control_plane_ready_at = self.env.now
        spec = JobSpec(
            name="k8s-agents",
            user_uid=self.allocation_user,
            nodes=self.n_nodes,
            duration=None,
            time_limit=self.allocation_time_limit,
            on_start=self._start_agent,
            on_requeue=self._on_requeue,
        )
        self.job = self.wlm.submit(spec)
        yield self._agents_ready
        self.provisioned_at = self.env.now
        self.steady_state_provision_time = self.env.now - self._control_plane_ready_at
        self.notes.append(
            f"steady-state (standing control plane) provision: "
            f"{self.steady_state_provision_time:.1f}s per allocation"
        )
        return self.env.now

    def _start_agent(self, node, job, user_proc) -> None:
        host = node.host
        cg_path = f"/slurm/uid_{job.spec.user_uid}/job_{job.job_id}"
        cri = CRIRuntime(self.engines[node.name], self.registry)
        kubelet = Kubelet(
            self.env,
            self.k3s.api,
            node.name,
            cri,
            capacity=ResourceRequests(cpu=host.cpu.cores, memory=256 * 2**30),
            labels={
                "hpc.allocation": str(job.job_id),
                "hpc.user": str(job.spec.user_uid),
            },
            network=self.network,
            user_proc=user_proc,
            cgroup_path=cg_path,
            naive=self.naive,
        )
        kubelet.start()
        self.kubelets.append(kubelet)
        self.env.process(self._count_join(), name=f"join-{node.name}")

    def _on_requeue(self, job) -> None:
        """The agents' service job lost a node and is being requeued.

        Kubelets on the *surviving* nodes must stop too — the allocation
        (cgroups, user processes) that hosts them is going away — with
        their active pods evicted back to FAILED.  The crashed node's
        kubelet already died via its own ``"wlm.node"`` handler, so
        stopping it again is a no-op.  Fresh agents come up through
        ``on_start`` when the job lands on its next allocation.
        """
        for kubelet in self.kubelets:
            kubelet.evict_active_pods(reason="allocation lost (node failure)")
            kubelet.stop()
        self.retired_kubelets.extend(self.kubelets)
        self.kubelets.clear()
        self._joined = 0

    def _count_join(self):
        yield self.env.timeout(Kubelet.startup_cost + 0.5)
        self._joined += 1
        if self._joined == self.n_nodes and not self._agents_ready.triggered:
            self._agents_ready.succeed(self.env.now)

    def submit(self, pods: _t.Sequence[Pod]) -> None:
        assert self.job is not None, "provision first"
        for pod in pods:
            # Pods target the allocation transparently via the selector the
            # admission layer injects (no change to the pod the user wrote).
            pod.spec.node_selector.setdefault("hpc.allocation", str(self.job.job_id))
            pod.spec.user_uid = self.allocation_user
            pod._submitted_at = self.env.now  # type: ignore[attr-defined]
            self.pods.append(pod)
            self.k3s.api.create("Pod", pod)

    def teardown(self) -> None:
        for kubelet in self.kubelets:
            kubelet.stop()
        if self.job is not None:
            self.wlm.cancel(self.job)

    def _accounted_cpu_seconds(self) -> float:
        if self.job is None or self.job.start_time is None:
            return 0.0
        cores = self.hosts[0].cpu.cores
        end = self.job.end_time if self.job.end_time is not None else self.env.now
        return (end - self.job.start_time) * cores * self.n_nodes
