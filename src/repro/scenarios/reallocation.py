"""§6.1 — On-demand reallocation of compute nodes.

A minimal dedicated Kubernetes cluster on separate hardware; when pods
arrive, WLM nodes are drained, reconfigured (minutes!), and joined to
Kubernetes as ephemeral nodes; idle nodes are returned.  Accounting for
pod work never reaches the WLM, and reconfiguration churn eats capacity
(§6.6: "dynamic partitioning ... is cumbersome, slow and introduces
disturbances").
"""

from __future__ import annotations

import math
import typing as _t

from repro.k8s.apiserver import APIServer
from repro.k8s.cri import CRIRuntime
from repro.k8s.k3s import FullK8sServer
from repro.k8s.kubelet import Kubelet
from repro.k8s.objects import Pod, PodPhase, ResourceRequests
from repro.scenarios.base import WORKFLOW_IMAGE, IntegrationScenario
from repro.sim import Environment, Signal
from repro.sim.signal import count_skipped_ticks
from repro.wlm.slurm import SlurmController


class OnDemandReallocationScenario(IntegrationScenario):
    name = "on-demand-reallocation"
    section = "§6.1"
    workflow_transparency = True      # users submit plain pods
    standard_pod_environment = True   # mainline kubelets on real nodes
    isolation = "shared-cluster"

    #: cost of taking a node out of the WLM and reconfiguring it as a
    #: Kubernetes node (reboot/reprovision + join)
    reconfigure_cost = 90.0
    #: idle timeout before an ephemeral node is returned to the WLM
    return_after_idle = 60.0

    def __init__(self, env: Environment, n_nodes: int = 4, seed: int = 0):
        super().__init__(env, n_nodes, seed)
        self.wlm = SlurmController(env, self.hosts)
        self.k8s = FullK8sServer(env)  # dedicated control-plane hardware
        self.kubelets: dict[str, Kubelet] = {}
        self._provision_proc = None

    def provision(self):
        def ready(env):
            yield self.k8s.ready
            self.provisioned_at = env.now
            return env.now

        self._provision_proc = self.env.process(ready(self.env), name="provision-6.1")
        return self._provision_proc

    def submit(self, pods: _t.Sequence[Pod]) -> None:
        for pod in pods:
            pod._submitted_at = self.env.now  # type: ignore[attr-defined]
            self.pods.append(pod)
        self.env.process(self._reallocate_and_run(list(pods)), name="reallocate")

    def _nodes_needed(self, pods: list[Pod]) -> int:
        cores = self.hosts[0].cpu.cores
        demand = sum(p.spec.total_requests().cpu for p in pods)
        return min(self.n_nodes, max(1, math.ceil(demand / cores)))

    def _reallocate_and_run(self, pods: list[Pod]):
        needed = self._nodes_needed(pods)
        victims = [n for n in self.wlm.nodes if not n.allocations][:needed]
        if len(victims) < needed:
            self.notes.append("insufficient idle nodes; pods waited for drains")
        names = [n.name for n in victims]
        self.wlm.drain_nodes(names, reason="kubernetes reallocation")
        # Reconfiguration is the expensive part (per node, parallel).
        yield self.env.timeout(self.reconfigure_cost)
        for node in victims:
            cri = CRIRuntime(self.engines[node.name], self.registry)
            kubelet = Kubelet(
                self.env,
                self.k8s.api,
                node.name,
                cri,
                capacity=ResourceRequests(cpu=node.total_cores, memory=256 * 2**30),
            )
            kubelet.start()
            self.kubelets[node.name] = kubelet
        for pod in pods:
            self.k8s.api.create("Pod", pod)
        self.env.process(self._return_nodes_when_idle(names), name="return-nodes")

    def _return_nodes_when_idle(self, names: list[str]):
        # Tickless: park on pod watch events instead of the 10 s poll,
        # then resume at the grid tick the poll would have noticed the
        # last completion (>= now: pod-finish events carry older sequence
        # numbers than a same-time poll tick, so the poll saw them).
        epoch = self.env.now
        signal = Signal(self.env)
        watch_cb = self.k8s.api.watch_signal("Pod", signal)
        while not all(
            p.phase in (PodPhase.SUCCEEDED, PodPhase.FAILED) for p in self.pods
        ):
            token = signal.park()
            yield token
            signal.unpark(token)
        self.k8s.api.unwatch("Pod", watch_cb)
        tick = epoch + 10.0
        skipped = 0
        while tick < self.env.now:
            tick += 10.0
            skipped += 1
        count_skipped_ticks(skipped)
        yield self.env.timeout_until(tick)
        yield self.env.timeout(self.return_after_idle)
        for name in names:
            kubelet = self.kubelets.pop(name, None)
            if kubelet is not None:
                kubelet.stop()
        # Reconfigure back into the WLM (same churn in reverse).
        yield self.env.timeout(self.reconfigure_cost)
        self.wlm.resume_nodes(names)
        self.notes.append(
            f"{len(names)} nodes spent 2x{self.reconfigure_cost:.0f}s reconfiguring "
            f"+ {self.return_after_idle:.0f}s idle-drain: capacity lost to churn"
        )

    def _accounted_cpu_seconds(self) -> float:
        # Kubernetes pods never appear in Slurm accounting here.
        return 0.0
