"""§6.2 — WLM in Kubernetes.

Kubernetes owns the hardware; Slurm's daemons run as privileged pods on
every node, so classic HPC jobs keep working.  But "this approach does
not enable running containerized workloads within the WLM": user pods
run beside Slurm on the Kubernetes layer, invisible to WLM accounting,
and the extra layer costs performance.
"""

from __future__ import annotations

import typing as _t

from repro.k8s.cri import CRIRuntime
from repro.k8s.k3s import FullK8sServer
from repro.k8s.kubelet import Kubelet
from repro.k8s.objects import (
    ContainerSpec,
    ObjectMeta,
    Pod,
    PodSpec,
    ResourceRequests,
)
from repro.scenarios.base import IntegrationScenario
from repro.sim import Environment
from repro.wlm.jobs import JobSpec
from repro.wlm.slurm import SlurmController


class WLMInKubernetesScenario(IntegrationScenario):
    name = "wlm-in-kubernetes"
    section = "§6.2"
    workflow_transparency = True       # pods are plain pods...
    standard_pod_environment = True    # ...on mainline kubelets
    isolation = "shared-cluster (privileged WLM pods beside tenants!)"

    #: reserved per node by the slurmd pod + kubelet overhead — the layer tax
    wlm_pod_cores = 2.0

    def __init__(self, env: Environment, n_nodes: int = 4, seed: int = 0):
        super().__init__(env, n_nodes, seed)
        self.k8s = FullK8sServer(env)
        self.kubelets: dict[str, Kubelet] = {}
        self.wlm: SlurmController | None = None

    def provision(self):
        return self.env.process(self._provision(), name="provision-6.2")

    def _provision(self):
        yield self.k8s.ready
        # kubelets on every node (root, standard cloud deployment)
        for host in self.hosts:
            cri = CRIRuntime(self.engines[host.name], self.registry)
            kubelet = Kubelet(
                self.env, self.k8s.api, host.name, cri,
                capacity=ResourceRequests(
                    cpu=host.cpu.cores - self.wlm_pod_cores, memory=256 * 2**30
                ),
            )
            kubelet.start()
            self.kubelets[host.name] = kubelet
        yield self.env.timeout(Kubelet.startup_cost + 1.0)
        # Slurm daemons as privileged pods (one slurmd per node + slurmctld).
        for i, host in enumerate(self.hosts):
            pod = Pod(
                metadata=ObjectMeta(name=f"slurmd-{host.name}", namespace="wlm-system"),
                spec=PodSpec(
                    containers=[ContainerSpec(
                        name="slurmd",
                        image="registry.site.local/pipelines/step:v1",
                        resources=ResourceRequests(cpu=self.wlm_pod_cores),
                    )],
                    node_selector={},
                    duration=None,  # service pods
                ),
            )
            self.k8s.api.create("Pod", pod)
        yield self.env.timeout(5.0)
        # The WLM is now functional over the same hardware (privileged pods).
        self.wlm = SlurmController(self.env, self.hosts)
        self.notes.append(
            "WLM daemons run as privileged pods: multi-tenancy requires great "
            "care (§6.2); an extra layer sits under every HPC job"
        )
        self.provisioned_at = self.env.now
        return self.env.now

    # -- workload -----------------------------------------------------------------
    def submit(self, pods: _t.Sequence[Pod]) -> None:
        # Containerized workloads CANNOT go through the WLM here; they run
        # directly on Kubernetes, bypassing accounting.
        for pod in pods:
            pod._submitted_at = self.env.now  # type: ignore[attr-defined]
            self.pods.append(pod)
            self.k8s.api.create("Pod", pod)

    def submit_hpc_job(self, spec: JobSpec):
        """Classic HPC jobs still work — through the WLM layer."""
        assert self.wlm is not None, "provision first"
        return self.wlm.submit(spec)

    def _accounted_cpu_seconds(self) -> float:
        # Pod workload bypasses the WLM entirely.
        return 0.0
