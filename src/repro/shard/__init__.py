"""Sharded, deterministic parallel simulation execution.

Partitions scenario matrices and chaos seed sweeps into independent
(scenario, config, seed) cells, runs them across N worker processes,
and merges the outputs into artifacts byte-identical to a serial run.
See :mod:`repro.shard.state` for the world-state/determinism model,
:mod:`repro.shard.cells` for the work units, and
:mod:`repro.shard.runner` for the execution/merge engine.
"""

from repro.shard.cells import (
    ChaosCell,
    FleetCell,
    ScenarioCell,
    chaos_seed_sweep,
    parse_seed_range,
    resolve_scenario,
    scenario_matrix,
    scenario_table,
)
from repro.shard.runner import (
    CellResult,
    ObsConfig,
    ShardResult,
    default_start_method,
    merge_profiles,
    run_cells,
)
from repro.shard.state import COUNTER_SITES, WarmSnapshot, WorldState, warm_scenario_prefix

__all__ = [
    "COUNTER_SITES",
    "CellResult",
    "ChaosCell",
    "FleetCell",
    "ObsConfig",
    "ScenarioCell",
    "ShardResult",
    "WarmSnapshot",
    "WorldState",
    "chaos_seed_sweep",
    "default_start_method",
    "merge_profiles",
    "parse_seed_range",
    "resolve_scenario",
    "run_cells",
    "scenario_matrix",
    "scenario_table",
    "warm_scenario_prefix",
]
