"""Matrix cells: the independent units the shard runner executes.

A *cell* is one (scenario, config, seed) point of a scenario matrix or
chaos seed sweep — fully described by plain picklable fields (scenario
*name*, ints, a fault-plan JSON string), resolved to live objects only
inside the process that runs it.  Cells carry no environment, registry
or tree references, so the same cell value works in-process (``--jobs
1``) and across a ``multiprocessing`` pool (``--jobs N``).
"""

from __future__ import annotations

import dataclasses
import typing as _t


def scenario_table() -> dict[str, type]:
    """Scenario lookup accepting both hyphen and underscore spellings."""
    from repro.scenarios.evaluate import ALL_SCENARIOS

    table: dict[str, type] = {}
    for cls in ALL_SCENARIOS:
        table[cls.name] = cls
        table[cls.name.replace("-", "_")] = cls
    return table


def resolve_scenario(name: str) -> type:
    cls = scenario_table().get(name)
    if cls is None:
        known = ", ".join(sorted({c.name for c in scenario_table().values()}))
        raise KeyError(f"unknown scenario {name!r}; one of: {known}")
    return cls


def parse_seed_range(spec: str) -> list[int]:
    """``"A..B"`` (inclusive) or a single ``"N"`` -> list of seeds."""
    text = spec.strip()
    if ".." in text:
        lo_text, _, hi_text = text.partition("..")
        lo, hi = int(lo_text), int(hi_text)
        if hi < lo:
            raise ValueError(f"empty seed range {spec!r} (end before start)")
        return list(range(lo, hi + 1))
    return [int(text)]


@dataclasses.dataclass(frozen=True)
class ScenarioCell:
    """One §6.6 matrix point: a scenario run on the standard workload."""

    scenario: str
    n_nodes: int = 4
    n_pods: int = 8
    seed: int = 0
    horizon: float = 4000.0

    @property
    def label(self) -> str:
        return self.scenario

    def run(self) -> object:
        from repro.scenarios.evaluate import run_scenario

        return run_scenario(
            resolve_scenario(self.scenario),
            n_nodes=self.n_nodes,
            n_pods=self.n_pods,
            seed=self.seed,
            horizon=self.horizon,
        )


@dataclasses.dataclass(frozen=True)
class ChaosCell:
    """One chaos sweep point: a scenario run under a seeded fault plan.

    ``plan_json`` pins an explicit plan (the ``--faults`` file case);
    otherwise the plan is generated deterministically from ``seed`` in
    whichever process runs the cell.
    """

    scenario: str
    seed: int
    n_nodes: int = 4
    n_pods: int = 8
    horizon: float = 4000.0
    plan_json: str | None = None
    plan_horizon: float = 600.0

    @property
    def label(self) -> str:
        return f"seed={self.seed}"

    def plan(self):
        from repro.faults.plan import FaultPlan

        if self.plan_json is not None:
            return FaultPlan.from_json(self.plan_json)
        node_names = [f"nid{i:04}" for i in range(self.n_nodes)]
        return FaultPlan.generate(
            seed=self.seed, horizon=self.plan_horizon, node_names=node_names
        )

    def run(self) -> object:
        from repro.faults.chaos import run_chaos

        _metrics, report = run_chaos(
            resolve_scenario(self.scenario),
            self.plan(),
            n_nodes=self.n_nodes,
            n_pods=self.n_pods,
            seed=self.seed,
            horizon=self.horizon,
        )
        return report


@dataclasses.dataclass(frozen=True)
class FleetCell:
    """One fleet shard: a tenant partition with its own node pool and
    registry (see :mod:`repro.workload.fleet`).

    The partition is a pure function of the config — the cell list for a
    given :class:`~repro.workload.fleet.FleetConfig` is identical
    whatever ``--jobs`` is, which is what makes serial and parallel
    fleet runs byte-identical after the merge.  ``plan_json`` carries an
    optional fault plan (armed inside whichever process runs the cell,
    like :class:`ChaosCell`), so chaos runs keep the same contract.
    """

    config_json: str
    shard: int
    plan_json: str | None = None

    @property
    def label(self) -> str:
        return f"fleet-shard={self.shard}"

    def run(self) -> object:
        from repro.workload.fleet import FleetConfig, run_fleet_shard

        return run_fleet_shard(
            FleetConfig.from_json(self.config_json), self.shard,
            plan_json=self.plan_json,
        )


@dataclasses.dataclass(frozen=True)
class FleetReplayCell:
    """One fleet-replay shard: the shard's fleet trace pushed through a
    real §6.5 sub-cluster (see :mod:`repro.scenarios.fleet_replay`).

    Like :class:`FleetCell`, the partition is a pure function of the
    config, so the cell list is independent of ``--jobs``; ``plan_json``
    optionally carries a fault plan whose pull windows hit the replay's
    real registry path.
    """

    config_json: str
    shard: int
    plan_json: str | None = None

    @property
    def label(self) -> str:
        return f"replay-shard={self.shard}"

    def run(self) -> object:
        from repro.scenarios.fleet_replay import run_replay_shard
        from repro.workload.fleet import FleetConfig

        return run_replay_shard(
            FleetConfig.from_json(self.config_json), self.shard,
            plan_json=self.plan_json,
        )


Cell = _t.Union[ScenarioCell, ChaosCell, FleetCell, FleetReplayCell]


def scenario_matrix(
    n_nodes: int = 4, n_pods: int = 8, seed: int = 0
) -> list[ScenarioCell]:
    """The full §6.6 comparison matrix, one cell per scenario."""
    from repro.scenarios.evaluate import ALL_SCENARIOS

    return [
        ScenarioCell(scenario=cls.name, n_nodes=n_nodes, n_pods=n_pods, seed=seed)
        for cls in ALL_SCENARIOS
    ]


def chaos_seed_sweep(
    scenario: str,
    seeds: _t.Iterable[int],
    n_nodes: int = 4,
    n_pods: int = 8,
) -> list[ChaosCell]:
    """A chaos sweep: the same scenario under one fault plan per seed."""
    resolve_scenario(scenario)  # fail fast on typos, before any pool spins up
    return [
        ChaosCell(scenario=scenario, seed=seed, n_nodes=n_nodes, n_pods=n_pods)
        for seed in seeds
    ]
