"""The deterministic shard runner.

Executes a list of :mod:`repro.shard.cells` across N worker processes
(or in-process for ``jobs=1``) and merges the per-cell outputs back
into the parent's observability state so that the table rows, metrics
snapshots, trace exports and profile counters are **byte-identical to a
serial run**.  Three invariants make that hold:

1. *Every* cell — in-process or in a pool worker, fork or spawn start
   method — begins by installing a known :class:`WorldState` (a
   :class:`WarmSnapshot` fork, or pristine) and resetting the profile
   counters, metrics registry and tracer.  Whatever a previous cell (or
   a forked parent image) left behind is overwritten, so a cell's
   result depends only on the cell value itself.
2. Results are collected with order-preserving ``Pool.map`` and merged
   strictly in cell-index order — never completion order — so gauge
   last-writer-wins, trace row numbering and report concatenation are
   placement-independent.
3. Merge rules are associative re-labelings, not recomputations:
   counters and histogram buckets add, ``peak_queue_depth`` maxes,
   trace rows are re-keyed onto fresh tids per cell.

The parent's own world state and observability state are saved before
the first cell and restored before merging, so calling the runner is
invisible to surrounding code beyond the merged-in results.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as _mp
import typing as _t

from repro.shard.cells import Cell
from repro.shard.state import WarmSnapshot, WorldState
from repro.sim import profile as _profile


@dataclasses.dataclass(frozen=True)
class ObsConfig:
    """Which observability layers each cell records (and the merge
    therefore reconstructs in the parent)."""

    metrics: bool = False
    trace: bool = False
    trace_wall: bool = False
    #: time-series sampling interval (virtual seconds) or None = off;
    #: cells enable the recorder at this interval, and the parent merges
    #: the sampled rings in cell-index order
    timeseries: float | None = None


@dataclasses.dataclass
class CellResult:
    """One cell's outputs: the scenario/chaos value plus raw
    observability state, all picklable."""

    index: int
    label: str
    value: object
    profile: dict[str, int]
    metrics: dict | None
    trace: dict | None
    timeseries: dict | None = None


@dataclasses.dataclass
class ShardResult:
    """All cell results (cell-index order) plus the merged profile."""

    results: list[CellResult]
    profile: dict[str, int]
    jobs: int

    def values(self) -> list:
        return [r.value for r in self.results]


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap workers — no
    re-import), else ``spawn``.  Results are identical under both
    because every cell installs its full world state first."""
    return "fork" if "fork" in _mp.get_all_start_methods() else "spawn"


def merge_profiles(snaps: _t.Iterable[dict[str, int]]) -> dict[str, int]:
    """Fold per-cell counter snapshots: sums, max for high-water marks."""
    out = {field: 0 for field in _profile._FIELDS}
    peaks = _profile.PEAK_FIELDS
    for snap in snaps:
        for field in _profile._FIELDS:
            value = snap.get(field, 0)
            if field in peaks:
                if value > out[field]:
                    out[field] = value
            else:
                out[field] += value
    return out


def _execute_cell(
    index: int, cell: Cell, snapshot: WarmSnapshot | None, obs: ObsConfig
) -> CellResult:
    """Run one cell from a known state and capture everything it produced.

    This is the only place cells execute, so serial and pooled runs are
    the same code path; it deliberately clobbers the process-wide state
    (the parent saves/restores around the whole batch)."""
    from repro.obs.metrics import registry as _registry
    from repro.obs.timeseries import recorder as _recorder
    from repro.obs.trace import tracer as _tracer

    counters = _profile.counters
    prev_enabled = counters.enabled
    counters.reset()
    counters.enabled = True
    if snapshot is not None:
        snapshot.fork()
    else:
        WorldState.pristine().install()
    counters.shard_cells_run += 1
    _registry.reset()
    _registry.enabled = obs.metrics
    _tracer.reset()
    _tracer.enabled = obs.trace
    _tracer.wall_clock = obs.trace_wall
    _recorder.reset()
    if obs.timeseries is not None:
        _recorder.enable(interval=obs.timeseries, reset=False)
    else:
        _recorder.enabled = False
    try:
        value = cell.run()
    finally:
        profile_snap = counters.snapshot()
        counters.enabled = prev_enabled
        metrics_state = _registry.capture_state() if obs.metrics else None
        _registry.enabled = False
        trace_state = _tracer.capture_state() if obs.trace else None
        _tracer.enabled = False
        ts_state = _recorder.capture_state() if obs.timeseries is not None else None
        _recorder.enabled = False
    return CellResult(
        index=index,
        label=cell.label,
        value=value,
        profile=profile_snap,
        metrics=metrics_state,
        trace=trace_state,
        timeseries=ts_state,
    )


# -- pool worker entry points (must be importable, not closures) -------------

_WORKER_SNAPSHOT: WarmSnapshot | None = None
_WORKER_OBS: ObsConfig = ObsConfig()


def _worker_init(snapshot_blob: bytes | None, obs: ObsConfig) -> None:
    global _WORKER_SNAPSHOT, _WORKER_OBS
    _WORKER_SNAPSHOT = (
        WarmSnapshot.from_bytes(snapshot_blob) if snapshot_blob is not None else None
    )
    _WORKER_OBS = obs


def _worker_run(item: tuple[int, Cell]) -> CellResult:
    index, cell = item
    return _execute_cell(index, cell, _WORKER_SNAPSHOT, _WORKER_OBS)


def run_cells(
    cells: _t.Sequence[Cell],
    jobs: int = 1,
    obs: ObsConfig | None = None,
    snapshot: WarmSnapshot | None = None,
    start_method: str | None = None,
) -> ShardResult:
    """Execute ``cells`` across ``jobs`` workers and merge the outputs.

    ``jobs <= 1`` runs in-process through the identical per-cell path.
    ``snapshot`` (a :class:`WarmSnapshot`) replays each cell from the
    warmed prefix; without one, cells start pristine.  After the call
    the parent's profile counters, metrics registry and tracer hold the
    merged results on top of whatever they held before.
    """
    cells = list(cells)
    obs = obs or ObsConfig()
    counters = _profile.counters
    from repro.obs.metrics import registry as _registry
    from repro.obs.timeseries import recorder as _recorder
    from repro.obs.trace import tracer as _tracer

    saved_world = WorldState.capture()
    saved_profile = counters.snapshot()
    saved_profile_enabled = counters.enabled
    saved_metrics = _registry.capture_state()
    saved_metrics_enabled = _registry.enabled
    saved_trace = _tracer.capture_state()
    saved_trace_enabled = _tracer.enabled
    saved_wall_clock = _tracer.wall_clock
    saved_next_tid = _tracer._next_tid
    saved_ts = _recorder.capture_state()
    saved_ts_enabled = _recorder.enabled
    try:
        if jobs <= 1 or len(cells) <= 1:
            results = [
                _execute_cell(i, cell, snapshot, obs) for i, cell in enumerate(cells)
            ]
        else:
            ctx = _mp.get_context(start_method or default_start_method())
            blob = snapshot.to_bytes() if snapshot is not None else None
            with ctx.Pool(
                processes=min(jobs, len(cells)),
                initializer=_worker_init,
                initargs=(blob, obs),
            ) as pool:
                results = pool.map(_worker_run, list(enumerate(cells)), chunksize=1)
    finally:
        # Put the parent back exactly as it was before merging anything in.
        saved_world.install()
        for field, value in saved_profile.items():
            setattr(counters, field, value)
        counters.enabled = saved_profile_enabled
        _registry.install_state(saved_metrics)
        _registry.enabled = saved_metrics_enabled
        _tracer.reset()
        _tracer._events.extend(saved_trace["events"])
        _tracer._thread_names.update(saved_trace["thread_names"])
        _tracer._next_tid = saved_next_tid
        _tracer.enabled = saved_trace_enabled
        _tracer.wall_clock = saved_wall_clock
        _recorder.install_state(saved_ts)
        _recorder.enabled = saved_ts_enabled

    merged = merge_profiles(result.profile for result in results)
    counters.merge(merged)
    if obs.metrics:
        for result in results:
            _registry.install_state(result.metrics, merge=True)
    if obs.trace:
        for result in results:
            _tracer.absorb(result.trace, label=result.label)
    if obs.timeseries is not None:
        for result in results:
            _recorder.install_state(result.timeseries, merge=True)
    return ShardResult(results=results, profile=merged, jobs=jobs)
