"""Process-wide world state: capture, install, and warm snapshots.

Determinism in this repository is anchored on a small set of *global*
id counters (inode numbers, image/container/mount/namespace ids, k8s
uids, registry token serials, signing key serials) plus the
content-addressed materialization caches in :mod:`repro.oci.squash` and
:mod:`repro.fs.images`.  Every simulated artifact digest and entity
name is a pure function of the draws it makes from these counters, so
two runs that start from the *same counter positions* produce
byte-identical results — and two runs that start from different
positions produce different digests even for identical content (bulk
file digests hash their inode number by design).

:class:`WorldState` makes that state an explicit, picklable value:

- :meth:`WorldState.capture` reads the counters non-destructively
  (peek one value, rebind a fresh ``itertools.count`` at it) and
  shallow-copies the caches;
- :meth:`WorldState.install` rebinds every counter and replaces the
  cache contents, making the current process's world state equal to the
  captured one;
- :meth:`WorldState.pristine` is the state of a freshly imported
  process: every counter at 1, every cache empty.

The shard runner installs a known state before **every** cell — in the
parent for serial runs and in pool workers for parallel runs — which is
what makes cell results independent of execution order and worker
placement, and therefore byte-identical between ``--jobs 1`` and
``--jobs N``.

:class:`WarmSnapshot` layers the snapshot/fork mechanism on top: build
once by replaying the shared scenario *prefix* (site image built,
flatten/convert/pack caches hot) from a pristine base, then ``fork()``
before each cell.  A fork rewinds the counters to the pristine base —
so the cell re-draws the exact id sequence the warmup drew, its image
digests match the cached keys, and the prefix materialization work
resolves to cache hits — while the virtual-time results stay identical
to a cold run (the caches never change simulated costs, only wall
clock).
"""

from __future__ import annotations

import dataclasses
import importlib
import itertools
import pickle
import typing as _t

from repro.sim import profile as _profile

#: every module-global ``itertools.count`` that feeds simulated ids.
#: (The per-instance counters — apiserver resource versions, Slurm job
#: ids, kernel pids, Environment sequence numbers — are born fresh with
#: their owning object inside each cell and need no capture.)
COUNTER_SITES: tuple[tuple[str, str], ...] = (
    ("repro.fs.inode", "_inode_counter"),
    ("repro.fs.images", "_image_counter"),
    ("repro.kernel.mounts", "_mount_counter"),
    ("repro.kernel.namespaces", "_ns_counter"),
    ("repro.oci.runtime", "_container_counter"),
    ("repro.oci.sif", "_sif_counter"),
    ("repro.registry.auth", "_token_counter"),
    ("repro.signing.keys", "_key_counter"),
    ("repro.k8s.objects", "_uid_counter"),
)


def _site_key(module: str, attr: str) -> str:
    return f"{module}.{attr}"


def _peek_counter(module: str, attr: str) -> int:
    """Read a counter's next value without consuming it (draw one value,
    rebind a fresh count at that value)."""
    mod = importlib.import_module(module)
    value = next(getattr(mod, attr))
    setattr(mod, attr, itertools.count(value))
    return value


def _set_counter(module: str, attr: str, value: int) -> None:
    mod = importlib.import_module(module)
    setattr(mod, attr, itertools.count(value))


def _counter_positions() -> dict[str, int]:
    return {_site_key(m, a): _peek_counter(m, a) for m, a in COUNTER_SITES}


#: (kind, key, counter fingerprint) -> (value, counter positions after).
#: The prefix-replay cache behind :func:`replay_prefix`: because the key
#: embeds the *exact* global counter positions the producer started
#: from, a hit can only occur when the world is in the identical state
#: it was in when the entry was recorded — which in practice means right
#: after a :meth:`WarmSnapshot.fork` counter rewind.  Outside shard
#: replays every build advances the counters, so the fingerprint never
#: repeats and the cache is inert.
_REPLAY_CACHE: dict[tuple, tuple[object, dict[str, int]]] = {}


def replay_prefix(kind: str, key: str, produce: _t.Callable[[], _t.Any]) -> _t.Any:
    """Run ``produce()`` once per (inputs, world state); replay after.

    On a hit the recorded value is returned and the global counters jump
    to the positions the original run left behind, so the process state
    after a replay is indistinguishable from having re-run the producer
    — every later draw yields the same ids, digests and names.  Each
    replay counts as a ``warm_replays`` profile event.
    """
    before = _counter_positions()
    cache_key = (kind, key, tuple(sorted(before.items())))
    hit = _REPLAY_CACHE.get(cache_key)
    if hit is not None:
        value, after = hit
        for module, attr in COUNTER_SITES:
            _set_counter(module, attr, after[_site_key(module, attr)])
        counters = _profile.counters
        if counters.enabled:
            counters.warm_replays += 1
        return value
    value = produce()
    _REPLAY_CACHE[cache_key] = (value, _counter_positions())
    return value


@dataclasses.dataclass
class WorldState:
    """A picklable checkpoint of the process-wide simulation state."""

    #: ``module.attr`` -> next value the counter will yield
    counters: dict[str, int]
    #: manifest digest -> master flattened tree
    flatten_cache: dict[str, object]
    #: (manifest digest, uid, ratio) -> (SquashImage, cost)
    convert_cache: dict[tuple, tuple]
    #: (tree digest, ratio, uid, writable_by) -> SquashImage
    pack_cache: dict[tuple, object]
    #: the :func:`replay_prefix` entries (fingerprint-keyed builds)
    replay_cache: dict[tuple, tuple] = dataclasses.field(default_factory=dict)

    @classmethod
    def capture(cls) -> "WorldState":
        """Snapshot the current process state (non-destructive)."""
        from repro.fs import images as _images
        from repro.oci import squash as _squash

        return cls(
            counters=_counter_positions(),
            flatten_cache=dict(_squash._FLATTEN_CACHE),
            convert_cache=dict(_squash._CONVERT_CACHE),
            pack_cache=dict(_images._PACK_CACHE),
            replay_cache=dict(_REPLAY_CACHE),
        )

    @classmethod
    def pristine(cls) -> "WorldState":
        """The state of a freshly imported process: counters at 1,
        caches empty."""
        return cls(
            counters={_site_key(m, a): 1 for m, a in COUNTER_SITES},
            flatten_cache={},
            convert_cache={},
            pack_cache={},
            replay_cache={},
        )

    def install(self) -> None:
        """Make the current process's world state equal this snapshot.

        The live cache dicts are cleared and refilled (not rebound), so
        modules that imported them keep working; the snapshot's own
        dicts are never handed out, so cells cannot mutate the
        checkpoint they forked from.
        """
        for module, attr in COUNTER_SITES:
            _set_counter(module, attr, self.counters[_site_key(module, attr)])
        from repro.fs import images as _images
        from repro.oci import squash as _squash

        _squash._FLATTEN_CACHE.clear()
        _squash._FLATTEN_CACHE.update(self.flatten_cache)
        _squash._CONVERT_CACHE.clear()
        _squash._CONVERT_CACHE.update(self.convert_cache)
        _images._PACK_CACHE.clear()
        _images._PACK_CACHE.update(self.pack_cache)
        _REPLAY_CACHE.clear()
        _REPLAY_CACHE.update(self.replay_cache)


def warm_scenario_prefix(n_nodes: int = 4) -> None:
    """Replay the shared §6/chaos scenario prefix to heat the caches.

    Every :class:`~repro.scenarios.base.IntegrationScenario` starts its
    ``__init__`` with the exact same sequence of counter draws for a
    given ``n_nodes`` — hosts, engines, site registry, then the workflow
    image build — so constructing the *base* scenario here consumes the
    identical id sequence any concrete scenario cell will re-draw after
    a counter rewind, and the flatten cache entry seeded below is keyed
    by the very manifest digest those cells will compute.
    """
    from repro.oci.squash import flatten_image
    from repro.scenarios.base import IntegrationScenario
    from repro.sim import Environment

    env = Environment()
    scenario = IntegrationScenario(env, n_nodes=n_nodes)
    flatten_image(scenario.image)


@dataclasses.dataclass
class WarmSnapshot:
    """A checkpoint of a warmed-up simulation prefix.

    ``base`` is the counter state the warmup started from (cells rewind
    to it so their draws replay the warmup's); the cache dicts hold the
    materialization results the warmup produced.  The whole object is a
    plain pickle — workers receive it as bytes through the pool
    initializer.
    """

    base_counters: dict[str, int]
    flatten_cache: dict[str, object]
    convert_cache: dict[tuple, tuple]
    pack_cache: dict[tuple, object]
    replay_cache: dict[tuple, tuple] = dataclasses.field(default_factory=dict)

    @classmethod
    def build(
        cls,
        warmup: _t.Callable[[], None] | None = None,
        base: WorldState | None = None,
    ) -> "WarmSnapshot":
        """Run ``warmup`` from ``base`` (default: pristine) and
        checkpoint what it materialized.  The caller's own world state
        is saved and restored around the build, so taking a snapshot is
        invisible to the surrounding process.
        """
        saved = WorldState.capture()
        base = base or WorldState.pristine()
        try:
            base.install()
            if warmup is not None:
                warmup()
            warm = WorldState.capture()
            return cls(
                base_counters=dict(base.counters),
                flatten_cache=warm.flatten_cache,
                convert_cache=warm.convert_cache,
                pack_cache=warm.pack_cache,
                replay_cache=warm.replay_cache,
            )
        finally:
            saved.install()

    @classmethod
    def for_scenario_prefix(cls, n_nodes: int = 4) -> "WarmSnapshot":
        """The standard snapshot: shared site prefix at ``n_nodes``."""
        return cls.build(lambda: warm_scenario_prefix(n_nodes))

    @property
    def warm(self) -> bool:
        """Whether the snapshot actually carries cached materializations
        (a cold snapshot is just a counter rewind)."""
        return bool(
            self.flatten_cache
            or self.convert_cache
            or self.pack_cache
            or self.replay_cache
        )

    def fork(self) -> None:
        """Install this snapshot as the current process's world state.

        Counters rewind to the snapshot's *base*, so the cell that runs
        next re-draws the warmup's id sequence and its prefix builds and
        image digests hit the warmed caches (each such hit counts as a
        ``warm_replays`` profile event).
        """
        WorldState(
            counters=dict(self.base_counters),
            flatten_cache=self.flatten_cache,
            convert_cache=self.convert_cache,
            pack_cache=self.pack_cache,
            replay_cache=self.replay_cache,
        ).install()
        counters = _profile.counters
        if counters.enabled:
            counters.snapshot_forks += 1

    def to_bytes(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "WarmSnapshot":
        snapshot = pickle.loads(blob)
        if not isinstance(snapshot, cls):
            raise TypeError(f"expected a pickled WarmSnapshot, got {type(snapshot)!r}")
        return snapshot
