"""Simulated signing infrastructure: GPG-style keys, Notary, sigstore.

Cryptographic strength is out of scope (the paper tracks *support and
workflow*, §4.1.5): signatures here are keyed hashes, but the trust
topology is faithful — detached GPG signatures, Notary's per-repository
trust roots, and sigstore's append-only transparency log with inclusion
proofs.
"""

from repro.signing.keys import KeyPair, Signature, SignatureError
from repro.signing.gpg import GPGKeyring
from repro.signing.notary import NotaryService
from repro.signing.cosign import CosignClient, TransparencyLog
from repro.signing.sbom import SBOM, SBOMComponent, generate_sbom

__all__ = [
    "CosignClient",
    "GPGKeyring",
    "KeyPair",
    "NotaryService",
    "SBOM",
    "SBOMComponent",
    "Signature",
    "SignatureError",
    "TransparencyLog",
    "generate_sbom",
]
