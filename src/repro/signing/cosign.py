"""sigstore/cosign: signatures recorded in an append-only transparency
log with verifiable inclusion (§4.1.5, refs [30][31])."""

from __future__ import annotations

import dataclasses
import hashlib

from repro.signing.keys import KeyPair, Signature, SignatureError


@dataclasses.dataclass(frozen=True)
class LogEntry:
    index: int
    artifact_digest: str
    signature: Signature
    entry_hash: str


class TransparencyLog:
    """An append-only Merkle-chained log (Rekor analogue)."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self._head = hashlib.sha256(b"rekor-root").hexdigest()

    def append(self, artifact_digest: str, signature: Signature) -> LogEntry:
        chained = hashlib.sha256(
            f"{self._head}:{artifact_digest}:{signature.mac}".encode()
        ).hexdigest()
        entry = LogEntry(
            index=len(self._entries),
            artifact_digest=artifact_digest,
            signature=signature,
            entry_hash=chained,
        )
        self._entries.append(entry)
        self._head = chained
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, index: int) -> LogEntry:
        return self._entries[index]

    def verify_inclusion(self, entry: LogEntry) -> bool:
        """Recompute the hash chain up to the entry — detects tampering
        and entries fabricated outside the log."""
        head = hashlib.sha256(b"rekor-root").hexdigest()
        for i, stored in enumerate(self._entries[: entry.index + 1]):
            head = hashlib.sha256(
                f"{head}:{stored.artifact_digest}:{stored.signature.mac}".encode()
            ).hexdigest()
            if i == entry.index:
                return head == entry.entry_hash and stored == entry
        return False

    def entries_for(self, artifact_digest: str) -> list[LogEntry]:
        return [e for e in self._entries if e.artifact_digest == artifact_digest]


class CosignClient:
    """Sign and verify container artifacts against a transparency log."""

    def __init__(self, log: TransparencyLog):
        self.log = log

    def sign(self, key: KeyPair, artifact_digest: str) -> LogEntry:
        signature = key.sign(artifact_digest.encode())
        return self.log.append(artifact_digest, signature)

    def verify(self, key: KeyPair, artifact_digest: str) -> LogEntry:
        """Verify that a valid signature by ``key`` is logged for the
        artifact; returns the log entry."""
        for entry in self.log.entries_for(artifact_digest):
            if entry.signature.key_id == key.public_id and key.verify(
                artifact_digest.encode(), entry.signature
            ):
                if not self.log.verify_inclusion(entry):
                    raise SignatureError("inclusion proof failed (log tampered?)")
                return entry
        raise SignatureError(f"no logged signature by {key.public_id} for {artifact_digest[:19]}")
