"""GPG-style keyring with detached signatures.

This is the model used by Podman (GPG signature attachments) and the
Singularity family (PGP signatures embedded in SIF), §4.1.5.
"""

from __future__ import annotations

from repro.signing.keys import KeyPair, Signature, SignatureError


class GPGKeyring:
    """A keyring of trusted public keys."""

    def __init__(self) -> None:
        self._keys: dict[str, KeyPair] = {}

    def generate_key(self, owner: str) -> KeyPair:
        key = KeyPair(owner)
        self._keys[key.public_id] = key
        return key

    def import_key(self, key: KeyPair) -> None:
        self._keys[key.public_id] = key

    def remove_key(self, key_id: str) -> None:
        self._keys.pop(key_id, None)

    def known(self, key_id: str) -> bool:
        return key_id in self._keys

    @staticmethod
    def sign_detached(key: KeyPair, data: bytes) -> Signature:
        return key.sign(data)

    def verify_detached(self, data: bytes, signature: Signature) -> str:
        """Verify against the keyring; returns the signer's owner name."""
        key = self._keys.get(signature.key_id)
        if key is None:
            raise SignatureError(f"unknown key id {signature.key_id} (not in keyring)")
        if not key.verify(data, signature):
            raise SignatureError("bad signature")
        return key.owner
