"""Key pairs and detached signatures (HMAC-based simulation)."""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import itertools

_key_counter = itertools.count(1)


class SignatureError(Exception):
    """Verification failed or signature malformed."""


@dataclasses.dataclass(frozen=True)
class Signature:
    key_id: str
    payload_digest: str
    mac: str

    def covers(self, data: bytes) -> bool:
        return self.payload_digest == hashlib.sha256(data).hexdigest()


class KeyPair:
    """An asymmetric key pair, simulated with an HMAC secret.

    ``public_id`` stands in for the public key: verification requires a
    KeyPair object (the "public half") whose secret matches, which models
    key distribution without real asymmetric crypto.
    """

    def __init__(self, owner: str):
        self.owner = owner
        n = next(_key_counter)
        self._secret = hashlib.sha256(f"secret:{owner}:{n}".encode()).digest()
        self.public_id = hashlib.sha256(self._secret).hexdigest()[:16]

    def sign(self, data: bytes) -> Signature:
        payload_digest = hashlib.sha256(data).hexdigest()
        mac = hmac.new(self._secret, payload_digest.encode(), hashlib.sha256).hexdigest()
        return Signature(key_id=self.public_id, payload_digest=payload_digest, mac=mac)

    def verify(self, data: bytes, signature: Signature) -> bool:
        if signature.key_id != self.public_id:
            return False
        if not signature.covers(data):
            return False
        expected = hmac.new(
            self._secret, signature.payload_digest.encode(), hashlib.sha256
        ).hexdigest()
        return hmac.compare_digest(expected, signature.mac)

    def __repr__(self) -> str:
        return f"<KeyPair {self.owner} id={self.public_id}>"
