"""Notary-style trust: per-repository signed tag→digest mappings.

Docker content trust (Notary v1/v2): each repository has a trust root;
publishers sign the association of a tag with a manifest digest, and
clients verify the mapping before pulling — defeating tag-squatting and
registry-side tampering (§4.1.5).
"""

from __future__ import annotations

import dataclasses

from repro.signing.keys import KeyPair, Signature, SignatureError


@dataclasses.dataclass(frozen=True)
class TrustRecord:
    repository: str
    tag: str
    manifest_digest: str
    signature: Signature

    def payload(self) -> bytes:
        return f"{self.repository}:{self.tag}@{self.manifest_digest}".encode()


class NotaryService:
    """A trust service maintaining repository roots and signed targets."""

    def __init__(self) -> None:
        #: repository -> root key authorized to sign its targets
        self._roots: dict[str, KeyPair] = {}
        #: (repository, tag) -> record
        self._targets: dict[tuple[str, str], TrustRecord] = {}

    def init_repository(self, repository: str, owner: str) -> KeyPair:
        if repository in self._roots:
            raise SignatureError(f"repository {repository} already initialized")
        key = KeyPair(owner)
        self._roots[repository] = key
        return key

    def root_key(self, repository: str) -> KeyPair | None:
        return self._roots.get(repository)

    def sign_target(
        self, repository: str, tag: str, manifest_digest: str, key: KeyPair
    ) -> TrustRecord:
        root = self._roots.get(repository)
        if root is None:
            raise SignatureError(f"repository {repository} has no trust root")
        if key.public_id != root.public_id:
            raise SignatureError("signing key is not the repository root key")
        payload = f"{repository}:{tag}@{manifest_digest}".encode()
        record = TrustRecord(repository, tag, manifest_digest, key.sign(payload))
        self._targets[(repository, tag)] = record
        return record

    def verify_target(self, repository: str, tag: str, manifest_digest: str) -> bool:
        record = self._targets.get((repository, tag))
        root = self._roots.get(repository)
        if record is None or root is None:
            return False
        if record.manifest_digest != manifest_digest:
            return False
        return root.verify(record.payload(), record.signature)

    def trusted_digest(self, repository: str, tag: str) -> str | None:
        record = self._targets.get((repository, tag))
        return record.manifest_digest if record else None
