"""Software Bill of Materials generation for container images.

The paper mentions SBOM support as a differentiator (SingularityPro,
§4.1.1) and a sigstore use case (§4.1.5).  The generator scans the
synthetic package markers the image builder leaves behind.
"""

from __future__ import annotations

import dataclasses
import json

from repro.fs.tree import FileTree
from repro.oci.digest import digest_str


@dataclasses.dataclass(frozen=True)
class SBOMComponent:
    name: str
    version: str
    origin: str  # "os-package", "pip", "source-build", ...


@dataclasses.dataclass
class SBOM:
    image_digest: str
    components: list[SBOMComponent]

    def to_json(self) -> str:
        return json.dumps(
            {
                "image": self.image_digest,
                "components": [dataclasses.asdict(c) for c in self.components],
            },
            sort_keys=True,
        )

    @property
    def digest(self) -> str:
        return digest_str(self.to_json())

    def find(self, name: str) -> SBOMComponent | None:
        for c in self.components:
            if c.name == name:
                return c
        return None


#: directory the builder records package installs in
MANIFEST_DIR = "/var/lib/repro-pkg"


def generate_sbom(rootfs: FileTree, image_digest: str) -> SBOM:
    """Scan an image root for package markers and emit an SBOM."""
    components: list[SBOMComponent] = []
    if rootfs.exists(MANIFEST_DIR):
        for path, node in rootfs.files(MANIFEST_DIR):
            if node.data is None:
                continue
            try:
                meta = json.loads(node.data.decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            components.append(
                SBOMComponent(
                    name=meta.get("name", path.rsplit("/", 1)[-1]),
                    version=meta.get("version", "0"),
                    origin=meta.get("origin", "unknown"),
                )
            )
    components.sort(key=lambda c: (c.origin, c.name))
    return SBOM(image_digest=image_digest, components=components)
