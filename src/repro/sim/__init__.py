"""Discrete-event simulation core.

Every timed behaviour in this repository — filesystem IO, registry
transfers, scheduler decisions, container start-up — runs on this small
generator-based discrete-event simulator.  The design follows the classic
process-interaction style (as popularized by SimPy): simulation processes
are Python generators that ``yield`` events; the :class:`Environment`
advances virtual time and resumes processes when their events trigger.

The simulator is deterministic: given the same seed and the same process
creation order, a simulation produces bit-identical timelines, which the
benchmark harness relies on for reproducible "shape" comparisons.
"""

from repro.sim.events import AllOf, AnyOf, Event, Interrupt, SimulationError, Timeout
from repro.sim.environment import Environment, Process
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import DeterministicRNG
from repro.sim.signal import Signal, next_tick

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "DeterministicRNG",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Signal",
    "SimulationError",
    "Store",
    "Timeout",
    "next_tick",
]
