"""The simulation environment: event queue, virtual clock, processes."""

from __future__ import annotations

import heapq
import itertools
import typing as _t

from repro.sim.events import Event, Interrupt, SimulationError, Timeout

ProcessGenerator = _t.Generator[Event, object, object]


class Environment:
    """Owns the virtual clock and the pending-event queue.

    Events are processed in ``(time, priority, sequence)`` order; the
    sequence number makes simultaneous events FIFO and the whole
    simulation deterministic.
    """

    #: priority for normal events; interrupts use URGENT so that an
    #: interrupt scheduled at time t pre-empts same-time normal events.
    NORMAL = 1
    URGENT = 0

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Process | None = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> "Process | None":
        return self._active_process

    # -- event construction helpers ---------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str | None = None) -> "Process":
        return Process(self, generator, name=name)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._counter), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on empty event queue")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if event._exception is not None and not event.defused:
            raise event._exception

    def run(self, until: "float | Event | None" = None) -> object:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain), a number (absolute virtual
        time), or an :class:`Event` (run until it is processed, returning
        its value).
        """
        if isinstance(until, Event):
            stop = until
            if stop.processed:
                return stop.value
            sentinel: list[bool] = []
            if stop.callbacks is None:
                raise SimulationError("cannot run until an in-flight event")
            stop.callbacks.append(lambda _ev: sentinel.append(True))
            # A failed `until` event must surface its exception to the
            # caller even if a waiter defused it inside the simulation.
            while self._queue and not sentinel:
                self.step()
            if not sentinel:
                raise SimulationError("event queue drained before `until` event fired")
            return stop.value
        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self._now = deadline
        return None


class Process(Event):
    """A generator-driven simulation process.

    The process itself is an event: it triggers with the generator's
    return value when the generator finishes, so processes can wait on
    each other by yielding the target process.
    """

    def __init__(self, env: Environment, generator: ProcessGenerator, name: str | None = None):
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Bootstrap: resume the generator at the current simulation time.
        boot = Event(env)
        boot.callbacks.append(self._resume)  # type: ignore[union-attr]
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever it was waiting on so the stale resume
        # callback does not fire later.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        carrier = Event(self.env)
        carrier.callbacks.append(self._resume)  # type: ignore[union-attr]
        carrier._exception = Interrupt(cause)
        carrier._value = None
        carrier.defused = True
        self.env._schedule(carrier, priority=Environment.URGENT)

    # -- internals ----------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self.env._active_process = self
        try:
            if trigger._exception is not None:
                trigger.defused = True
                target = self._generator.throw(trigger._exception)
            else:
                target = self._generator.send(trigger._value if trigger._value is not None else None)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        if target.env is not self.env:
            raise SimulationError("process yielded an event from a different environment")
        self._target = target
        if target.processed:
            # Already processed: resume immediately (next queue slot).
            carrier = Event(self.env)
            carrier.callbacks.append(self._resume)  # type: ignore[union-attr]
            carrier._value = target._value
            carrier._exception = target._exception
            if carrier._exception is not None:
                carrier.defused = True
            if not carrier.triggered:
                carrier.succeed(target._value)
            else:
                self.env._schedule(carrier)
        else:
            assert target.callbacks is not None
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
