"""The simulation environment: event queue, virtual clock, processes.

The queue is split into two structures sharing one sequence counter:

- a binary heap for events scheduled with a positive delay (true
  timeouts) or non-normal priority (interrupts), ordered by
  ``(time, priority, sequence)``;
- a FIFO deque for zero-delay normal events — by far the most common
  kind (``succeed``/``fail``, resource grants, process resumes).  These
  always fire at the *current* time, so FIFO order over the shared
  sequence counter reproduces the heap's total order exactly while
  skipping ``heapq`` cost entirely.

``step()`` merges the two by comparing the heap head's
``(time, priority, sequence)`` key against the deque front, so the
observable event order — and therefore every virtual-time result — is
bit-identical to a single-heap implementation.

Process resumes additionally bypass event allocation: instead of a
throwaway carrier :class:`Event` per resume, the queue carries a slotted
:class:`_Resume` record that invokes the generator directly.
"""

from __future__ import annotations

import itertools
import typing as _t
from collections import deque
from heapq import heappop, heappush

from repro.obs.trace import tracer as _tracer
from repro.sim.events import Event, Interrupt, SimulationError, Timeout
from repro.sim.profile import counters as _counters

ProcessGenerator = _t.Generator[Event, object, object]


class _Resume:
    """A queued process resume: cheaper than a carrier Event.

    ``process`` is set to ``None`` to cancel the resume in place (used by
    :meth:`Process.interrupt` so a stale resume cannot fire after the
    interrupt already restarted the generator).
    """

    __slots__ = ("process", "value", "exception")

    def __init__(self, process: "Process", value: object, exception: BaseException | None):
        self.process = process
        self.value = value
        self.exception = exception


class Environment:
    """Owns the virtual clock and the pending-event queue.

    Events are processed in ``(time, priority, sequence)`` order; the
    sequence number makes simultaneous events FIFO and the whole
    simulation deterministic.
    """

    #: priority for normal events; interrupts use URGENT so that an
    #: interrupt scheduled at time t pre-empts same-time normal events.
    NORMAL = 1
    URGENT = 0

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        #: delayed / urgent events: heap of (time, priority, seq, item)
        self._queue: list[tuple[float, int, int, Event | _Resume]] = []
        #: zero-delay normal events at the current time: FIFO of (seq, item)
        self._immediate: deque[tuple[int, Event | _Resume]] = deque()
        self._counter = itertools.count()
        self._active_process: Process | None = None
        self._profile = _counters
        if _tracer.enabled:
            # Adopt this environment's virtual clock and active-process
            # tracking for span timestamps/thread rows (last env wins).
            _tracer.attach(self)

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> "Process | None":
        return self._active_process

    # -- event construction helpers ---------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        return Timeout(self, delay, value)

    def timeout_until(self, when: float, value: object = None) -> Event:
        """An event at the **absolute** virtual time ``when``.

        Unlike ``timeout(when - now)``, the event fires at exactly
        ``when`` — no float round-trip through a delay — which tickless
        loops rely on to land precisely on a poll-grid boundary another
        process (or a previous incarnation of the same loop) computed by
        sequential addition.
        """
        when = float(when)
        if when < self._now:
            raise ValueError(f"until={when} is in the past (now={self._now})")
        event = Event(self)
        event._value = value
        self._schedule_at(event, when)
        return event

    def process(self, generator: ProcessGenerator, name: str | None = None) -> "Process":
        return Process(self, generator, name=name)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay == 0.0 and priority == 1:
            immediate = True
            self._immediate.append((next(self._counter), event))
        else:
            immediate = False
            heappush(self._queue, (self._now + delay, priority, next(self._counter), event))
        prof = self._profile
        if prof.enabled:
            self._count_push(prof, immediate)

    def _schedule_at(self, event: Event, when: float, priority: int = NORMAL) -> None:
        """Schedule ``event`` at the absolute virtual time ``when``."""
        if when == self._now and priority == 1:
            immediate = True
            self._immediate.append((next(self._counter), event))
        else:
            immediate = False
            heappush(self._queue, (when, priority, next(self._counter), event))
        prof = self._profile
        if prof.enabled:
            self._count_push(prof, immediate)

    def _schedule_resume(
        self,
        process: "Process",
        value: object,
        exception: BaseException | None,
        priority: int = NORMAL,
    ) -> _Resume:
        """Queue a direct process resume without allocating a carrier Event."""
        resume = _Resume(process, value, exception)
        if priority == 1:
            immediate = True
            self._immediate.append((next(self._counter), resume))
        else:
            immediate = False
            heappush(self._queue, (self._now, priority, next(self._counter), resume))
        prof = self._profile
        if prof.enabled:
            prof.direct_resumes += 1
            self._count_push(prof, immediate)
        return resume

    def _count_push(self, prof, immediate: bool) -> None:
        prof.events_scheduled += 1
        if immediate:
            prof.immediate_pushes += 1
        else:
            prof.heap_pushes += 1
        depth = len(self._queue) + len(self._immediate)
        if depth > prof.peak_queue_depth:
            prof.peak_queue_depth = depth

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if queue is empty."""
        if self._immediate:
            return self._now
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        immediate = self._immediate
        queue = self._queue
        from_heap = True
        if immediate:
            # Merge point: a heap entry wins only if its (time, priority,
            # sequence) key sorts before the deque front, which sits at
            # (self._now, NORMAL, front_seq).
            use_heap = False
            if queue:
                head = queue[0]
                if head[0] == self._now:
                    prio = head[1]
                    use_heap = prio < 1 or (prio == 1 and head[2] < immediate[0][0])
            if use_heap:
                when, _prio, _seq, item = heappop(queue)
                self._now = when
            else:
                from_heap = False
                item = immediate.popleft()[1]
        elif queue:
            when, _prio, _seq, item = heappop(queue)
            self._now = when
        else:
            raise SimulationError("step() on empty event queue")
        prof = self._profile
        if prof.enabled:
            prof.events_processed += 1
            if from_heap:
                prof.heap_pops += 1
            else:
                prof.immediate_pops += 1

        if item.__class__ is _Resume:
            process = item.process
            if process is not None:  # None == cancelled by interrupt()
                process._do_resume(item.value, item.exception)
            return
        event = _t.cast(Event, item)
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)
        if event._exception is not None and not event.defused:
            raise event._exception

    def run(self, until: "float | Event | None" = None) -> object:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be ``None`` (drain), a number (absolute virtual
        time), or an :class:`Event` (run until it is processed, returning
        its value).
        """
        immediate = self._immediate
        queue = self._queue
        if isinstance(until, Event):
            stop = until
            if stop.processed:
                return stop.value
            sentinel: list[bool] = []
            if stop.callbacks is None:
                raise SimulationError("cannot run until an in-flight event")
            stop.callbacks.append(lambda _ev: sentinel.append(True))
            # A failed `until` event must surface its exception to the
            # caller even if a waiter defused it inside the simulation.
            while (immediate or queue) and not sentinel:
                self.step()
            if not sentinel:
                raise SimulationError("event queue drained before `until` event fired")
            return stop.value
        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self._now:
            raise ValueError(f"until={deadline} is in the past (now={self._now})")
        while immediate or queue:
            if not immediate and queue[0][0] > deadline:
                break
            self.step()
        if deadline != float("inf"):
            self._now = deadline
        return None


class Process(Event):
    """A generator-driven simulation process.

    The process itself is an event: it triggers with the generator's
    return value when the generator finishes, so processes can wait on
    each other by yielding the target process.
    """

    __slots__ = ("_generator", "name", "_target", "_pending_resume")

    def __init__(self, env: Environment, generator: ProcessGenerator, name: str | None = None):
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        if env._profile.enabled:
            env._profile.processes_spawned += 1
        # Bootstrap: resume the generator at the current simulation time.
        self._pending_resume: _Resume | None = env._schedule_resume(self, None, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever it was waiting on so the stale resume
        # callback does not fire later.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        if self._pending_resume is not None:
            self._pending_resume.process = None
            self._pending_resume = None
        self.env._schedule_resume(self, None, Interrupt(cause), priority=Environment.URGENT)

    # -- internals ----------------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        """Callback form: resume with a real event's value/exception."""
        if trigger._exception is not None:
            trigger.defused = True
        self._do_resume(trigger._value, trigger._exception)

    def _do_resume(self, value: object, exception: BaseException | None) -> None:
        self._pending_resume = None
        target = self._target
        if target is not None:
            # Normally `target` is the event now being processed (its
            # callbacks are already detached).  But a second interrupt
            # queued while the first was in flight fires *after* the
            # process re-attached to a new event — detach that stale
            # callback or the process would later be resumed twice.
            self._target = None
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        env = self.env
        env._active_process = self
        try:
            if exception is not None:
                target = self._generator.throw(exception)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
        if target.env is not env:
            raise SimulationError("process yielded an event from a different environment")
        self._target = target
        if target.callbacks is None:
            # Already processed: resume immediately (next queue slot)
            # without a carrier Event.  The exception, if any, was already
            # defused when the target itself was processed.
            self._pending_resume = env._schedule_resume(self, target._value, target._exception)
        else:
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
