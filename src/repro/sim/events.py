"""Event primitives for the discrete-event simulator.

An :class:`Event` is a one-shot occurrence in virtual time.  Processes
(see :mod:`repro.sim.environment`) wait on events by yielding them; when
the event *triggers*, every waiting process is resumed with the event's
value (or has the event's exception thrown into it if the event *failed*).
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation API (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries an arbitrary, caller-supplied payload
    describing why the interrupt happened (e.g. job preemption).
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


# Sentinel distinguishing "not yet set" from a legitimate ``None`` value.
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for.

    Events move through three states: *pending* (created, not yet
    triggered), *triggered* (scheduled in the event queue), and
    *processed* (callbacks have run).  ``succeed``/``fail`` transition a
    pending event to triggered.
    """

    __slots__ = ("env", "callbacks", "_value", "_exception", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[_t.Callable[["Event"], None]] | None = []
        self._value: object = _PENDING
        self._exception: BaseException | None = None
        # ``defused`` marks a failed event whose exception was consumed by a
        # waiter; undefused failures crash the simulation at processing time
        # so errors never pass silently.
        self.defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING or self._exception is not None

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True once the event triggered successfully."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> object:
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- transitions ------------------------------------------------------
    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: object = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_outstanding")

    def __init__(self, env: "Environment", events: _t.Sequence[Event]):
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        self._outstanding = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            elif ev.callbacks is not None:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _collect(self) -> dict[Event, object]:
        # Only *processed* events count: a pre-scheduled Timeout carries its
        # value from construction, so ``ok`` alone would over-collect.
        return {ev: ev._value for ev in self.events if ev.processed and ev.ok}


class AllOf(_Condition):
    """Triggers once every constituent event has triggered successfully."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Triggers as soon as any constituent event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exception is not None:
            event.defused = True
            self.fail(event._exception)
            return
        self.succeed(self._collect())
