"""Lightweight counters for the simulator hot path.

The discrete-event core increments a handful of plain-integer counters as
it schedules and processes events.  They cost a few attribute increments
per event — cheap enough to stay always-on — and give benchmarks and the
perf harness (``benchmarks/bench_simcore_wallclock.py``) a stable way to
report *how much* simulator bookkeeping a sweep performed, independent of
wall-clock noise:

- ``events_scheduled`` / ``events_processed``: total queue traffic;
- ``heap_pushes`` / ``heap_pops``: events that paid ``heapq`` cost (true
  timeouts and urgent interrupts);
- ``immediate_pushes`` / ``immediate_pops``: zero-delay events served from
  the FIFO fast path;
- ``direct_resumes``: process resumes that skipped carrier-event
  allocation entirely;
- ``processes_spawned``: generator processes created;
- ``peak_queue_depth``: high-water mark of heap + immediate queue;
- ``parked_processes``: times a tickless control loop parked on a
  :class:`~repro.sim.signal.Signal` instead of scheduling a poll;
- ``wakeups_fired``: waiters woken by ``Signal.fire()``;
- ``poll_ticks_skipped``: idle polling ticks that event-driven parking
  avoided scheduling (each one a heap push in the pre-tickless core);
- ``cow_clones``: :meth:`FileTree.clone` calls served by copy-on-write
  structural sharing (aliasing the frozen root instead of deep-copying);
- ``cow_copy_ups``: nodes shallow-copied to unshare a mutation spine —
  the *total* tree work a mutation against a shared tree actually paid;
- ``digest_cache_hits``: :meth:`FileNode.digest` calls answered from the
  per-node memo instead of rehashing content;
- ``flatten_cache_hits``: image flatten/convert/pack requests served
  from a content-addressed cache (each hit is one whole rootfs
  materialization that used to be rebuilt layer by layer);
- ``shard_cells_run``: matrix cells executed by the
  :mod:`repro.shard` runner (serial and parallel alike);
- ``snapshot_forks``: times a :class:`~repro.shard.WarmSnapshot` was
  forked into the process-wide world state;
- ``warm_replays``: prefix materializations (e.g. whole dockerfile
  builds) replayed from a warm snapshot's fingerprint-keyed cache
  instead of re-simulated — the counters jump to the recorded
  positions, so a replay is world-state-identical to a cold run;
- ``event_queue_peak``: high-water mark of *deferred work* reported by
  batching engines (e.g. :mod:`repro.workload.fleet`): simulator queue
  plus any calendar/pending structures an engine keeps outside the
  event core.  ``peak_queue_depth`` only sees what reaches the heap, so
  an epoch-batched engine would otherwise look idle while holding a
  million future completions;
- ``live_objects_peak``: high-water mark of live pooled records (e.g.
  running containers + queued starts) — the fleet memory-pressure
  number;
- ``sched_index_hits``: placement queries (k8s pod binds, WLM job fits)
  answered by the bucketed/ordered capacity indexes instead of a linear
  node scan;
- ``sched_linear_fallbacks``: placement queries where the index did not
  short-circuit (the query degenerated into scanning most of the node
  set — saturated clusters, exotic selectors);
- ``watch_batched_notifies``: apiserver watch events dispatched through
  the keyed fast path — one routed delivery instead of a fan-out
  callback per registered watcher;
- ``sched_pending_peak``: high-water mark of the k8s scheduler's
  pending-pod queue (the control-plane backlog number).

Counters are global (aggregated across all :class:`Environment` instances)
so a benchmark that builds many environments still gets one roll-up.
Counting is **off by default** — the hot path pays only a single boolean
check per event — and is switched on explicitly::

    from repro.sim import profile
    profile.enable()      # resets and starts counting
    ...                   # run simulations
    print(profile.counters.snapshot())
    profile.disable()
"""

from __future__ import annotations

_FIELDS = (
    "events_scheduled",
    "events_processed",
    "heap_pushes",
    "heap_pops",
    "immediate_pushes",
    "immediate_pops",
    "direct_resumes",
    "processes_spawned",
    "peak_queue_depth",
    "parked_processes",
    "wakeups_fired",
    "poll_ticks_skipped",
    "cow_clones",
    "cow_copy_ups",
    "digest_cache_hits",
    "flatten_cache_hits",
    "shard_cells_run",
    "snapshot_forks",
    "warm_replays",
    "event_queue_peak",
    "live_objects_peak",
    "sched_index_hits",
    "sched_linear_fallbacks",
    "watch_batched_notifies",
    "sched_pending_peak",
)

#: fields that are high-water marks: they merge by max, not by sum.
PEAK_FIELDS = frozenset(
    {"peak_queue_depth", "event_queue_peak", "live_objects_peak",
     "sched_pending_peak"}
)


class SimCounters:
    """Mutable counter block updated by the simulator core.

    ``enabled`` gates all counting: the simulator reads it once per
    scheduled/processed event and skips every increment while False.
    """

    __slots__ = _FIELDS + ("enabled",)

    def __init__(self) -> None:
        self.enabled = False
        self.reset()

    def reset(self) -> None:
        for field in _FIELDS:
            setattr(self, field, 0)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the current counter values."""
        return {field: getattr(self, field) for field in _FIELDS}

    def snapshot_delta(self, baseline: dict[str, int]) -> dict[str, int]:
        """Per-field difference against an earlier :meth:`snapshot`.

        This is the nesting-safe way to measure a sub-workload while
        counting is already on (a benchmark harness inside a traced
        scenario): take a snapshot, run, diff — no reset required.
        Note ``peak_queue_depth`` is a high-water mark, so its delta is
        only meaningful when the inner workload pushed a new peak.
        """
        return {field: getattr(self, field) - baseline.get(field, 0) for field in _FIELDS}

    def merge(self, snap: dict[str, int]) -> None:
        """Fold another block's :meth:`snapshot` into this one.

        Additive for every field except the :data:`PEAK_FIELDS`
        high-water marks, which merge by max.  This is how the shard
        runner rolls per-cell counter blocks up into the parent
        process's totals (the merged result is identical whichever
        process ran each cell, so parallel and serial runs report the
        same numbers).
        """
        for field in _FIELDS:
            value = snap.get(field, 0)
            if field in PEAK_FIELDS:
                if value > getattr(self, field):
                    setattr(self, field, value)
            else:
                setattr(self, field, getattr(self, field) + value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{f}={getattr(self, f)}" for f in _FIELDS)
        return f"SimCounters({body})"


#: The global counter block every Environment feeds.
counters = SimCounters()

#: enable()/disable() nesting depth — counting stays on until the
#: outermost enable is balanced by its disable.
_depth = 0


def enable(reset: bool = True) -> SimCounters:
    """Start counting; returns the block.

    Re-entrancy-safe: calls nest.  Only the *outermost* ``enable`` may
    reset the counters (``reset=True``, the default); a nested enable —
    e.g. a benchmark harness running inside an already-profiled scenario
    — keeps counting into the same block instead of silently clobbering
    the outer caller's totals.  Use :meth:`SimCounters.snapshot_delta`
    to measure the inner region.  Counting turns off only when every
    ``enable`` has been balanced by a :func:`disable`.
    """
    global _depth
    if _depth == 0 and reset:
        counters.reset()
    _depth += 1
    counters.enabled = True
    return counters


def disable() -> SimCounters:
    """Undo one :func:`enable`; counting stops at the outermost level.

    Extra ``disable()`` calls (no matching enable) are no-ops, so a
    cleanup-path ``disable`` cannot push the depth negative.  The
    accumulated values stay readable either way.
    """
    global _depth
    if _depth > 0:
        _depth -= 1
    if _depth == 0:
        counters.enabled = False
    return counters


def enable_depth() -> int:
    """Current enable() nesting depth (0 == counting off)."""
    return _depth
