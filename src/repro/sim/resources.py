"""Shared resources for simulation processes.

- :class:`Resource` — a fixed-capacity resource with a FIFO wait queue
  (models e.g. a metadata server's request slots or a NIC).
- :class:`Container` — a continuous-level resource (models e.g. disk
  space or a download quota).
- :class:`Store` — a FIFO object store (models e.g. a work queue).
"""

from __future__ import annotations

import collections
import typing as _t

from repro.sim.events import Event, SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment


class Request(Event):
    """Event returned by :meth:`Resource.request`; triggers on grant."""

    __slots__ = ("resource",)

    def __init__(self, env: "Environment", resource: "Resource"):
        super().__init__(env)
        self.resource = resource


class Resource:
    """Fixed-capacity resource with FIFO granting.

    Usage from a process::

        req = resource.request()
        yield req
        ...  # hold the slot
        resource.release(req)
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: collections.deque[Request] = collections.deque()
        #: total virtual time integrated over queue length — used by
        #: benchmarks to report average queueing (contention) delay.
        self._queue_time_integral = 0.0
        self._last_change = env.now

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def _account(self) -> None:
        now = self.env.now
        self._queue_time_integral += len(self._waiting) * (now - self._last_change)
        self._last_change = now

    def request(self) -> Request:
        self._account()
        req = Request(self.env, self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        if request not in self._users:
            raise SimulationError("release of a request that does not hold the resource")
        self._account()
        self._users.discard(request)
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()

    def mean_queue_length(self) -> float:
        """Time-averaged queue length since environment start."""
        self._account()
        elapsed = self.env.now
        return self._queue_time_integral / elapsed if elapsed > 0 else 0.0


class Container:
    """A continuous-level resource (``get``/``put`` of amounts)."""

    def __init__(self, env: "Environment", capacity: float = float("inf"), init: float = 0.0):
        if init < 0 or init > capacity:
            raise ValueError("init must satisfy 0 <= init <= capacity")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: collections.deque[tuple[float, Event]] = collections.deque()
        self._putters: collections.deque[tuple[float, Event]] = collections.deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = Event(self.env)
        self._putters.append((amount, ev))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError("amount must be non-negative")
        ev = Event(self.env)
        self._getters.append((amount, ev))
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                amount, ev = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.popleft()
                    ev.succeed()
                    progressed = True
            if self._getters:
                amount, ev = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.popleft()
                    ev.succeed()
                    progressed = True


class Store:
    """Unbounded-or-bounded FIFO store of Python objects."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        self.env = env
        self.capacity = capacity
        self.items: collections.deque[object] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self._putters: collections.deque[tuple[object, Event]] = collections.deque()

    def put(self, item: object) -> Event:
        ev = Event(self.env)
        self._putters.append((item, ev))
        self._settle()
        return ev

    def get(self) -> Event:
        ev = Event(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self.items) < self.capacity:
                item, ev = self._putters.popleft()
                self.items.append(item)
                ev.succeed()
                progressed = True
            if self._getters and self.items:
                ev = self._getters.popleft()
                ev.succeed(self.items.popleft())
                progressed = True
