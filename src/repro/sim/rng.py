"""Deterministic randomness for simulations.

All stochastic behaviour (jitter on IO latencies, arrival processes in
workload generators) draws from a :class:`DeterministicRNG` created from
an explicit seed, so simulation runs are exactly reproducible.  Named
sub-streams keep independent components decoupled: adding draws to one
component does not perturb another.
"""

from __future__ import annotations

import hashlib

import numpy as np


class DeterministicRNG:
    """Seeded RNG with named, independent sub-streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """An independent generator derived from (seed, name)."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = np.random.default_rng(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    # -- convenience draws on the root stream ------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def exponential(self, mean: float) -> float:
        return float(self._rng.exponential(mean))

    def lognormal_jitter(self, sigma: float = 0.05) -> float:
        """Multiplicative jitter centered on 1.0 (sigma in log-space)."""
        return float(np.exp(self._rng.normal(0.0, sigma)))

    def choice(self, seq):
        return seq[int(self._rng.integers(0, len(seq)))]

    def integers(self, low: int, high: int) -> int:
        return int(self._rng.integers(low, high))
