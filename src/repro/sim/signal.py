"""Tickless wakeups: the :class:`Signal` primitive and tick alignment.

PR 1 made every *processed* event cheap; the remaining cost was that
periodic control loops (kubelet syncs, controller reconciles, scenario
provisioning pollers) *generate* events at a fixed rate whether or not
there is work — the simulated version of the "wasteful per-node daemon"
pattern the paper's §3.2 criticizes.  A :class:`Signal` lets such a loop
go **tickless**: when it observes no pending work it parks, and the
producers that create work (pod binds, API object writes, job state
changes) fire the signal to wake it.

Two waiting styles are supported:

``wait()``
    Returns a fresh :class:`~repro.sim.events.Event` that the next
    :meth:`fire` succeeds through the environment's zero-delay FIFO fast
    path.  With ``latch=True`` a fire that finds no waiter is remembered
    and delivered to the next ``wait()`` — the semantics of the
    recreate-an-event "bell" pattern the schedulers used, including its
    coalescing behaviour (fires while a woken waiter has not yet resumed
    are absorbed, exactly like ringing an already-triggered bell).

``park(deadline)``
    Registers the *active process* for a **direct resume**: ``fire()``
    detaches the process from its pending deadline event and queues a
    slotted ``_Resume`` record — no carrier event, no extra queue hop —
    so a signal-woken process resumes in exactly the queue slot a
    hand-rolled wakeup event would have used.  The returned token must be
    yielded immediately; it delivers :data:`Signal.FIRED` when the signal
    woke the process and the deadline event's value (``None``) when the
    deadline passed first.  ``deadline`` is an **absolute** virtual time
    (scheduled exactly, without float re-derivation) or ``None`` to park
    until fired.

Tick alignment
--------------

A converted loop must keep every observable virtual time bit-identical
to the polling version it replaces.  :func:`next_tick` computes where a
``yield timeout(interval)`` spinner starting at ``epoch`` would next wake
after an event at time ``after`` — by replaying the same sequential
float additions the spinner would have performed, so the result is
bit-identical even where ``epoch + k*interval`` is not.  The woken loop
then sleeps until that boundary (``Environment.timeout_until``) and runs
its body there, indistinguishable from a loop that never stopped
polling — except for the thousands of idle heap events it no longer
schedules (counted in ``profile.counters.poll_ticks_skipped``).
"""

from __future__ import annotations

import typing as _t

from repro.sim.environment import Environment, Process
from repro.sim.events import Event, SimulationError
from repro.sim.profile import counters as _counters


class _Fired:
    """Sentinel delivered to a parked process woken by ``fire()``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<Signal.FIRED>"


def next_tick(epoch: float, interval: float, after: float) -> tuple[float, int]:
    """First tick boundary strictly after ``after`` on the grid a
    ``yield timeout(interval)`` loop starting at ``epoch`` would produce.

    Replays the spinner's sequential additions (``t += interval``) so the
    boundary is bit-identical to the polling loop's wake time even when
    float rounding makes ``epoch + k*interval`` differ.  Returns
    ``(boundary, skipped)`` where ``skipped`` counts the idle polls the
    spinner would have executed in ``(epoch, after]``.

    "Strictly after" mirrors event-queue sequence order: a state change
    landing exactly on a boundary was produced by an event scheduled
    *later* than the spinner's tick for that boundary, so the spinner
    would only have observed it one interval later.
    """
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    t = epoch + interval
    skipped = 0
    while t <= after:
        t += interval
        skipped += 1
    return t, skipped


def count_skipped_ticks(n: int) -> None:
    """Record ``n`` avoided idle polls in the profiling counters."""
    if _counters.enabled and n:
        _counters.poll_ticks_skipped += n


class Signal:
    """A cancellable, multi-waiter wakeup for tickless control loops."""

    #: value delivered to a parked process woken by :meth:`fire`
    FIRED: _t.ClassVar[_Fired] = _Fired()

    __slots__ = ("env", "latch", "_waiters", "_parked", "_pending", "_pending_value",
                 "_last_fired")

    def __init__(self, env: Environment, latch: bool = False):
        self.env = env
        self.latch = latch
        self._waiters: list[Event] = []
        #: token event -> parked process, for direct resumes
        self._parked: dict[Event, Process] = {}
        self._pending = False
        self._pending_value: object = None
        #: events succeeded by the most recent fire; while any is still
        #: unprocessed, further fires coalesce into it (bell semantics)
        self._last_fired: list[Event] = []

    @property
    def waiting(self) -> int:
        """Number of registered waiters (events and parked processes)."""
        return len(self._waiters) + len(self._parked)

    # -- event-style waiting ------------------------------------------------
    def wait(self) -> Event:
        """An event the next :meth:`fire` triggers (or, with ``latch``,
        one already triggered by a fire nobody was around to hear)."""
        event = Event(self.env)
        if self._pending:
            self._pending = False
            event.succeed(self._pending_value)
            self._pending_value = None
        else:
            self._waiters.append(event)
        return event

    def cancel(self, event: Event) -> bool:
        """Deregister a :meth:`wait` event; returns False if it already
        fired (or was never a waiter)."""
        try:
            self._waiters.remove(event)
            return True
        except ValueError:
            return False

    # -- direct-resume parking ----------------------------------------------
    def park(self, deadline: float | None = None) -> Event:
        """Park the active process until :meth:`fire` or ``deadline``.

        The caller **must immediately yield the returned token**.  The
        yield delivers :data:`Signal.FIRED` if the signal woke the
        process and ``None`` if the (absolute virtual time) deadline
        passed.  Call :meth:`unpark` with the token after waking.
        """
        process = self.env.active_process
        if process is None:
            raise SimulationError("park() must be called from a running process")
        if deadline is None:
            token = Event(self.env)
        else:
            token = self.env.timeout_until(deadline)
        self._parked[token] = process
        if _counters.enabled:
            _counters.parked_processes += 1
        return token

    def unpark(self, token: Event) -> bool:
        """Drop a park registration (idempotent); call after waking."""
        return self._parked.pop(token, None) is not None

    # -- producers ----------------------------------------------------------
    def fire(self, value: object = None) -> int:
        """Wake every current waiter; returns how many were woken.

        ``wait()`` waiters are succeeded with ``value`` through the
        zero-delay FIFO; parked processes are resumed directly with
        :data:`Signal.FIRED`.  With ``latch=True`` an unheard fire is
        remembered for the next ``wait()`` — unless a just-fired waiter
        has not resumed yet, in which case the fire coalesces with it.
        """
        woken = 0
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            self._last_fired = waiters
            for event in waiters:
                if not event.triggered:
                    event.succeed(value)
                    woken += 1
        if self._parked:
            parked, self._parked = self._parked, {}
            env = self.env
            for token, process in parked.items():
                # Stale registrations (deadline already fired, process
                # interrupted away) no longer target their token.
                if process._target is not token or token.callbacks is None:
                    continue
                try:
                    token.callbacks.remove(process._resume)
                except ValueError:
                    continue
                process._pending_resume = env._schedule_resume(process, Signal.FIRED, None)
                woken += 1
        if woken:
            if _counters.enabled:
                _counters.wakeups_fired += woken
        elif self.latch and not any(not ev.processed for ev in self._last_fired):
            self._pending = True
            self._pending_value = value
        return woken

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Signal waiting={self.waiting} pending={self._pending}"
                f"{' latch' if self.latch else ''}>")
