"""Workload manager (Slurm-like): jobs, partitions, FIFO+backfill
scheduling, allocations with cgroup and device setup, job steps,
accounting, and the SPANK plugin interface used for container
integration (Tables 3, §6)."""

from repro.wlm.jobs import Job, JobSpec, JobState, JobStep
from repro.wlm.nodes import NodeState, WLMNode
from repro.wlm.scheduler import BackfillScheduler
from repro.wlm.accounting import AccountingDB, AccountingRecord
from repro.wlm.spank import SpankContext, SpankError, SpankPlugin
from repro.wlm.slurm import SlurmController, WLMError

__all__ = [
    "AccountingDB",
    "AccountingRecord",
    "BackfillScheduler",
    "Job",
    "JobSpec",
    "JobState",
    "JobStep",
    "NodeState",
    "SlurmController",
    "SpankContext",
    "SpankError",
    "SpankPlugin",
    "WLMError",
    "WLMNode",
]
