"""Job accounting (sacct).

Accounting fidelity is the WLM's trump card in the Kubernetes
integration debate (§6: "particularly crucial in regards to the
accounting of used resources") — scenarios are scored on whether
container workloads show up here.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.wlm.jobs import Job, JobState


@dataclasses.dataclass(frozen=True)
class AccountingRecord:
    job_id: int
    job_name: str
    user_uid: int
    partition: str
    nodes: int
    state: str
    submit_time: float
    start_time: float | None
    end_time: float | None
    elapsed: float
    cpu_seconds: float
    gpu_seconds: float
    #: free-form payload attribution (e.g. "kubernetes-pod:<name>")
    comment: str = ""


class AccountingDB:
    """sacct-style job accounting store."""

    def __init__(self) -> None:
        self._records: list[AccountingRecord] = []

    def record_job(self, job: Job, cores_per_node: int, comment: str = "") -> AccountingRecord:
        if job.start_time is None or job.end_time is None:
            raise ValueError(f"job {job.job_id} has not finished; cannot account")
        elapsed = job.end_time - job.start_time
        record = AccountingRecord(
            job_id=job.job_id,
            job_name=job.spec.name,
            user_uid=job.spec.user_uid,
            partition=job.spec.partition,
            nodes=len(job.allocated_nodes),
            state=job.state.value,
            submit_time=job.submit_time,
            start_time=job.start_time,
            end_time=job.end_time,
            elapsed=elapsed,
            cpu_seconds=elapsed * cores_per_node * len(job.allocated_nodes),
            gpu_seconds=elapsed * job.spec.gpus_per_node * len(job.allocated_nodes),
            comment=comment,
        )
        self._records.append(record)
        return record

    # -- queries -------------------------------------------------------------
    def all(self) -> list[AccountingRecord]:
        return list(self._records)

    def for_user(self, uid: int) -> list[AccountingRecord]:
        return [r for r in self._records if r.user_uid == uid]

    def total_cpu_seconds(self, uid: int | None = None) -> float:
        return sum(r.cpu_seconds for r in self._records if uid is None or r.user_uid == uid)

    def total_gpu_seconds(self, uid: int | None = None) -> float:
        return sum(r.gpu_seconds for r in self._records if uid is None or r.user_uid == uid)

    def by_comment_prefix(self, prefix: str) -> list[AccountingRecord]:
        return [r for r in self._records if r.comment.startswith(prefix)]

    def __len__(self) -> int:
        return len(self._records)
