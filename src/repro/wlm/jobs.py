"""Job specifications, jobs, and job steps."""

from __future__ import annotations

import dataclasses
import enum
import typing as _t


class JobState(enum.Enum):
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMEOUT = "TIMEOUT"
    #: a node of the allocation died; transient if the job is requeued
    #: (the state log shows NODE_FAIL -> PENDING), terminal otherwise
    NODE_FAIL = "NODE_FAIL"

    @property
    def is_terminal(self) -> bool:
        return self in (
            JobState.COMPLETED,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMEOUT,
            JobState.NODE_FAIL,
        )


@dataclasses.dataclass
class JobSpec:
    """sbatch-style submission."""

    name: str
    user_uid: int
    nodes: int = 1
    cores_per_node: int = 0          # 0 = all cores (exclusive default)
    gpus_per_node: int = 0
    #: wall-clock duration of the payload in simulated seconds; None means
    #: "runs until cancelled" (services such as kubelets, §6.5)
    duration: float | None = 60.0
    time_limit: float = 24 * 3600.0
    partition: str = "batch"
    exclusive: bool = True
    priority: int = 0
    #: requeue rather than fail when an allocated node dies (JobRequeue=1)
    requeue: bool = True
    #: called on each allocated node at job start: fn(node, job, user_proc)
    on_start: _t.Callable | None = None
    #: called at job end: fn(job)
    on_end: _t.Callable | None = None
    #: called just before the job is requeued (node failure or preemption),
    #: while ``allocated_nodes``/``node_procs`` still reflect the lost
    #: allocation: fn(job).  Service jobs use this to tear down per-node
    #: components (e.g. kubelets) that survive on healthy nodes.
    on_requeue: _t.Callable | None = None


@dataclasses.dataclass
class JobStep:
    """An srun step within an allocation."""

    step_id: int
    argv: tuple[str, ...]
    nodes: list[str]
    start_time: float
    end_time: float | None = None
    exit_code: int | None = None


class Job:
    def __init__(self, job_id: int, spec: JobSpec, submit_time: float):
        self.job_id = job_id
        self.spec = spec
        self.state = JobState.PENDING
        self.submit_time = submit_time
        self.start_time: float | None = None
        self.end_time: float | None = None
        self.allocated_nodes: list[str] = []
        self.steps: list[JobStep] = []
        self.exit_code: int | None = None
        #: per-node user processes created by the allocation
        self.node_procs: dict[str, object] = {}
        #: times this job went back to PENDING after losing a node
        self.requeue_count = 0
        self.state_log: list[tuple[float, JobState]] = [(submit_time, JobState.PENDING)]

    def set_state(self, state: JobState, now: float) -> None:
        self.state = state
        self.state_log.append((now, state))

    @property
    def elapsed(self) -> float | None:
        if self.start_time is None:
            return None
        end = self.end_time if self.end_time is not None else None
        return None if end is None else end - self.start_time

    @property
    def wait_time(self) -> float | None:
        return None if self.start_time is None else self.start_time - self.submit_time

    def __repr__(self) -> str:
        return f"<Job {self.job_id} {self.spec.name!r} {self.state.value}>"
