"""WLM node state wrapping the hardware model."""

from __future__ import annotations

import enum

from repro.cluster.node import HostNode


class NodeState(enum.Enum):
    IDLE = "idle"
    ALLOCATED = "alloc"
    MIXED = "mix"
    DRAINING = "drng"
    DRAINED = "drain"
    DOWN = "down"


class WLMNode:
    """A compute node as the WLM sees it."""

    def __init__(self, host: HostNode, partition: str = "batch"):
        self.host = host
        self.partition = partition
        self.state = NodeState.IDLE
        #: job ids holding cores here -> cores held
        self.allocations: dict[int, int] = {}
        self.drain_reason: str | None = None

    @property
    def name(self) -> str:
        return self.host.name

    @property
    def total_cores(self) -> int:
        return self.host.cpu.cores

    @property
    def free_cores(self) -> int:
        return self.total_cores - sum(self.allocations.values())

    @property
    def gpu_count(self) -> int:
        return len(self.host.gpus)

    def can_host(self, cores: int, gpus: int, exclusive: bool) -> bool:
        if self.state in (NodeState.DOWN, NodeState.DRAINING, NodeState.DRAINED):
            return False
        if gpus > self.gpu_count:
            return False
        if exclusive:
            return not self.allocations
        return self.free_cores >= cores

    def allocate(self, job_id: int, cores: int) -> None:
        self.allocations[job_id] = cores
        self.state = (
            NodeState.ALLOCATED if self.free_cores == 0 else NodeState.MIXED
        )

    def release(self, job_id: int) -> None:
        self.allocations.pop(job_id, None)
        if self.state is NodeState.DOWN:
            # A crashed job releasing its allocation must not resurrect
            # the node; only fail()/resume() move a node out of DOWN.
            return
        if not self.allocations:
            if self.state is NodeState.DRAINING:
                self.state = NodeState.DRAINED
            elif self.state is not NodeState.DRAINED:
                self.state = NodeState.IDLE
        else:
            self.state = NodeState.MIXED

    def drain(self, reason: str = "") -> None:
        self.drain_reason = reason
        self.state = NodeState.DRAINING if self.allocations else NodeState.DRAINED

    def fail(self, reason: str = "node failure") -> None:
        """Hard-down the node (crash, not an administrative drain)."""
        self.drain_reason = reason
        self.state = NodeState.DOWN

    def resume(self) -> None:
        self.drain_reason = None
        self.state = NodeState.IDLE if not self.allocations else NodeState.MIXED

    def __repr__(self) -> str:
        return f"<WLMNode {self.name} {self.state.value} jobs={list(self.allocations)}>"
