"""Concrete SPANK container plugins: Shifter's and ENROOT's pyxis.

Table 3's "WLM Integration: yes / SPANK plugin" rows, as working code:
``srun --shifter-image=repo:tag app`` and ``srun --container-image=...``
start the task inside a container transparently.
"""

from __future__ import annotations

import typing as _t

from repro.engines.enroot import EnrootEngine
from repro.engines.shifter import ShifterEngine
from repro.registry.distribution import OCIDistributionRegistry
from repro.wlm.spank import SpankContext, SpankError, SpankPlugin


class ShifterSpankPlugin(SpankPlugin):
    """--image=<repo:tag>: run the step inside a Shifter container."""

    name = "shifter"
    option_key = "shifter_image"

    def __init__(self, engines: dict[str, ShifterEngine], registry: OCIDistributionRegistry):
        #: node name -> engine instance on that node
        self.engines = engines
        self.registry = registry

    def task_init(self, ctx: SpankContext) -> None:
        image_ref = ctx.options.get(self.option_key)
        if image_ref is None:
            return  # plain (non-container) step
        engine = self.engines.get(ctx.node.name)
        if engine is None:
            raise SpankError(f"shifter not deployed on node {ctx.node.name}")
        repo, _, tag = image_ref.partition(":")
        pulled = engine.pull(repo, tag or "latest", self.registry)
        ctx.run_result = engine.run(pulled, ctx.user_proc)

    def task_exit(self, ctx: SpankContext) -> None:
        result = ctx.run_result
        if result is not None and result.container.state.value == "running":
            engine = self.engines[ctx.node.name]
            engine.runtime.finish(result.container)


class PyxisSpankPlugin(SpankPlugin):
    """NVIDIA pyxis: --container-image for ENROOT."""

    name = "pyxis"
    option_key = "container_image"

    def __init__(self, engines: dict[str, EnrootEngine], registry: OCIDistributionRegistry):
        self.engines = engines
        self.registry = registry

    def task_init(self, ctx: SpankContext) -> None:
        image_ref = ctx.options.get(self.option_key)
        if image_ref is None:
            return
        engine = self.engines.get(ctx.node.name)
        if engine is None:
            raise SpankError(f"enroot not deployed on node {ctx.node.name}")
        repo, _, tag = image_ref.partition(":")
        pulled = engine.pull(repo, tag or "latest", self.registry)
        from repro.oci.image import OCIImage

        assert isinstance(pulled.image, OCIImage)
        engine.import_image(image_ref, pulled.image)  # pyxis imports on the fly
        ctx.run_result = engine.run(pulled, ctx.user_proc)

    def task_exit(self, ctx: SpankContext) -> None:
        result = ctx.run_result
        if result is not None and result.container.state.value == "running":
            engine = self.engines[ctx.node.name]
            engine.runtime.finish(result.container)
