"""FIFO + conservative backfill scheduling."""

from __future__ import annotations

import typing as _t

from repro.obs import metrics as _metrics
from repro.wlm.jobs import Job
from repro.wlm.nodes import NodeState, WLMNode


class BackfillScheduler:
    """Priority-FIFO with backfill.

    The head-of-queue job reserves the earliest time enough nodes free
    up; later jobs may start now only if they fit on idle nodes *and*
    finish before that reservation (conservative backfill on declared
    time limits).
    """

    def __init__(self, backfill: bool = True):
        self.backfill = backfill

    @staticmethod
    def _fits(job: Job, nodes: list[WLMNode]) -> list[WLMNode] | None:
        spec = job.spec
        usable = [
            n
            for n in nodes
            if n.partition == spec.partition
            and n.can_host(spec.cores_per_node or n.total_cores, spec.gpus_per_node, spec.exclusive)
        ]
        if len(usable) >= spec.nodes:
            return usable[: spec.nodes]
        return None

    def schedule(
        self,
        queue: _t.Sequence[Job],
        nodes: list[WLMNode],
        now: float,
        running: _t.Sequence[Job] = (),
    ) -> list[tuple[Job, list[WLMNode]]]:
        """Return (job, nodes) placements to start now."""
        decisions: list[tuple[Job, list[WLMNode]]] = []
        pending = sorted(
            queue, key=lambda j: (-j.spec.priority, j.submit_time, j.job_id)
        )
        if not pending:
            return decisions

        blocked_at: float | None = None  # shadow time of the blocked head job
        for i, job in enumerate(pending):
            placement = self._fits(job, nodes)
            if placement is not None:
                if blocked_at is None:
                    # Head of (remaining) queue: start immediately.
                    pass
                else:
                    if not self.backfill:
                        continue
                    # Backfill: must finish before the reservation.
                    if now + job.spec.time_limit > blocked_at:
                        continue
                    if _metrics.registry.enabled:
                        # A start *behind* a blocked head is a backfill win.
                        _metrics.inc("wlm.backfill.starts")
                decisions.append((job, placement))
                for n in placement:
                    n.allocate(job.job_id, job.spec.cores_per_node or n.total_cores)
            elif blocked_at is None:
                blocked_at = self._shadow_time(job, nodes, running, now)
                if blocked_at is None:
                    blocked_at = float("inf")
                if _metrics.registry.enabled:
                    _metrics.inc("wlm.sched.head_blocked")
        # Undo the tentative allocations; the controller re-applies them.
        for job, placement in decisions:
            for n in placement:
                n.release(job.job_id)
        return decisions

    @staticmethod
    def _shadow_time(job: Job, nodes: list[WLMNode], running: _t.Sequence[Job], now: float) -> float | None:
        """Earliest time the blocked job could start, assuming running
        jobs end at their time limits."""
        ends = sorted(
            (r.start_time or now) + r.spec.time_limit
            for r in running
            if r.start_time is not None
        )
        free = sum(
            1
            for n in nodes
            if n.partition == job.spec.partition and n.state is NodeState.IDLE
        )
        needed = job.spec.nodes - free
        if needed <= 0:
            return now
        if needed > len(ends):
            return None
        return ends[needed - 1]
