"""FIFO + conservative backfill scheduling.

Placement runs in one of two modes sharing a single contract:

- the retained **linear** mode (``indexed=False``) re-scans the whole
  node list per job, and re-sorts every running job's projected end
  per blocked head — the pre-optimization oracle;
- the default **indexed** mode builds a per-pass availability index
  (position-ordered lazy-deletion heaps bucketed by free cores, plus a
  full-free heap for exclusive/whole-node requests) so a feasibility
  query costs O(matches · log nodes), and reads the blocked head's
  shadow time from the controller's :class:`CompletionCalendar`
  (maintained at job start/end) instead of sorting ``running`` per
  pass.

Both modes return identical placements in identical (node-list
position) order for every input — ``tests/wlm/test_backfill_index.py``
holds them equal by property test.
"""

from __future__ import annotations

import bisect
import heapq
import typing as _t

from repro.obs import metrics as _metrics
from repro.sim import profile as _profile
from repro.wlm.jobs import Job, JobSpec
from repro.wlm.nodes import NodeState, WLMNode

#: rejected-candidate pops beyond which a query counts as a linear
#: fallback (the index stopped short-circuiting)
_FALLBACK_POPS = 32


class CompletionCalendar:
    """Sorted projected end times of running jobs.

    The controller adds a job when it starts (``start_time +
    time_limit``) and removes it on teardown or requeue, so a blocked
    head's shadow time is a single indexed read instead of an
    O(running log running) sort per scheduler pass.
    """

    __slots__ = ("_ends", "_by_job")

    def __init__(self) -> None:
        #: ascending (end_time, job_id) pairs
        self._ends: list[tuple[float, int]] = []
        self._by_job: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._ends)

    def add(self, job_id: int, end_time: float) -> None:
        self._by_job[job_id] = end_time
        bisect.insort(self._ends, (end_time, job_id))

    def remove(self, job_id: int) -> None:
        end_time = self._by_job.pop(job_id, None)
        if end_time is None:
            return
        i = bisect.bisect_left(self._ends, (end_time, job_id))
        if i < len(self._ends) and self._ends[i] == (end_time, job_id):
            del self._ends[i]

    def kth_end(self, k: int) -> float:
        """The ``k``-th (0-based) earliest projected end."""
        return self._ends[k][0]


class _AvailabilityIndex:
    """Per-pass snapshot index over a node list.

    Buckets node *positions* by current free cores (plus a full-free
    heap for whole-node/exclusive queries) with lazy deletion: a
    mutation bumps the position's sequence number and pushes a fresh
    entry, stale entries are discarded at pop.  Queries return
    candidates in ascending position — exactly the node-list order the
    linear scan uses — and every candidate is re-verified against the
    live node, so the index only has to be a superset.
    """

    __slots__ = ("nodes", "seq", "cap", "buckets", "full_free", "_idle", "_was_idle")

    def __init__(self, nodes: list[WLMNode]):
        self.nodes = nodes
        self.seq = [0] * len(nodes)
        self.cap = max((n.total_cores for n in nodes), default=0)
        # Built in position order, so each bucket list is ascending —
        # already a valid heap without heapify.
        buckets: list[list[tuple[int, int]]] = [[] for _ in range(self.cap + 1)]
        full_free: list[tuple[int, int]] = []
        idle: dict[str, int] = {}
        was_idle = [False] * len(nodes)
        for pos, node in enumerate(nodes):
            free = node.free_cores
            if 0 <= free <= self.cap:
                buckets[free].append((pos, 0))
            if free >= node.total_cores:
                full_free.append((pos, 0))
            if node.state is NodeState.IDLE:
                idle[node.partition] = idle.get(node.partition, 0) + 1
                was_idle[pos] = True
        self.buckets = buckets
        self.full_free = full_free
        self._idle = idle
        self._was_idle = was_idle

    def idle_count(self, partition: str) -> int:
        return self._idle.get(partition, 0)

    def touch(self, pos: int) -> None:
        """Re-index position ``pos`` after the caller mutated its node."""
        node = self.nodes[pos]
        seq = self.seq[pos] + 1
        self.seq[pos] = seq
        free = node.free_cores
        if 0 <= free <= self.cap:
            heapq.heappush(self.buckets[free], (pos, seq))
        if free >= node.total_cores:
            heapq.heappush(self.full_free, (pos, seq))
        is_idle = node.state is NodeState.IDLE
        if is_idle != self._was_idle[pos]:
            self._was_idle[pos] = is_idle
            self._idle[node.partition] = (
                self._idle.get(node.partition, 0) + (1 if is_idle else -1)
            )

    # -- queries -------------------------------------------------------------
    def place(self, spec: JobSpec) -> list[WLMNode] | None:
        """First ``spec.nodes`` usable nodes in position order, or None.

        Identical to the linear scan's ``usable[: spec.nodes]`` for
        every input: candidates stream in ascending position and each
        is verified with the same ``partition`` + ``can_host`` predicate.
        """
        nodes = self.nodes
        seqs = self.seq
        want = spec.nodes
        chosen: list[WLMNode] = []
        chosen_entries: list[tuple[int, tuple[int, int]]] = []
        rejected: list[tuple[int, tuple[int, int]]] = []
        whole_node = spec.exclusive or spec.cores_per_node is None

        if whole_node:
            heap = self.full_free
            while heap:
                entry = heap[0]
                pos, seq = entry
                if seqs[pos] != seq:
                    heapq.heappop(heap)
                    continue
                heapq.heappop(heap)
                node = nodes[pos]
                req = spec.cores_per_node or node.total_cores
                if node.partition == spec.partition and node.can_host(
                    req, spec.gpus_per_node, spec.exclusive
                ):
                    chosen.append(node)
                    chosen_entries.append((-1, entry))
                    if len(chosen) == want:
                        break
                else:
                    rejected.append((-1, entry))
        else:
            cores = spec.cores_per_node
            buckets = self.buckets
            # k-way merge of the level heaps >= cores, ascending position.
            merge: list[tuple[int, int, int]] = []
            for level in range(cores, self.cap + 1):
                h = buckets[level]
                while h and seqs[h[0][0]] != h[0][1]:
                    heapq.heappop(h)
                if h:
                    heapq.heappush(merge, (h[0][0], h[0][1], level))
            while merge:
                pos, seq, level = heapq.heappop(merge)
                h = buckets[level]
                heapq.heappop(h)
                while h and seqs[h[0][0]] != h[0][1]:
                    heapq.heappop(h)
                if h:
                    heapq.heappush(merge, (h[0][0], h[0][1], level))
                if seqs[pos] != seq:
                    continue
                node = nodes[pos]
                if node.partition == spec.partition and node.can_host(
                    cores, spec.gpus_per_node, spec.exclusive
                ):
                    chosen.append(node)
                    chosen_entries.append((level, (pos, seq)))
                    if len(chosen) == want:
                        break
                else:
                    rejected.append((level, (pos, seq)))

        counters = _profile.counters
        if counters.enabled:
            if len(rejected) > _FALLBACK_POPS:
                counters.sched_linear_fallbacks += 1
            elif len(chosen) == want:
                counters.sched_index_hits += 1

        # Rejected-but-live entries stay available for later jobs in
        # the same pass; a failed query also returns its candidates.
        restore = rejected if len(chosen) == want else rejected + chosen_entries
        for level, entry in restore:
            if level < 0:
                heapq.heappush(self.full_free, entry)
            else:
                heapq.heappush(self.buckets[level], entry)
        if len(chosen) == want:
            # Chosen entries are consumed: the caller allocates these
            # nodes and calls touch(), which pushes fresh entries.
            return chosen
        return None


class BackfillScheduler:
    """Priority-FIFO with backfill.

    The head-of-queue job reserves the earliest time enough nodes free
    up; later jobs may start now only if they fit on idle nodes *and*
    finish before that reservation (conservative backfill on declared
    time limits).
    """

    def __init__(self, backfill: bool = True, indexed: bool = True):
        self.backfill = backfill
        self.indexed = indexed

    @staticmethod
    def _fits(job: Job, nodes: list[WLMNode]) -> list[WLMNode] | None:
        spec = job.spec
        usable = [
            n
            for n in nodes
            if n.partition == spec.partition
            and n.can_host(spec.cores_per_node or n.total_cores, spec.gpus_per_node, spec.exclusive)
        ]
        if len(usable) >= spec.nodes:
            return usable[: spec.nodes]
        return None

    def schedule(
        self,
        queue: _t.Sequence[Job],
        nodes: list[WLMNode],
        now: float,
        running: _t.Sequence[Job] = (),
        calendar: CompletionCalendar | None = None,
    ) -> list[tuple[Job, list[WLMNode]]]:
        """Return (job, nodes) placements to start now."""
        decisions: list[tuple[Job, list[WLMNode]]] = []
        pending = sorted(
            queue, key=lambda j: (-j.spec.priority, j.submit_time, j.job_id)
        )
        if not pending:
            return decisions

        index = _AvailabilityIndex(nodes) if self.indexed else None
        positions: dict[int, int] | None = None

        blocked_at: float | None = None  # shadow time of the blocked head job
        for i, job in enumerate(pending):
            if index is not None:
                placement = index.place(job.spec)
            else:
                placement = self._fits(job, nodes)
            if placement is not None:
                if blocked_at is None:
                    # Head of (remaining) queue: start immediately.
                    pass
                else:
                    # Backfill: must finish before the reservation.
                    if not self.backfill or now + job.spec.time_limit > blocked_at:
                        if index is not None:
                            # place() consumed the candidates' heap
                            # entries; re-index so later jobs in this
                            # pass still see these (unallocated) nodes.
                            if positions is None:
                                positions = {id(n): pos for pos, n in enumerate(nodes)}
                            for n in placement:
                                index.touch(positions[id(n)])
                        continue
                    if _metrics.registry.enabled:
                        # A start *behind* a blocked head is a backfill win.
                        _metrics.inc("wlm.backfill.starts")
                decisions.append((job, placement))
                for n in placement:
                    n.allocate(job.job_id, job.spec.cores_per_node or n.total_cores)
                if index is not None:
                    if positions is None:
                        positions = {id(n): pos for pos, n in enumerate(nodes)}
                    for n in placement:
                        index.touch(positions[id(n)])
            elif blocked_at is None:
                blocked_at = self._shadow_time(
                    job, nodes, running, now, calendar=calendar, index=index
                )
                if blocked_at is None:
                    blocked_at = float("inf")
                if _metrics.registry.enabled:
                    _metrics.inc("wlm.sched.head_blocked")
        # Undo the tentative allocations; the controller re-applies them.
        for job, placement in decisions:
            for n in placement:
                n.release(job.job_id)
        return decisions

    @staticmethod
    def _shadow_time(
        job: Job,
        nodes: list[WLMNode],
        running: _t.Sequence[Job],
        now: float,
        calendar: CompletionCalendar | None = None,
        index: "_AvailabilityIndex | None" = None,
    ) -> float | None:
        """Earliest time the blocked job could start, assuming running
        jobs end at their time limits."""
        if index is not None:
            free = index.idle_count(job.spec.partition)
        else:
            free = sum(
                1
                for n in nodes
                if n.partition == job.spec.partition and n.state is NodeState.IDLE
            )
        needed = job.spec.nodes - free
        if needed <= 0:
            return now
        if calendar is not None:
            if needed > len(calendar):
                return None
            return calendar.kth_end(needed - 1)
        ends = sorted(
            (r.start_time or now) + r.spec.time_limit
            for r in running
            if r.start_time is not None
        )
        if needed > len(ends):
            return None
        return ends[needed - 1]
