"""The Slurm-like workload manager controller.

Runs as a discrete-event process: submissions kick the scheduler, jobs
occupy nodes for their (virtual) duration, allocations set up cgroups,
device grants, and per-node user processes, and completed jobs land in
accounting.  Service jobs (``duration=None``) run until cancelled — the
§6 scenarios use them to host kubelets inside allocations.
"""

from __future__ import annotations

import itertools
import typing as _t

from repro.cluster.node import HostNode
from repro.faults.injector import injector as _faults
from repro.kernel.cgroups import Controller
from repro.kernel.process import SimProcess
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.sim import Environment, Interrupt, Signal
from repro.wlm.accounting import AccountingDB
from repro.wlm.jobs import Job, JobSpec, JobState, JobStep
from repro.wlm.nodes import NodeState, WLMNode
from repro.wlm.scheduler import BackfillScheduler, CompletionCalendar
from repro.wlm.spank import SpankContext, SpankStack


class WLMError(RuntimeError):
    pass


class SlurmController:
    """The central daemon: queue, scheduler, allocations, accounting."""

    #: overhead for setting up one node of an allocation (cgroups, prolog)
    node_setup_cost = 0.3
    #: scheduler pass latency
    sched_latency = 0.05

    def __init__(
        self,
        env: Environment,
        hosts: _t.Sequence[HostNode],
        partition: str = "batch",
        backfill: bool = True,
        preemption: bool = False,
        indexed: bool = True,
    ):
        #: PreemptMode=REQUEUE: a higher-priority job may requeue running
        #: lower-priority jobs when it cannot otherwise be placed (§6)
        self.preemption = preemption
        self.env = env
        self.nodes = [WLMNode(h, partition) for h in hosts]
        self.partition = partition
        self.scheduler = BackfillScheduler(backfill=backfill, indexed=indexed)
        #: projected end times of running jobs; feeds the indexed
        #: scheduler's shadow-time lookup
        self._calendar = CompletionCalendar()
        self.accounting = AccountingDB()
        self.spank = SpankStack()
        self.queue: list[Job] = []
        self.running: dict[int, Job] = {}
        self._jobs: dict[int, Job] = {}
        self._job_counter = itertools.count(1)
        self._step_counter = itertools.count(0)
        # Latching signal == the recreate-an-event "bell" pattern: rings
        # while a pass is in flight coalesce into the next wait().
        self._bell = Signal(env, latch=True)
        #: fired on every job state transition (tickless status mirrors
        #: park on this instead of polling squeue)
        self.job_state = Signal(env)
        self._busy_integral = 0.0
        self._busy_nodes = 0
        self._last_change = env.now
        if _faults.enabled:
            _faults.register("wlm.node", self._on_node_fault)
        env.process(self._scheduler_loop(), name="slurmctld")

    # ------------------------------------------------------------- submission
    def submit(self, spec: JobSpec) -> Job:
        """Queue a job (sbatch) and kick the scheduler.

        Returns the pending :class:`~repro.wlm.jobs.Job` immediately;
        placement happens asynchronously on the next scheduler pass.
        Raises :class:`WLMError` if the spec can never be satisfied by
        this partition (zero nodes, or more nodes than exist).
        """
        if spec.nodes < 1:
            raise WLMError("a job needs at least one node")
        if spec.nodes > len(self.nodes):
            raise WLMError(
                f"job wants {spec.nodes} nodes, partition has {len(self.nodes)}"
            )
        job = Job(next(self._job_counter), spec, submit_time=self.env.now)
        self._jobs[job.job_id] = job
        self.queue.append(job)
        self._ring()
        self.job_state.fire(job)
        return job

    def cancel(self, job: Job) -> None:
        """scancel: dequeue a pending job or interrupt a running one.

        Running jobs go through the normal teardown path (nodes
        released, accounting recorded) with state CANCELLED; terminal
        jobs are left untouched.
        """
        if job.state is JobState.PENDING:
            self.queue.remove(job)
            job.set_state(JobState.CANCELLED, self.env.now)
            self.job_state.fire(job)
        elif job.state is JobState.RUNNING:
            proc = getattr(job, "_sim_process", None)
            if proc is not None and proc.is_alive:
                proc.interrupt(cause="scancel")
        # terminal states: no-op

    def job(self, job_id: int) -> Job:
        return self._jobs[job_id]

    # ------------------------------------------------------------- scheduling
    def _ring(self) -> None:
        self._bell.fire()

    def _scheduler_loop(self):
        while True:
            yield self._bell.wait()
            yield self.env.timeout(self.sched_latency)
            decisions = self.scheduler.schedule(
                self.queue,
                self.nodes,
                self.env.now,
                running=list(self.running.values()),
                calendar=self._calendar if self.scheduler.indexed else None,
            )
            if _trace.tracer.enabled:
                # The pass's think time elapsed just before the decision.
                _trace.tracer.complete_at(
                    "wlm.schedule_pass",
                    self.env.now - self.sched_latency,
                    self.sched_latency,
                    queued=len(self.queue),
                    started=len(decisions),
                )
            if _metrics.registry.enabled:
                _metrics.inc("wlm.schedule_passes")
                _metrics.inc("wlm.jobs_started", len(decisions))
            for job, placement in decisions:
                self.queue.remove(job)
                _trace.tracer.instant(
                    "wlm.job_start", job=job.job_id, nodes=len(placement)
                )
                self.env.process(self._run_job(job, placement), name=f"job-{job.job_id}")
            if self.preemption and self.queue:
                self._try_preempt()

    def _try_preempt(self) -> None:
        """Requeue lower-priority running jobs to place the queue head."""
        head = max(self.queue, key=lambda j: (j.spec.priority, -j.job_id))
        victims = sorted(
            (j for j in self.running.values() if j.spec.priority < head.spec.priority),
            key=lambda j: j.spec.priority,
        )
        if not victims:
            return
        free = sum(1 for n in self.nodes if not n.allocations
                   and n.partition == head.spec.partition)
        to_requeue = []
        freed = 0
        for victim in victims:
            if free + freed >= head.spec.nodes:
                break
            to_requeue.append(victim)
            freed += len(victim.allocated_nodes)
        if free + freed < head.spec.nodes:
            return  # preempting would not be enough; leave everyone alone
        for victim in to_requeue:
            proc = getattr(victim, "_sim_process", None)
            if proc is not None and proc.is_alive:
                proc.interrupt(cause="preemption")

    def _account_busy(self, delta_nodes: int) -> None:
        now = self.env.now
        self._busy_integral += self._busy_nodes * (now - self._last_change)
        self._busy_nodes += delta_nodes
        self._last_change = now

    # ------------------------------------------------------------- job lifecycle
    def _run_job(self, job: Job, placement: list[WLMNode]):
        spec = job.spec
        job._sim_process = self.env.active_process  # type: ignore[attr-defined]
        for node in placement:
            node.allocate(job.job_id, spec.cores_per_node or node.total_cores)
        job.allocated_nodes = [n.name for n in placement]
        self.running[job.job_id] = job
        self._account_busy(len(placement))

        # Per-node setup: cgroup, user process, device grants, delegation.
        with _trace.span("wlm.allocation_setup", job=job.job_id, nodes=len(placement)):
            yield self.env.timeout(self.node_setup_cost)
        for node in placement:
            kernel = node.host.kernel
            cg_path = f"/slurm/uid_{spec.user_uid}/job_{job.job_id}"
            cg = kernel.cgroups.create(cg_path)
            cores = spec.cores_per_node or node.total_cores
            kernel.cgroups.set_limit(cg_path, Controller.CPU, float(cores))
            user_proc = kernel.spawn(parent=kernel.init, uid=spec.user_uid,
                                     argv=("slurmstepd", spec.name))
            kernel.cgroups.attach(cg_path, user_proc.pid)
            if kernel.config.cgroup_version == 2 and kernel.config.cgroup_delegation:
                kernel.cgroups.delegate(cg_path, uid=spec.user_uid)
            for gpu in node.host.gpus[: spec.gpus_per_node]:
                kernel.grant_device(user_proc, gpu.device_node)
            job.node_procs[node.name] = user_proc

        job.start_time = self.env.now
        self._calendar.add(job.job_id, self.env.now + spec.time_limit)
        job.set_state(JobState.RUNNING, self.env.now)
        if spec.on_start is not None:
            for node in placement:
                spec.on_start(node, job, job.node_procs[node.name])
        self.job_state.fire(job)

        # Payload.
        final_state = JobState.COMPLETED
        requeue_cause: str | None = None
        try:
            if getattr(job, "_node_failed", False):
                # The crash landed inside the allocation-setup window,
                # before the payload could be interrupted.
                raise Interrupt(cause="node_fail")
            if spec.duration is None:
                yield self.env.timeout(spec.time_limit)
                final_state = JobState.TIMEOUT
            else:
                run_for = min(spec.duration, spec.time_limit)
                yield self.env.timeout(run_for)
                if spec.duration > spec.time_limit:
                    final_state = JobState.TIMEOUT
        except Interrupt as intr:
            if intr.cause == "preemption":
                requeue_cause = "preemption"
            elif intr.cause == "node_fail":
                if spec.requeue:
                    requeue_cause = "node_fail"
                else:
                    final_state = JobState.NODE_FAIL
            else:
                final_state = JobState.CANCELLED

        if requeue_cause is not None:
            # PreemptMode=REQUEUE / JobRequeue=1: release nodes, go back
            # to PENDING; the job restarts from scratch on its next
            # allocation.  A DOWN node keeps its state through release().
            job._node_failed = False  # type: ignore[attr-defined]
            if requeue_cause == "node_fail":
                job.set_state(JobState.NODE_FAIL, self.env.now)
                job.requeue_count += 1
            else:
                job.preempt_count = getattr(job, "preempt_count", 0) + 1
            if _metrics.registry.enabled:
                _metrics.inc("wlm.job_requeues", cause=requeue_cause)
            if spec.on_requeue is not None:
                spec.on_requeue(job)
            for node in placement:
                node.release(job.job_id)
            self.running.pop(job.job_id, None)
            self._calendar.remove(job.job_id)
            self._account_busy(-len(placement))
            job.start_time = None
            job.allocated_nodes = []
            job.node_procs.clear()
            job.set_state(JobState.PENDING, self.env.now)
            self.queue.append(job)
            self._ring()
            self.job_state.fire(job)
            return

        # Teardown.
        job.end_time = self.env.now
        _trace.tracer.instant("wlm.job_end", job=job.job_id, state=final_state.value)
        if _metrics.registry.enabled:
            _metrics.inc("wlm.jobs_finished", state=final_state.value)
        job.set_state(final_state, self.env.now)
        job.exit_code = 0 if final_state is JobState.COMPLETED else 1
        for node in placement:
            node.release(job.job_id)
        self.running.pop(job.job_id, None)
        self._calendar.remove(job.job_id)
        self._account_busy(-len(placement))
        cores = spec.cores_per_node or placement[0].total_cores
        self.accounting.record_job(job, cores_per_node=cores,
                                   comment=getattr(job, "comment", ""))
        if spec.on_end is not None:
            spec.on_end(job)
        self._ring()
        self.job_state.fire(job)

    # ------------------------------------------------------------- job steps
    def srun(self, job: Job, argv: tuple[str, ...], options: dict[str, str] | None = None) -> JobStep:
        """Launch a step on every node of a running allocation, passing it
        through the SPANK stack (container plugins hook in here)."""
        if job.state is not JobState.RUNNING:
            raise WLMError(f"job {job.job_id} is not running ({job.state.value})")
        step = JobStep(
            step_id=next(self._step_counter),
            argv=argv,
            nodes=list(job.allocated_nodes),
            start_time=self.env.now,
        )
        contexts = []
        for node in self.nodes:
            if node.name not in job.allocated_nodes:
                continue
            ctx = SpankContext(
                job=job,
                node=node,
                user_proc=job.node_procs[node.name],
                options=dict(options or {}),
            )
            self.spank.run_task_init_privileged(ctx)
            self.spank.run_task_init(ctx)
            contexts.append(ctx)
        step.contexts = contexts  # type: ignore[attr-defined]
        job.steps.append(step)
        return step

    def finish_step(self, job: Job, step: JobStep, exit_code: int = 0) -> None:
        step.end_time = self.env.now
        step.exit_code = exit_code
        for ctx in getattr(step, "contexts", []):
            self.spank.run_task_exit(ctx)

    # ------------------------------------------------------------- node admin
    def _named(self, names: _t.Iterable[str]) -> list[WLMNode]:
        by_name = {n.name: n for n in self.nodes}
        return [by_name[name] for name in names]

    def drain_nodes(self, names: _t.Iterable[str], reason: str = "") -> None:
        for node in self._named(names):
            node.drain(reason)

    def resume_nodes(self, names: _t.Iterable[str]) -> None:
        for node in self._named(names):
            node.resume()
        self._ring()

    # ------------------------------------------------------------- node failure
    def fail_node(self, name: str, reason: str = "node failure") -> None:
        """Hard-down ``name`` and interrupt every job allocated there.

        Jobs with ``spec.requeue`` (the default) transition
        RUNNING -> NODE_FAIL -> PENDING and rejoin the queue; the dead
        node stays DOWN (and unschedulable) until :meth:`restore_node`.
        """
        node = self._named([name])[0]
        node.fail(reason)
        if _metrics.registry.enabled:
            _metrics.inc("wlm.node_failures", node=name)
        if _trace.tracer.enabled:
            _trace.tracer.instant("wlm.node_fail", node=name, reason=reason)
        for job in list(self.running.values()):
            if name not in job.allocated_nodes:
                continue
            proc = getattr(job, "_sim_process", None)
            if job.state is JobState.RUNNING and proc is not None and proc.is_alive:
                proc.interrupt(cause="node_fail")
            else:
                # Allocation still in setup; the payload checks this flag
                # before its first yield.
                job._node_failed = True  # type: ignore[attr-defined]

    def restore_node(self, name: str) -> None:
        """Bring a DOWN node back (reboot finished) and kick the scheduler."""
        node = self._named([name])[0]
        if node.state is NodeState.DOWN:
            node.resume()
            if _trace.tracer.enabled:
                _trace.tracer.instant("wlm.node_restore", node=name)
            self._ring()

    def _on_node_fault(self, event, phase: str) -> None:
        """Push handler for ``"wlm.node"`` faults from the injector."""
        if event.target is None or event.target not in {n.name for n in self.nodes}:
            return
        if phase == "crash":
            self.fail_node(event.target, reason=f"injected crash (t={event.at:.1f})")
        else:
            self.restore_node(event.target)

    # ------------------------------------------------------------- views
    def sinfo(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.state.value] = counts.get(node.state.value, 0) + 1
        return counts

    def squeue(self) -> list[Job]:
        return sorted(
            [*self.queue, *self.running.values()], key=lambda j: j.job_id
        )

    def utilization(self) -> float:
        """Time-averaged fraction of nodes allocated."""
        now = self.env.now
        integral = self._busy_integral + self._busy_nodes * (now - self._last_change)
        total = len(self.nodes) * now
        return integral / total if total > 0 else 0.0
