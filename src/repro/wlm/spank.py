"""The SPANK plugin interface (Slurm Plug-in Architecture for Node and
job Kontrol).

Shifter and ENROOT (via pyxis) integrate with Slurm through SPANK
plugins (Table 3): the plugin intercepts task launch inside the
allocation and starts the task inside a container instead.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.kernel.process import SimProcess

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.wlm.jobs import Job
    from repro.wlm.nodes import WLMNode


class SpankError(RuntimeError):
    pass


@dataclasses.dataclass
class SpankContext:
    """What a SPANK callback sees on the node."""

    job: "Job"
    node: "WLMNode"
    user_proc: SimProcess
    #: job --export / plugin options (e.g. {"shifter_image": "repo:tag"})
    options: dict[str, str]
    #: set by plugins: the container run result, if any
    run_result: object = None


class SpankPlugin:
    """Base plugin: override the callbacks you need."""

    name = "spank-plugin"

    def init(self, controller) -> None:
        """slurm_spank_init: called when the controller loads plugins."""

    def task_init_privileged(self, ctx: SpankContext) -> None:
        """Before dropping privileges (device cgroup setup, mounts)."""

    def task_init(self, ctx: SpankContext) -> None:
        """As the user, immediately before the task runs."""

    def task_exit(self, ctx: SpankContext) -> None:
        """After the task exits."""


class SpankStack:
    """The ordered plugin stack a controller loads (plugstack.conf)."""

    def __init__(self) -> None:
        self.plugins: list[SpankPlugin] = []

    def load(self, plugin: SpankPlugin, controller=None) -> None:
        plugin.init(controller)
        self.plugins.append(plugin)

    def run_task_init_privileged(self, ctx: SpankContext) -> None:
        for plugin in self.plugins:
            plugin.task_init_privileged(ctx)

    def run_task_init(self, ctx: SpankContext) -> None:
        for plugin in self.plugins:
            plugin.task_init(ctx)

    def run_task_exit(self, ctx: SpankContext) -> None:
        for plugin in self.plugins:
            plugin.task_exit(ctx)

    def __len__(self) -> int:
        return len(self.plugins)
