"""Synthetic workloads: application IO/startup models and generators."""

from repro.workload.apps import ApplicationModel, CompiledMPIApp, PythonPipelineApp
from repro.workload.generators import PodBatchGenerator, poisson_arrivals

__all__ = [
    "ApplicationModel",
    "CompiledMPIApp",
    "PodBatchGenerator",
    "PythonPipelineApp",
    "poisson_arrivals",
]
