"""Synthetic workloads: application IO/startup models and generators."""

from repro.workload.apps import ApplicationModel, CompiledMPIApp, PythonPipelineApp
from repro.workload.generators import (
    DiurnalProfile,
    PodBatchGenerator,
    ZipfSampler,
    modulated_poisson_arrivals,
    poisson_arrivals,
    zipf_weights,
)

__all__ = [
    "ApplicationModel",
    "CompiledMPIApp",
    "DiurnalProfile",
    "PodBatchGenerator",
    "PythonPipelineApp",
    "ZipfSampler",
    "modulated_poisson_arrivals",
    "poisson_arrivals",
    "zipf_weights",
]


def __getattr__(name):
    # The fleet engine pulls in registry/shard/faults; import lazily so
    # `import repro.workload` stays light for the §6 scenarios.
    if name in ("FleetConfig", "FleetResult", "run_fleet"):
        from repro.workload import fleet

        return getattr(fleet, name)
    raise AttributeError(name)
