"""Application IO models.

Two archetypes drive the paper's filesystem arguments (§3.2, §4.1.2):

- **Interpreted stacks** (Python pipelines): cold start opens thousands
  of small files in effectively random order — metadata-bound, the worst
  case for shared filesystems and FUSE drivers.
- **Compiled MPI applications**: cold start streams a couple of large
  files (binary + parameter data) — bandwidth-bound, "only noticeable on
  start and when loading bundled parameter data".
"""

from __future__ import annotations

import typing as _t

from repro.fs.drivers import MountedView
from repro.fs.inode import FileNode


class ApplicationModel:
    """Base: how an application touches its rootfs at start."""

    name = "app"

    def startup_cost(self, view: MountedView) -> float:
        raise NotImplementedError

    @staticmethod
    def _files_under(view: MountedView, top: str) -> list[tuple[str, FileNode]]:
        found: dict[str, FileNode] = {}
        for tree in view._all_trees_top_down():
            if not tree.exists(top):
                continue
            for path, node in tree.files(top):
                if path not in found and view.lookup(path) is node:
                    found[path] = node
        return sorted(found.items())


class PythonPipelineApp(ApplicationModel):
    """Imports interpreter + stdlib + site-packages: many small files,
    random access order."""

    name = "python-pipeline"

    def __init__(self, code_roots: tuple[str, ...] = ("/usr/lib/python3.11",)):
        self.code_roots = code_roots

    def startup_cost(self, view: MountedView) -> float:
        cost = 0.0
        n_files = 0
        for root in self.code_roots:
            for path, node in self._files_under(view, root):
                cost += view.open(path)
                read_cost, _ = view.read(path, random=True)
                cost += read_cost
                n_files += 1
        if n_files == 0:
            raise ValueError(
                f"no python files under {self.code_roots} in this image"
            )
        return cost


class CompiledMPIApp(ApplicationModel):
    """Streams a big binary and its parameter data sequentially."""

    name = "compiled-mpi"

    def __init__(self, binary: str = "/opt/app/bin/solver",
                 data_files: tuple[str, ...] = ("/opt/app/share/params.dat",)):
        self.binary = binary
        self.data_files = data_files

    def startup_cost(self, view: MountedView) -> float:
        cost = view.open(self.binary)
        read_cost, _ = view.read(self.binary, random=False)
        cost += read_cost
        for path in self.data_files:
            if view.exists(path):
                cost += view.open(path)
                rc, _ = view.read(path, random=False)
                cost += rc
        return cost
